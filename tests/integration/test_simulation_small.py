"""End-to-end simulation tests on small clusters."""

from __future__ import annotations

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.network import MB, mbps
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.job import MapTaskCategory, TaskKind
from repro.mapreduce.simulation import run_simulation


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(
        num_nodes=8,
        num_racks=2,
        map_slots=2,
        code=CodeParams(4, 2),
        block_size=64 * MB,
        rack_bandwidth=mbps(1000),
        jobs=(JobConfig(num_blocks=64, num_reduce_tasks=4),),
        scheduler="LF",
        seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestCompleteness:
    @pytest.mark.parametrize("scheduler", ["LF", "BDF", "EDF"])
    def test_every_task_runs_exactly_once(self, scheduler):
        result = run_simulation(small_config(scheduler=scheduler))
        job = result.job(0)
        maps = [t for t in job.tasks if t.kind is TaskKind.MAP]
        reduces = [t for t in job.tasks if t.kind is TaskKind.REDUCE]
        assert len(maps) == 64
        assert len(reduces) == 4

    def test_degraded_count_matches_lost_blocks(self):
        result = run_simulation(small_config())
        job = result.job(0)
        degraded = job.tasks_of(MapTaskCategory.DEGRADED)
        # One failed node; every degraded task is for one of its blocks.
        assert job.degraded_task_count == len(degraded)
        assert all(t.download_time > 0 for t in degraded)

    def test_no_tasks_on_failed_node(self):
        result = run_simulation(small_config())
        (failed,) = result.failed_nodes
        assert all(task.slave_id != failed for task in result.job(0).tasks)

    def test_times_are_ordered(self):
        result = run_simulation(small_config())
        job = result.job(0)
        for task in job.tasks:
            assert task.finish_time >= task.launch_time >= 0.0
        assert job.finish_time >= max(t.finish_time for t in job.tasks) - 1e-9


class TestDeterminism:
    def test_same_seed_same_result(self):
        first = run_simulation(small_config(scheduler="EDF"))
        second = run_simulation(small_config(scheduler="EDF"))
        assert first.job(0).runtime == second.job(0).runtime
        assert first.failed_nodes == second.failed_nodes

    def test_different_seed_differs(self):
        first = run_simulation(small_config())
        second = run_simulation(small_config(seed=12))
        assert (
            first.job(0).runtime != second.job(0).runtime
            or first.failed_nodes != second.failed_nodes
        )


class TestSchedulerOrdering:
    def test_degraded_first_beats_locality_first(self):
        """Averaged over seeds, BDF and EDF beat LF in failure mode."""
        lf_total = bdf_total = edf_total = 0.0
        for seed in range(4):
            lf_total += run_simulation(small_config(seed=seed)).job(0).runtime
            bdf_total += run_simulation(small_config(seed=seed, scheduler="BDF")).job(0).runtime
            edf_total += run_simulation(small_config(seed=seed, scheduler="EDF")).job(0).runtime
        assert bdf_total < lf_total
        assert edf_total < lf_total

    def test_degraded_read_time_reduced(self):
        lf = run_simulation(small_config())
        edf = run_simulation(small_config(scheduler="EDF"))
        assert edf.job(0).mean_degraded_read_time() < lf.job(0).mean_degraded_read_time()

    def test_failure_mode_slower_than_normal(self):
        failure = run_simulation(small_config())
        normal = run_simulation(small_config(failure=FailurePattern.NONE))
        assert failure.job(0).runtime > normal.job(0).runtime

    def test_normal_mode_has_no_degraded_tasks(self):
        normal = run_simulation(small_config(failure=FailurePattern.NONE))
        assert normal.job(0).degraded_task_count == 0

    def test_normal_mode_scheduler_equivalence(self):
        """Without failures, degraded-first degenerates to locality-first."""
        runtimes = {
            scheduler: run_simulation(
                small_config(failure=FailurePattern.NONE, scheduler=scheduler)
            ).job(0).runtime
            for scheduler in ("LF", "BDF", "EDF")
        }
        assert runtimes["LF"] == runtimes["BDF"] == runtimes["EDF"]


class TestShuffleConservation:
    def test_every_shuffled_byte_is_fetched(self):
        result = run_simulation(small_config())
        deposited, drained = result.shuffle_totals[0]
        assert deposited == pytest.approx(drained)

    def test_deposited_matches_map_emission(self):
        config = small_config()
        result = run_simulation(config)
        deposited, _ = result.shuffle_totals[0]
        job = config.jobs[0]
        expected = job.num_blocks * config.block_size * job.shuffle_ratio
        assert deposited == pytest.approx(expected)

    def test_map_only_job_shuffles_nothing(self):
        config = small_config(
            jobs=(JobConfig(num_blocks=16, num_reduce_tasks=0, shuffle_ratio=0.0),)
        )
        result = run_simulation(config)
        assert result.shuffle_totals[0] == (0.0, 0.0)


class TestMapOnlyJob:
    def test_map_only_completes(self):
        config = small_config(
            jobs=(JobConfig(num_blocks=32, num_reduce_tasks=0, shuffle_ratio=0.0),)
        )
        result = run_simulation(config)
        job = result.job(0)
        assert all(task.kind is TaskKind.MAP for task in job.tasks)
        assert len(job.tasks) == 32


class TestNetworkModels:
    @pytest.mark.parametrize("model", ["fluid", "exclusive"])
    def test_both_models_complete(self, model):
        result = run_simulation(small_config(network_model=model))
        assert len(result.job(0).tasks) == 68

    def test_exclusive_not_faster_on_contended_tail(self):
        """Hold-the-link serialisation cannot beat fair sharing by much."""
        fluid = run_simulation(small_config(network_model="fluid"))
        exclusive = run_simulation(small_config(network_model="exclusive"))
        assert exclusive.job(0).runtime >= 0.8 * fluid.job(0).runtime


class TestHeterogeneous:
    def test_slow_nodes_slow_the_job(self):
        fast = run_simulation(small_config(failure=FailurePattern.NONE))
        slow_factors = tuple(0.5 if index < 4 else 1.0 for index in range(8))
        slow = run_simulation(
            small_config(failure=FailurePattern.NONE, speed_factors=slow_factors)
        )
        assert slow.job(0).runtime > fast.job(0).runtime
