"""Additional analytical-model tests: custom bases and regime boundaries."""

from __future__ import annotations

import pytest

from repro.analysis.model import AnalysisParams, AnalyticalModel
from repro.analysis.sweep import sweep_bandwidth, sweep_blocks, sweep_code
from repro.cluster.network import mbps
from repro.ec.codec import CodeParams


class TestCustomBases:
    def test_sweep_code_respects_base(self):
        base = AnalysisParams(num_nodes=20, num_racks=4, num_blocks=400)
        points = sweep_code(base, codes=(CodeParams(8, 6), CodeParams(12, 9)))
        assert len(points) == 2
        assert points[0].label == "(8,6)"

    def test_sweep_blocks_respects_base(self):
        base = AnalysisParams(map_time=10.0)
        points = sweep_blocks(base, block_counts=(100, 200))
        assert [point.label for point in points] == ["100", "200"]

    def test_sweep_bandwidth_labels(self):
        points = sweep_bandwidth(bandwidths_mbps=(100, 200))
        assert [point.label for point in points] == ["100Mbps", "200Mbps"]


class TestRegimeBoundary:
    def test_network_bound_at_low_bandwidth(self):
        model = AnalyticalModel(AnalysisParams(rack_bandwidth=mbps(50)))
        assert model.is_network_bound()

    def test_compute_bound_at_high_bandwidth(self):
        model = AnalyticalModel(AnalysisParams(rack_bandwidth=mbps(10_000)))
        # DF's runtime is then its compute-bound case.
        expected = (
            model.params.num_blocks
            * model.params.map_time
            / ((model.params.num_nodes - 1) * model.params.map_slots)
            + model.params.map_time
        )
        assert model.degraded_first_runtime() == pytest.approx(expected)

    def test_df_runtime_monotone_in_bandwidth(self):
        runtimes = [
            AnalyticalModel(AnalysisParams(rack_bandwidth=mbps(w))).degraded_first_runtime()
            for w in (50, 100, 200, 400, 800)
        ]
        assert runtimes == sorted(runtimes, reverse=True)

    def test_lf_always_pays_the_full_tail(self):
        """LF's runtime is normal-mode plus the whole serial download."""
        model = AnalyticalModel(AnalysisParams())
        tail = model.total_degraded_read_time_per_rack()
        assert model.locality_first_runtime() - model.normal_mode_runtime() == (
            pytest.approx(tail + model.params.map_time)
        )


class TestDegradedTasksPerRack:
    def test_matches_definition(self):
        params = AnalysisParams(num_nodes=40, num_racks=4, num_blocks=1440)
        model = AnalyticalModel(params)
        assert model.degraded_tasks_per_rack() == pytest.approx(1440 / (40 * 4))
