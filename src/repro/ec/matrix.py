"""Dense matrices over GF(2^8).

Matrices are represented as 2-D numpy ``uint8`` arrays.  Only the operations
that Reed-Solomon coding needs are provided: multiplication, identity,
Gauss-Jordan inversion, sub-matrix selection, and the Vandermonde / Cauchy
generator constructions.
"""

from __future__ import annotations

import numpy as np

from repro.ec import galois


class SingularMatrixError(ValueError):
    """Raised when a matrix that must be invertible turns out singular."""


def identity(size: int) -> np.ndarray:
    """Return the ``size`` x ``size`` identity matrix over GF(2^8)."""
    return np.eye(size, dtype=np.uint8)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two matrices over GF(2^8)."""
    rows_a, cols_a = a.shape
    rows_b, cols_b = b.shape
    if cols_a != rows_b:
        raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
    result = np.zeros((rows_a, cols_b), dtype=np.uint8)
    for i in range(rows_a):
        row = result[i]
        for j in range(cols_a):
            galois.addmul_bytes(row, int(a[i, j]), b[j])
    return result


def matvec_blocks(matrix: np.ndarray, blocks: list[np.ndarray]) -> list[np.ndarray]:
    """Apply ``matrix`` to a column vector of byte blocks.

    ``blocks`` holds one byte array per matrix column; the result holds one
    byte array per matrix row.  This is the generic encode/decode primitive:
    each output block is a GF-linear combination of the input blocks.
    """
    rows, cols = matrix.shape
    if cols != len(blocks):
        raise ValueError(f"matrix has {cols} columns but got {len(blocks)} blocks")
    if not blocks:
        return []
    length = len(blocks[0])
    for block in blocks:
        if len(block) != length:
            raise ValueError("all blocks must have equal length")
    outputs: list[np.ndarray] = []
    for i in range(rows):
        accumulator = np.zeros(length, dtype=np.uint8)
        for j in range(cols):
            galois.addmul_bytes(accumulator, int(matrix[i, j]), blocks[j])
        outputs.append(accumulator)
    return outputs


def invert(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination.

    Raises :class:`SingularMatrixError` if the matrix has no inverse.
    """
    size, cols = matrix.shape
    if size != cols:
        raise ValueError(f"cannot invert non-square matrix of shape {matrix.shape}")
    work = matrix.astype(np.int32).copy()
    inverse = np.eye(size, dtype=np.int32)
    for col in range(size):
        pivot_row = -1
        for row in range(col, size):
            if work[row, col] != 0:
                pivot_row = row
                break
        if pivot_row < 0:
            raise SingularMatrixError(f"matrix is singular at column {col}")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        pivot_inv = galois.gf_inv(int(work[col, col]))
        for j in range(size):
            work[col, j] = galois.gf_mul(int(work[col, j]), pivot_inv)
            inverse[col, j] = galois.gf_mul(int(inverse[col, j]), pivot_inv)
        for row in range(size):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            for j in range(size):
                work[row, j] ^= galois.gf_mul(factor, int(work[col, j]))
                inverse[row, j] ^= galois.gf_mul(factor, int(inverse[col, j]))
    return inverse.astype(np.uint8)


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Return the ``rows`` x ``cols`` Vandermonde matrix ``V[i, j] = i**j``."""
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            matrix[i, j] = galois.gf_pow(i, j)
    return matrix


def cauchy(x_values: list[int], y_values: list[int]) -> np.ndarray:
    """Return the Cauchy matrix ``C[i, j] = 1 / (x_i + y_j)`` over GF(2^8).

    The element sets must be disjoint so that no denominator is zero.
    """
    overlap = set(x_values) & set(y_values)
    if overlap:
        raise ValueError(f"x and y values must be disjoint; both contain {overlap}")
    matrix = np.zeros((len(x_values), len(y_values)), dtype=np.uint8)
    for i, x in enumerate(x_values):
        for j, y in enumerate(y_values):
            matrix[i, j] = galois.gf_inv(x ^ y)
    return matrix


def systematic_encoding_matrix(n: int, k: int) -> np.ndarray:
    """Build the ``n`` x ``k`` systematic generator matrix for RS(n, k).

    The construction starts from an ``n`` x ``k`` Vandermonde matrix and
    column-reduces it so the top ``k`` x ``k`` sub-matrix is the identity.
    Any ``k`` rows of the result remain linearly independent (the defining
    MDS property), which is what guarantees decode-from-any-k.
    """
    if not 0 < k <= n:
        raise ValueError(f"require 0 < k <= n, got n={n} k={k}")
    if n > galois.FIELD_SIZE:
        raise ValueError(f"n={n} exceeds field size {galois.FIELD_SIZE}")
    base = vandermonde(n, k)
    top = base[:k, :k]
    top_inverse = invert(top)
    return matmul(base, top_inverse)
