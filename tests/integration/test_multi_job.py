"""Multi-job FIFO scheduling integration tests (Figure 7(f) mechanics)."""

from __future__ import annotations

from repro.cluster.failures import FailurePattern
from repro.cluster.network import MB
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.simulation import run_simulation


def multi_config(num_jobs=3, interval=50.0, scheduler="EDF", seed=3) -> SimulationConfig:
    jobs = tuple(
        JobConfig(num_blocks=48, num_reduce_tasks=2, submit_time=index * interval)
        for index in range(num_jobs)
    )
    return SimulationConfig(
        num_nodes=8,
        num_racks=2,
        map_slots=2,
        code=CodeParams(4, 2),
        block_size=32 * MB,
        jobs=jobs,
        scheduler=scheduler,
        seed=seed,
    )


class TestMultiJob:
    def test_all_jobs_complete(self):
        result = run_simulation(multi_config())
        assert set(result.jobs) == {0, 1, 2}
        for job_id in range(3):
            job = result.job(job_id)
            assert len(job.tasks) == 50
            assert job.finish_time > job.first_launch_time

    def test_fifo_finish_order(self):
        """With identical jobs and FIFO slots, finishes follow submit order."""
        result = run_simulation(multi_config(interval=100.0))
        finishes = [result.job(job_id).finish_time for job_id in range(3)]
        assert finishes == sorted(finishes)

    def test_first_launch_not_before_submit(self):
        result = run_simulation(multi_config())
        for job_id in range(3):
            job = result.job(job_id)
            assert job.first_launch_time >= job.submit_time

    def test_queueing_inflates_makespan(self):
        """Jobs submitted together queue behind each other."""
        contended = run_simulation(multi_config(interval=0.0))
        makespans = [contended.job(job_id).makespan for job_id in range(3)]
        # The last job's makespan includes waiting behind the first two.
        assert makespans[2] > makespans[0]

    def test_degraded_first_helps_every_job(self):
        lf = run_simulation(multi_config(scheduler="LF"))
        edf = run_simulation(multi_config(scheduler="EDF"))
        lf_total = sum(lf.job(j).runtime for j in range(3))
        edf_total = sum(edf.job(j).runtime for j in range(3))
        assert edf_total < lf_total

    def test_normal_mode_multi_job(self):
        result = run_simulation(
            multi_config().with_failure(FailurePattern.NONE)
        )
        for job_id in range(3):
            assert result.job(job_id).degraded_task_count == 0
