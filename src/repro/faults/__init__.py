"""Fault tolerance: scripted failure schedules, detection, retries, speculation.

This package is the simulator's fault-tolerance subsystem.  The paper's
experiments inject failures only at trial start; real erasure-coded clusters
fail *during* jobs, recover, and limp.  The pieces here close that gap:

* :mod:`repro.faults.schedule` -- a declarative, reproducible timeline of
  :class:`FailEvent` / :class:`RecoverEvent` / :class:`SlowdownEvent`
  entries, buildable programmatically or from a JSON trace;
* :mod:`repro.faults.driver` -- the simulator processes that replay a
  schedule against a running cluster and detect dead trackers from
  heartbeat expiry (the master is *not* told about failures omnisciently);
* :mod:`repro.faults.records` -- what the fault machinery measured:
  detection latencies, blacklist events, recoveries, slowdowns;
* :mod:`repro.faults.errors` -- :class:`JobFailedError`, raised when a
  task exhausts its retry budget and the job is abandoned cleanly.
"""

from repro.faults.errors import JobFailedError
from repro.faults.records import (
    BlacklistRecord,
    DetectionRecord,
    FaultTimeline,
    RecoveryRecord,
    SlowdownRecord,
)
from repro.faults.schedule import (
    FailEvent,
    FailureSchedule,
    RecoverEvent,
    SlowdownEvent,
)

__all__ = [
    "BlacklistRecord",
    "DetectionRecord",
    "FailEvent",
    "FailureSchedule",
    "FaultTimeline",
    "JobFailedError",
    "RecoverEvent",
    "RecoveryRecord",
    "SlowdownEvent",
    "SlowdownRecord",
]
