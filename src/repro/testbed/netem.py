"""Wall-clock network emulation for the threaded testbed.

Transfers between testbed nodes take real (scaled) time and really contend:
each link of the two-level topology is guarded by a lock, and a transfer
holds every link on its path for ``size / bandwidth * time_scale`` seconds
-- the same exclusive-hold semantics the paper's CSIM simulator uses for its
NodeTree.  ``time_scale`` compresses the emulation (0.001 makes a simulated
second one millisecond) so testbed experiments finish quickly.

Lock acquisition is ordered by link name to stay deadlock-free.
"""

from __future__ import annotations

import threading
import time

from repro.cluster.network import NetworkSpec
from repro.cluster.topology import ClusterTopology


class EmulatedNetwork:
    """Thread-safe emulated network over a cluster topology.

    Parameters
    ----------
    topology:
        The cluster layout.
    network:
        Link capacities (bytes/second, pre-scaling).
    time_scale:
        Wall seconds per simulated second; 0.001 runs 1000x faster than
        real time.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        network: NetworkSpec,
        time_scale: float = 0.001,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time scale must be positive, got {time_scale}")
        self.topology = topology
        self.network = network
        self.time_scale = time_scale
        self._locks: dict[str, threading.Lock] = {}
        self._transferred_bytes = 0.0
        self._stats_lock = threading.Lock()
        for rack in topology.racks:
            self._locks[f"rack{rack.rack_id}:down"] = threading.Lock()
            self._locks[f"rack{rack.rack_id}:up"] = threading.Lock()
        for node in topology.nodes:
            self._locks[f"node{node.node_id}:in"] = threading.Lock()
            self._locks[f"node{node.node_id}:out"] = threading.Lock()

    def path(self, src_node: int, dst_node: int) -> list[str]:
        """Links a transfer crosses (same scheme as the simulator NodeTree)."""
        if src_node == dst_node:
            return []
        src_rack = self.topology.rack_of(src_node)
        dst_rack = self.topology.rack_of(dst_node)
        links = [f"node{src_node}:out"]
        if src_rack != dst_rack:
            links.append(f"rack{src_rack}:up")
            links.append(f"rack{dst_rack}:down")
        links.append(f"node{dst_node}:in")
        return links

    def _bandwidth(self, link: str) -> float:
        if link.startswith("node"):
            return self.network.node_bandwidth
        if link.endswith(":up"):
            return self.network.rack_upload_bw
        return self.network.rack_download_bw

    def transfer(self, src_node: int, dst_node: int, size: float) -> float:
        """Move ``size`` bytes; blocks the calling thread for the duration.

        Returns the simulated (unscaled) seconds the transfer took,
        including queueing for busy links.
        """
        started = time.monotonic()
        links = sorted(self.path(src_node, dst_node))
        if links and size > 0:
            bottleneck = min(self._bandwidth(link) for link in links)
            duration = size / bottleneck * self.time_scale
            acquired: list[threading.Lock] = []
            try:
                for link in links:
                    lock = self._locks[link]
                    lock.acquire()
                    acquired.append(lock)
                time.sleep(duration)
            finally:
                for lock in reversed(acquired):
                    lock.release()
            with self._stats_lock:
                self._transferred_bytes += size
        return (time.monotonic() - started) / self.time_scale

    @property
    def transferred_bytes(self) -> float:
        """Total bytes moved so far (for traffic accounting in tests)."""
        with self._stats_lock:
            return self._transferred_bytes
