"""Counters, gauges, and time-weighted series for simulation metrics.

The paper's evaluation lives on occupancy/utilization curves: map-slot
timelines (Figures 3-4), rack downlink contention, runtime breakdowns
(Table I).  :class:`TimeWeightedSeries` is the workhorse: a
piecewise-constant signal recorded as breakpoints, with exact integral and
time-weighted average over any window -- precisely what slot occupancy and
link utilization need.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str = ""
    value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins scalar."""

    name: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value


class TimeWeightedSeries:
    """A piecewise-constant signal with exact windowed integrals.

    The series holds breakpoints ``(t_i, v_i)``: the signal equals ``v_i``
    on ``[t_i, t_{i+1})`` and the last value extends to +infinity.
    ``record`` with a repeated timestamp overwrites the breakpoint (several
    changes at one simulation instant collapse to the final value);
    ``record`` with an unchanged value is dropped, keeping the breakpoint
    list minimal.
    """

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str = "", initial: float = 0.0, start: float = 0.0) -> None:
        self.name = name
        self._times: list[float] = [start]
        self._values: list[float] = [float(initial)]

    def record(self, time: float, value: float) -> None:
        """Set the signal to ``value`` from ``time`` onwards."""
        last_time = self._times[-1]
        if time < last_time:
            raise ValueError(
                f"series {self.name!r}: time {time} precedes last breakpoint {last_time}"
            )
        if time == last_time:
            self._values[-1] = float(value)
            # Collapse a breakpoint that no longer changes anything.
            if len(self._values) > 1 and self._values[-2] == self._values[-1]:
                self._times.pop()
                self._values.pop()
            return
        if value == self._values[-1]:
            return
        self._times.append(time)
        self._values.append(float(value))

    @property
    def value(self) -> float:
        """The signal's current (latest) value."""
        return self._values[-1]

    @property
    def samples(self) -> list[tuple[float, float]]:
        """The breakpoints as ``(time, value)`` pairs."""
        return list(zip(self._times, self._values))

    def value_at(self, time: float) -> float:
        """The signal's value at an instant (initial value before start)."""
        if time < self._times[0]:
            return self._values[0]
        # Linear scan is fine: series are read once, at report time.
        result = self._values[0]
        for t, v in zip(self._times, self._values):
            if t > time:
                break
            result = v
        return result

    def integral(self, start: float, end: float) -> float:
        """Exact integral of the signal over ``[start, end]``."""
        if end < start:
            raise ValueError(f"series {self.name!r}: window [{start}, {end}] is reversed")
        if end == start:
            return 0.0
        total = 0.0
        times, values = self._times, self._values
        for index, value in enumerate(values):
            seg_start = times[index]
            seg_end = times[index + 1] if index + 1 < len(times) else end
            lo = max(seg_start, start)
            hi = min(seg_end, end)
            if hi > lo:
                total += value * (hi - lo)
        # The signal extends before the first breakpoint at its initial value.
        if start < times[0]:
            total += values[0] * (min(times[0], end) - start)
        return total

    def average(self, start: float, end: float) -> float:
        """Time-weighted average over ``[start, end]``."""
        if end <= start:
            raise ValueError(f"series {self.name!r}: empty window [{start}, {end}]")
        return self.integral(start, end) / (end - start)

    def peak(self) -> float:
        """Largest value the signal ever took."""
        return max(self._values)


@dataclass
class MetricsRegistry:
    """Named metric instruments, created on first use."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    series: dict[str, TimeWeightedSeries] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name=name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name=name)
        return instrument

    def time_series(
        self, name: str, initial: float = 0.0, start: float = 0.0
    ) -> TimeWeightedSeries:
        """Get or create the time-weighted series ``name``."""
        instrument = self.series.get(name)
        if instrument is None:
            instrument = self.series[name] = TimeWeightedSeries(
                name=name, initial=initial, start=start
            )
        return instrument
