"""Integration tests for the functional testbed engine.

These run a real (small) MapReduce over erasure-coded bytes with an
emulated network and check the one property no simulator can: the computed
*output* is byte-for-byte correct, failure or no failure, under every
scheduler.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.mapreduce.job import MapTaskCategory, TaskKind
from repro.testbed.engine import TestbedCluster, TestbedConfig
from repro.testbed.jobs import GrepJob, LineCountJob, WordCountJob


@pytest.fixture(scope="module")
def cluster():
    config = TestbedConfig(
        num_blocks=36,
        block_size=64 * 1024,
        rack_bandwidth=16 * 1024 * 1024,
        map_processing_rate=2 * 1024 * 1024,
        heartbeat_interval=0.01,
        seed=4,
    )
    return TestbedCluster(config)


@pytest.fixture(scope="module")
def failed(cluster):
    return cluster.kill_node()


@pytest.fixture(scope="module")
def text(cluster):
    return cluster.corpus.decode()


class TestCorrectness:
    def test_wordcount_no_failure(self, cluster, text):
        result = cluster.run_job(WordCountJob(), scheduler="LF")
        assert result.output == dict(Counter(text.split()))

    @pytest.mark.parametrize("scheduler", ["LF", "BDF", "EDF"])
    def test_wordcount_under_failure(self, cluster, failed, text, scheduler):
        result = cluster.run_job(WordCountJob(), scheduler=scheduler, failed_nodes=failed)
        assert result.output == dict(Counter(text.split()))

    def test_grep_under_failure(self, cluster, failed, text):
        result = cluster.run_job(GrepJob("the"), scheduler="EDF", failed_nodes=failed)
        expected = Counter(
            line for line in text.splitlines() if "the" in line.split()
        )
        assert result.output == dict(expected)

    def test_linecount_under_failure(self, cluster, failed, text):
        result = cluster.run_job(LineCountJob(), scheduler="EDF", failed_nodes=failed)
        assert result.output == dict(Counter(text.splitlines()))


class TestExecutionShape:
    def test_task_counts(self, cluster, failed):
        result = cluster.run_job(WordCountJob(), scheduler="EDF", failed_nodes=failed)
        maps = [t for t in result.tasks if t.kind is TaskKind.MAP]
        reduces = [t for t in result.tasks if t.kind is TaskKind.REDUCE]
        assert len(maps) == cluster.fs.block_map.num_native_blocks
        assert len(reduces) == cluster.config.num_reduce_tasks

    def test_degraded_tasks_only_for_lost_blocks(self, cluster, failed):
        result = cluster.run_job(WordCountJob(), scheduler="EDF", failed_nodes=failed)
        lost = len(cluster.fs.block_map.lost_native_blocks(failed))
        degraded = [t for t in result.tasks if t.category is MapTaskCategory.DEGRADED]
        assert len(degraded) == lost

    def test_no_tasks_on_failed_node(self, cluster, failed):
        result = cluster.run_job(WordCountJob(), scheduler="EDF", failed_nodes=failed)
        (dead,) = failed
        assert all(task.slave_id != dead for task in result.tasks)

    def test_runtime_positive_and_bounded(self, cluster, failed):
        result = cluster.run_job(WordCountJob(), scheduler="EDF", failed_nodes=failed)
        assert 0.0 < result.runtime < 120.0


class TestMultiJobBatch:
    def test_three_jobs_fifo(self, cluster, failed, text):
        jobs = [WordCountJob(), GrepJob("water"), LineCountJob()]
        results = cluster.run_jobs(jobs, scheduler="EDF", failed_nodes=failed)
        assert [r.job_name for r in results] == ["WordCount", "Grep", "LineCount"]
        assert results[0].output == dict(Counter(text.split()))
        assert results[2].output == dict(Counter(text.splitlines()))

    def test_empty_job_list_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.run_jobs([], scheduler="LF")
