"""Full-node repair planning: rebuilding a failed node's blocks.

Degraded reads (what the paper schedules around) serve *reads* during
failure; eventually the storage system also *repairs* — re-creates every
lost block on surviving nodes.  This module plans that reconstruction the
conventional way (each lost block is rebuilt from ``k`` surviving blocks of
its stripe) and estimates its cost, so users can reason about repair
traffic alongside MapReduce traffic.

The planner balances rebuilt blocks across surviving nodes (subject to the
same distinct-node / rack-cap placement rules) and accounts the bytes each
link carries, the quantity the paper's related work (e.g. XORing Elephants)
optimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import NetworkSpec
from repro.cluster.topology import ClusterTopology
from repro.faults.errors import DataUnavailableError
from repro.sim.rng import RngStreams
from repro.storage.block import BlockId, StoredBlock
from repro.storage.namenode import BlockMap


@dataclass(frozen=True)
class BlockRepair:
    """The plan for rebuilding one lost block."""

    block: BlockId
    destination: int
    sources: tuple[StoredBlock, ...]


@dataclass
class RepairPlan:
    """A full-node reconstruction plan plus traffic accounting."""

    failed_nodes: frozenset[int]
    repairs: list[BlockRepair] = field(default_factory=list)

    @property
    def lost_block_count(self) -> int:
        """Number of blocks being rebuilt."""
        return len(self.repairs)

    def bytes_per_destination(self, block_size: float) -> dict[int, float]:
        """Bytes each rebuilding node must download."""
        totals: dict[int, float] = {}
        for repair in self.repairs:
            fetched = sum(
                block_size for source in repair.sources if source.node_id != repair.destination
            )
            totals[repair.destination] = totals.get(repair.destination, 0.0) + fetched
        return totals

    def cross_rack_bytes(self, topology: ClusterTopology, block_size: float) -> float:
        """Total bytes crossing the core switch during repair."""
        total = 0.0
        for repair in self.repairs:
            dst_rack = topology.rack_of(repair.destination)
            for source in repair.sources:
                if topology.rack_of(source.node_id) != dst_rack:
                    total += block_size
        return total

    def estimated_duration(
        self,
        topology: ClusterTopology,
        network: NetworkSpec,
        block_size: float,
        parallel_destinations: bool = True,
    ) -> float:
        """A bandwidth-bound repair-time estimate.

        With ``parallel_destinations`` every rebuilding node downloads
        concurrently; the bottleneck is the busiest of (per-node NIC, rack
        downlink shared by that rack's rebuilders, core-crossing total).
        Serial mode sums each destination's download at NIC speed -- the
        single-repair-process lower bound.
        """
        per_destination = self.bytes_per_destination(block_size)
        if not per_destination:
            return 0.0
        if not parallel_destinations:
            return sum(amount / network.node_bandwidth for amount in per_destination.values())
        nic_bound = max(
            amount / network.node_bandwidth for amount in per_destination.values()
        )
        per_rack_cross: dict[int, float] = {}
        for repair in self.repairs:
            dst_rack = topology.rack_of(repair.destination)
            for source in repair.sources:
                if topology.rack_of(source.node_id) != dst_rack:
                    per_rack_cross[dst_rack] = per_rack_cross.get(dst_rack, 0.0) + block_size
        downlink_bound = max(
            (amount / network.rack_download_bw for amount in per_rack_cross.values()),
            default=0.0,
        )
        return max(nic_bound, downlink_bound)


class RepairPlanner:
    """Plans conventional (k-source) reconstruction of failed nodes.

    Parameters
    ----------
    block_map:
        Placement metadata of the stored file.
    topology:
        Cluster layout.
    rack_cap:
        Preferred cap on blocks of one stripe per rack (defaults to the
        placement rule's ``n - k``); relaxed when no candidate satisfies it.
    """

    def __init__(
        self,
        block_map: BlockMap,
        topology: ClusterTopology,
        rack_cap: int | None = None,
    ) -> None:
        self.block_map = block_map
        self.topology = topology
        self.rack_cap = block_map.params.parity if rack_cap is None else rack_cap

    def plan(
        self,
        failed_nodes: frozenset[int],
        rng: RngStreams,
        excluded: frozenset[int] = frozenset(),
    ) -> RepairPlan:
        """Build a repair plan for every block (native *and* parity) lost.

        Destinations are the least-loaded live nodes that do not already
        hold a block of the same stripe (keeping the distinct-node
        invariant) and whose rack is not already full for the stripe;
        sources are ``k`` random readable survivors.  Nodes in ``excluded``
        (e.g. blacklisted trackers) are never chosen as either.
        """
        self.block_map.check_recoverable(failed_nodes)
        plan = RepairPlan(failed_nodes=failed_nodes)
        load: dict[int, int] = {
            node_id: 0
            for node_id in self.topology.node_ids()
            if node_id not in failed_nodes and node_id not in excluded
        }
        lost_blocks = [
            stored.block
            for stored in self.block_map.all_blocks()
            if stored.node_id in failed_nodes
        ]
        # Destinations planned so far, per stripe: later blocks of the same
        # stripe must count them against the rack cap and the distinct-node
        # invariant even though the BlockMap has not been updated yet.
        planned_racks: dict[int, dict[int, int]] = {}
        planned_nodes: dict[int, set[int]] = {}
        for block in lost_blocks:
            repair = self.plan_block(
                block,
                failed_nodes,
                rng,
                load=load,
                excluded=excluded,
                extra_rack_counts=planned_racks.get(block.stripe_id),
                extra_stripe_nodes=planned_nodes.get(block.stripe_id),
            )
            racks = planned_racks.setdefault(block.stripe_id, {})
            dst_rack = self.topology.rack_of(repair.destination)
            racks[dst_rack] = racks.get(dst_rack, 0) + 1
            planned_nodes.setdefault(block.stripe_id, set()).add(
                repair.destination
            )
            plan.repairs.append(repair)
        return plan

    def plan_block(
        self,
        block: BlockId,
        failed_nodes: frozenset[int],
        rng: RngStreams,
        *,
        load: dict[int, int] | None = None,
        excluded: frozenset[int] = frozenset(),
        extra_rack_counts: dict[int, int] | None = None,
        extra_stripe_nodes: set[int] | None = None,
    ) -> BlockRepair:
        """Plan the reconstruction of one lost or corrupt block.

        A block whose home node is still live (the corruption case) is
        rewritten in place; a lost block is relocated to the least-loaded
        live, non-``excluded`` node outside its stripe, preferring racks
        that hold fewer than ``rack_cap`` blocks of the stripe.  Raises
        :class:`~repro.faults.errors.DataUnavailableError` when fewer than
        ``k`` readable sources remain.
        """
        k = self.block_map.params.k
        readable = [
            stored
            for stored in self.block_map.readable_stripe_blocks(
                block.stripe_id, failed_nodes
            )
            if stored.block != block and stored.node_id not in excluded
        ]
        if len(readable) < k:
            raise DataUnavailableError(
                f"stripe {block.stripe_id} has only {len(readable)} readable "
                f"survivors, need k={k}; block {block} cannot be rebuilt",
                stripe_id=block.stripe_id,
            )
        home = self.block_map.node_of(block)
        if home not in failed_nodes and home not in excluded:
            destination = home  # checksum-bad copy: rewrite in place
        else:
            destination = self._pick_destination(
                block, failed_nodes, excluded, load, extra_rack_counts,
                extra_stripe_nodes,
            )
            if load is not None:
                load[destination] += 1
        sources = tuple(
            sorted(
                rng.spawn("repair").sample(str(block), readable, k),
                key=lambda stored: stored.block,
            )
        )
        return BlockRepair(block=block, destination=destination, sources=sources)

    def _pick_destination(
        self,
        block: BlockId,
        failed_nodes: frozenset[int],
        excluded: frozenset[int],
        load: dict[int, int] | None,
        extra_rack_counts: dict[int, int] | None,
        extra_stripe_nodes: set[int] | None = None,
    ) -> int:
        """Least-loaded live destination, with graceful constraint fallback."""
        if load is None:
            load = {
                node_id: 0
                for node_id in self.topology.node_ids()
                if node_id not in failed_nodes and node_id not in excluded
            }
        if not load:
            raise RuntimeError(
                f"no live destination node available to rebuild block {block}"
            )
        survivors = self.block_map.surviving_stripe_blocks(
            block.stripe_id, failed_nodes
        )
        stripe_nodes = {stored.node_id for stored in survivors}
        if extra_stripe_nodes:
            stripe_nodes |= extra_stripe_nodes
        rack_counts: dict[int, int] = dict(extra_rack_counts or {})
        for stored in survivors:
            rack = self.topology.rack_of(stored.node_id)
            rack_counts[rack] = rack_counts.get(rack, 0) + 1
        distinct = [node_id for node_id in load if node_id not in stripe_nodes]
        under_cap = [
            node_id
            for node_id in distinct
            if self.rack_cap <= 0
            or rack_counts.get(self.topology.rack_of(node_id), 0) < self.rack_cap
        ]
        # Tiered fallback: rack cap, then distinct-node, then double-up
        # (stripes as wide as the cluster -- the paper's testbed layout --
        # leave no survivor without a block; real HDFS-RAID doubles up until
        # a replacement node joins).
        candidates = under_cap or distinct or list(load)
        return min(candidates, key=lambda node_id: (load[node_id], node_id))
