#!/usr/bin/env python
"""Run a real WordCount on the functional testbed, with a dead datanode.

Unlike the simulator, the testbed really executes everything: text is
erasure-coded with Reed-Solomon into per-node block stores, a slave is
killed, map tasks whose blocks are lost perform genuine degraded reads
(download k surviving blocks, decode), and the final word counts are
checked against the ground truth computed directly from the corpus --
demonstrating that degraded-first scheduling changes *when* work happens,
never *what* is computed.

Run:  python examples/testbed_wordcount.py    (takes ~30 s)
"""

from collections import Counter
from dataclasses import replace

from repro.mapreduce.job import MapTaskCategory, TaskKind
from repro.testbed import TestbedCluster, TestbedConfig, WordCountJob


def main() -> None:
    config = replace(TestbedConfig(seed=11), num_blocks=120)
    print(f"Building a {config.num_nodes}-slave testbed with "
          f"{config.num_blocks} x {config.block_size // 1024} KB blocks, "
          f"code {config.code}...")
    cluster = TestbedCluster(config)
    truth = Counter(cluster.corpus.decode().split())

    failed = cluster.kill_node()
    print(f"Killed slave {sorted(failed)[0]}; its blocks now need degraded reads.\n")

    for scheduler in ("LF", "EDF"):
        result = cluster.run_job(WordCountJob(), scheduler=scheduler, failed_nodes=failed)
        correct = dict(truth) == result.output
        degraded = result.mean_runtime(TaskKind.MAP, MapTaskCategory.DEGRADED)
        normal = result.mean_runtime(
            TaskKind.MAP,
            MapTaskCategory.NODE_LOCAL,
            MapTaskCategory.RACK_LOCAL,
            MapTaskCategory.REMOTE,
        )
        print(
            f"  {scheduler}: runtime={result.runtime:5.2f} s   "
            f"normal map={normal:5.2f} s   degraded map={degraded:5.2f} s   "
            f"output {'MATCHES' if correct else 'DIFFERS FROM'} ground truth"
        )
        if not correct:
            raise SystemExit("output mismatch -- degraded read is broken")

    print(
        "\nBoth schedulers produce identical, correct word counts; EDF just"
        "\nfinishes sooner by overlapping degraded reads with the map phase."
    )


if __name__ == "__main__":
    main()
