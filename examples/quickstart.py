#!/usr/bin/env python
"""Quickstart: simulate a MapReduce job on a degraded erasure-coded cluster.

Builds the paper's default simulated cluster (40 nodes, 4 racks, (20,15)
code, 1440 blocks), fails one node, and compares Hadoop's locality-first
scheduling (LF) against the paper's enhanced degraded-first scheduling
(EDF).  Expect EDF to cut the failure-mode runtime by roughly 30%.

Run:  python examples/quickstart.py
"""

from repro import FailurePattern, SimulationConfig, run_simulation


def main() -> None:
    config = SimulationConfig(seed=42)

    print("Simulating the paper's default cluster with one failed node...\n")
    runtimes = {}
    for scheduler in ("LF", "BDF", "EDF"):
        result = run_simulation(config.with_scheduler(scheduler))
        job = result.job(0)
        runtimes[scheduler] = job.runtime
        print(
            f"  {scheduler}: runtime={job.runtime:7.1f} s   "
            f"degraded tasks={job.degraded_task_count}   "
            f"mean degraded read={job.mean_degraded_read_time():5.1f} s"
        )

    normal = run_simulation(config.with_failure(FailurePattern.NONE))
    print(f"\n  normal mode (no failure): {normal.job(0).runtime:7.1f} s")

    reduction = (runtimes["LF"] - runtimes["EDF"]) / runtimes["LF"]
    print(f"\nEDF reduces LF's failure-mode runtime by {reduction:.1%}.")
    print("The paper reports reductions of ~17-40% depending on configuration.")


if __name__ == "__main__":
    main()
