"""Unit tests for the JobTracker's fault-tolerance machinery."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.scheduler import SchedulerContext, make_scheduler
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import MapAssignment, MapTaskCategory, TaskKind
from repro.mapreduce.master import JobTracker
from repro.mapreduce.metrics import TaskRecord
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster


def make_tracker(**tracker_kwargs) -> JobTracker:
    sim = Simulator()
    topology = ClusterTopology.from_rack_sizes([3, 3], map_slots=2)
    hdfs = HdfsRaidCluster(
        topology, CodeParams(4, 2), num_native_blocks=12,
        placement="declustered", rng=RngStreams(4),
    )
    scheduler = make_scheduler(
        "LF",
        SchedulerContext(
            topology=topology,
            live_nodes=set(topology.node_ids()),
            expected_degraded_read_time=2.0,
            map_time_mean=20.0,
            reduce_slowstart=0.0,
        ),
    )
    return JobTracker(sim, topology, hdfs, scheduler, frozenset(), **tracker_kwargs)


def start_one_map(tracker: JobTracker, slave_id: int = 1) -> MapAssignment:
    """Pop a local block for ``slave_id`` and register its attempt."""
    state = tracker.job_state(0)
    picked = state.pop_local(slave_id)
    assert picked is not None
    block, category = picked
    assignment = MapAssignment(
        job_id=0, block=block, category=category, slave_id=slave_id
    )
    tracker.note_attempt_started(assignment)
    return assignment


@pytest.fixture
def tracker() -> JobTracker:
    tracker = make_tracker()
    tracker.expect_jobs(1)
    tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
    return tracker


class TestHeartbeatBookkeeping:
    def test_heartbeat_records_timestamp(self, tracker):
        tracker.sim._now = 7.0  # advance without running processes
        tracker.heartbeat(1, 0, 0)
        assert tracker.last_heartbeat[1] == 7.0

    def test_blacklisted_node_gets_no_work(self, tracker):
        tracker.blacklisted.add(1)
        assert tracker.heartbeat(1, 2, 1) == ([], [])

    def test_fail_node_forgets_heartbeat(self, tracker):
        tracker.heartbeat(1, 0, 0)
        tracker.fail_node(1)
        assert 1 not in tracker.last_heartbeat


class TestDeclareDead:
    def test_records_detection_latency(self, tracker):
        tracker.sim._now = 45.0
        tracker.declare_dead(1, failed_at=30.0)
        (record,) = tracker.faults.detections
        assert record.node == 1
        assert record.latency == pytest.approx(15.0)
        assert 1 in tracker.failed_nodes

    def test_requeues_registered_attempts(self, tracker):
        state = tracker.job_state(0)
        assignment = start_one_map(tracker, slave_id=1)
        launched = state.m
        tracker.declare_dead(1)
        assert state.m == launched - 1
        assert tracker.killed_tasks == 1

    def test_idempotent_for_known_dead_node(self, tracker):
        tracker.declare_dead(1)
        tracker.declare_dead(1)
        assert len(tracker.faults.detections) == 1


class TestRetryBudget:
    def test_exhaustion_fails_the_job(self):
        tracker = make_tracker(max_attempts=1)
        tracker.expect_jobs(1)
        tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
        assignment = start_one_map(tracker)
        tracker.on_map_task_killed(assignment)
        metrics = tracker.metrics[0]
        assert metrics.failed
        assert "max_attempts" in metrics.failure_reason
        assert tracker.finished  # the job is retired, not wedged
        with pytest.raises(KeyError):
            tracker.job_state(0)

    def test_below_budget_requeues(self, tracker):
        state = tracker.job_state(0)
        assignment = start_one_map(tracker)
        tracker.on_map_task_killed(assignment)
        assert not tracker.metrics[0].failed
        assert state.has_unassigned_maps()

    def test_attempt_numbers_increment(self, tracker):
        assignment = start_one_map(tracker)
        assert tracker.attempt_of(assignment) == 1
        tracker.on_map_task_killed(assignment)
        tracker.note_attempt_started(assignment)
        assert tracker.attempt_of(assignment) == 2


class TestBlacklist:
    def test_third_consecutive_failure_blacklists(self):
        tracker = make_tracker(blacklist_threshold=3)
        tracker.expect_jobs(1)
        tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
        for _ in range(3):
            tracker.fail_node(1)
            tracker.recover_node(1)
        assert 1 in tracker.blacklisted
        (record,) = tracker.faults.blacklistings
        assert record.consecutive_failures == 3
        # Recovered but blacklisted: alive, yet not schedulable.
        assert 1 not in tracker.failed_nodes
        assert 1 not in tracker.scheduler.context.live_nodes

    def test_success_resets_the_streak(self):
        tracker = make_tracker(blacklist_threshold=2)
        tracker.expect_jobs(1)
        tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
        tracker.fail_node(1)
        tracker.recover_node(1)
        assignment = start_one_map(tracker, slave_id=1)
        record = TaskRecord(
            job_id=0, kind=TaskKind.MAP, category=MapTaskCategory.NODE_LOCAL,
            slave_id=1, launch_time=0.0, finish_time=10.0,
        )
        tracker.on_map_complete(record, shuffle_bytes=0.0, assignment=assignment)
        assert tracker.consecutive_failures[1] == 0
        tracker.fail_node(1)
        assert 1 not in tracker.blacklisted

    def test_threshold_none_disables(self):
        tracker = make_tracker(blacklist_threshold=None)
        tracker.expect_jobs(1)
        tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
        for _ in range(5):
            tracker.fail_node(1)
            tracker.recover_node(1)
        assert tracker.blacklisted == set()


class TestRecovery:
    def test_recover_restores_live_view(self, tracker):
        tracker.fail_node(1)
        assert 1 not in tracker.scheduler.context.live_nodes
        tracker.recover_node(1)
        assert 1 in tracker.scheduler.context.live_nodes
        assert 1 not in tracker.failed_nodes
        (record,) = tracker.faults.recoveries

    def test_recover_reclaims_degraded_tasks(self, tracker):
        state = tracker.job_state(0)
        degraded_before = state.M_d
        tracker.fail_node(1)
        converted = state.M_d - degraded_before
        assert converted > 0  # node 1 homed at least one pending block
        reclaimed = tracker.recover_node(1)
        assert reclaimed == converted
        assert state.M_d == degraded_before
        assert state.pending_node_local_count(1) > 0

    def test_recover_unknown_node_is_noop(self, tracker):
        assert tracker.recover_node(1) == 0
        assert tracker.faults.recoveries == []
