"""Seeded generator of Gutenberg-like plain text.

The paper's testbed processes 15 GB of Project Gutenberg plain text.  With
no network access we substitute a synthetic corpus whose statistics match
what the three jobs care about:

* a Zipf-distributed vocabulary (WordCount's combiner effectiveness and
  shuffle volume depend on word-frequency skew),
* line lengths of a few words to a dozen (Grep emits whole lines),
* a heavy-tailed line distribution with many repeated lines (LineCount
  shuffles more data than Grep because popular lines repeat).

Everything is driven by a named seed, so corpora are reproducible.
"""

from __future__ import annotations

import random

#: Letters used to synthesise word shapes.
_VOWELS = "aeiou"
_CONSONANTS = "bcdfghjklmnprstvwz"

#: A core of real common words keeps the text looking like prose and gives
#: Grep plausible targets.
COMMON_WORDS = (
    "the of and to a in that it was he for on are as with his they at be this "
    "from have or by one had not but what all were when we there can an your "
    "which their said if do will each about how up out them then she many some "
    "so these would other into has more her two like him see time could no make "
    "than first been its who now people my made over did down only way find use "
    "may water long little very after words called just where most know"
).split()


def _synthesise_word(rng: random.Random) -> str:
    """Make a pronounceable pseudo-word of 2-4 syllables."""
    syllables = rng.randint(2, 4)
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(_CONSONANTS))
        parts.append(rng.choice(_VOWELS))
        if rng.random() < 0.3:
            parts.append(rng.choice(_CONSONANTS))
    return "".join(parts)


def build_vocabulary(size: int, seed: int) -> list[str]:
    """A vocabulary of ``size`` words: the common core plus synthetic words."""
    if size <= 0:
        raise ValueError(f"vocabulary size must be positive, got {size}")
    rng = random.Random(seed)
    vocabulary = list(COMMON_WORDS[: min(size, len(COMMON_WORDS))])
    seen = set(vocabulary)
    while len(vocabulary) < size:
        word = _synthesise_word(rng)
        if word not in seen:
            seen.add(word)
            vocabulary.append(word)
    return vocabulary


def _zipf_weights(size: int, exponent: float = 1.1) -> list[float]:
    """Zipf-law sampling weights for ranks ``1..size``."""
    return [1.0 / (rank**exponent) for rank in range(1, size + 1)]


def generate_corpus(
    num_bytes: int,
    seed: int = 0,
    vocabulary_size: int = 4000,
    repeated_line_fraction: float = 0.85,
    stock_line_count: int = 400,
) -> bytes:
    """Generate approximately ``num_bytes`` of newline-separated prose.

    ``repeated_line_fraction`` of lines are drawn from a pool of
    ``stock_line_count`` stock lines, giving LineCount a skewed
    line-frequency distribution.  The default 85% repetition keeps
    LineCount's combined map output a few times WordCount's -- the paper's
    relative shuffle ordering (Grep < WordCount < LineCount) -- instead of
    shuffling nearly the whole input, which fully unique lines would cause.
    """
    if num_bytes <= 0:
        raise ValueError(f"corpus size must be positive, got {num_bytes}")
    rng = random.Random(seed)
    vocabulary = build_vocabulary(vocabulary_size, seed)
    weights = _zipf_weights(len(vocabulary))
    cumulative = list(_accumulate(weights))

    word_buffer: list[str] = []

    def next_words(count: int) -> list[str]:
        # Drawing words in large batches amortises random.choices' setup
        # cost, which dominates when lines are drawn one by one.
        while len(word_buffer) < count:
            word_buffer.extend(
                rng.choices(vocabulary, cum_weights=cumulative, k=max(4096, count))
            )
        taken = word_buffer[:count]
        del word_buffer[:count]
        return taken

    def fresh_line() -> str:
        return " ".join(next_words(rng.randint(4, 12)))

    stock_lines = [fresh_line() for _ in range(stock_line_count)]
    chunks: list[str] = []
    total = 0
    while total < num_bytes:
        if rng.random() < repeated_line_fraction:
            line = rng.choice(stock_lines)
        else:
            line = fresh_line()
        chunks.append(line)
        total += len(line) + 1
    text = "\n".join(chunks) + "\n"
    return text.encode("ascii")[:num_bytes]


def _accumulate(values: list[float]) -> list[float]:
    """Running sums of ``values``."""
    sums: list[float] = []
    total = 0.0
    for value in values:
        total += value
        sums.append(total)
    return sums
