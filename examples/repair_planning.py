#!/usr/bin/env python
"""Plan the storage-layer repair of a failed node.

Degraded-first scheduling covers the window *between* a node failure and
its reconstruction.  This example quantifies the other side of that
trade-off: how much data a full-node repair moves, which links carry it,
and a bandwidth-bound estimate of how long it takes -- numbers an operator
compares against the MapReduce slowdown to decide how urgently to repair.

Run:  python examples/repair_planning.py
"""

from repro.cluster.network import MB, NetworkSpec, gbps
from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster
from repro.storage.repair import RepairPlanner


def main() -> None:
    rng = RngStreams(21)
    topology = ClusterTopology.homogeneous(12, 3)
    block_size = 64 * MB
    network = NetworkSpec(rack_download_bw=gbps(1))

    for code in (CodeParams(6, 4), CodeParams(9, 6), CodeParams(12, 10)):
        # (12,10) stripes are wider than the rack rule permits on 3 racks,
        # exactly like the paper's testbed; node-failure tolerance only.
        cluster = HdfsRaidCluster(
            topology, code, num_native_blocks=240, placement="declustered", rng=rng,
            rack_fault_tolerant=code.parity * topology.num_racks >= code.n,
        )
        planner = RepairPlanner(cluster.block_map, topology)
        plan = planner.plan(frozenset({0}), rng)
        moved = plan.lost_block_count * code.k * block_size
        cross = plan.cross_rack_bytes(topology, block_size)
        duration = plan.estimated_duration(topology, network, block_size)
        print(
            f"code {str(code):>8}: lost blocks={plan.lost_block_count:3d}  "
            f"data moved={moved / (1024**3):5.1f} GiB "
            f"(cross-rack {cross / moved:4.0%})  "
            f"est. repair time={duration:6.1f} s"
        )

    print(
        "\nLarger k means cheaper storage but k-times amplified repair"
        "\ntraffic -- the reason degraded-first scheduling matters while"
        "\nthe (expensive) repair is deferred or in progress."
    )


if __name__ == "__main__":
    main()
