"""Task trackers: slave heartbeat loops and task execution processes.

Each live node runs a *slave process* that heartbeats the master every
``heartbeat_interval`` seconds (3 s by default, as in the paper) and spawns
one *task runner* process per assignment.  Map runners perform the remote
fetch or degraded read over the NodeTree before processing; reduce runners
drain shuffle data as maps complete and process once the map phase ends.

Fault semantics (see :mod:`repro.faults`): a *crash* kills the slave loop
and its task processes silently -- the master only notices once heartbeats
expire and requeues from its own in-flight registry.  The legacy
:meth:`SlaveRuntime.fail_node` keeps the omniscient behaviour (master told
instantly, killed tasks reported back) for the paper's original at-strike
experiments.  Task processes distinguish interrupt causes: ``"crash"``
(die silently), ``"speculative-kill"`` / ``"job-aborted"`` (die but release
the slot -- the node is alive), and node-failure kills (hand the task back
for re-execution).
"""

from __future__ import annotations

from collections.abc import Generator

from repro.cluster.nodetree import NodeTree
from repro.faults.errors import DataUnavailableError
from repro.mapreduce.config import SimulationConfig
from repro.mapreduce.job import MapAssignment, MapTaskCategory, ReduceAssignment, TaskKind
from repro.mapreduce.master import JobTracker
from repro.mapreduce.metrics import TaskRecord
from repro.sim.engine import Interrupt, Process, Simulator, Timeout
from repro.sim.resources import Semaphore
from repro.sim.rng import RngStreams
from repro.storage.block import BlockId
from repro.storage.degraded import DegradedReadPlanner

#: Interrupt causes after which the slot is released (the node is alive).
_RELEASE_SLOT_CAUSES = ("speculative-kill", "job-aborted")

#: Interrupt cause thrown into a degraded reader whose source node died:
#: the affected flows were cancelled and the read must re-plan.
_REPLAN_CAUSE = "degraded-replan"


class SlaveRuntime:
    """Everything slave and task processes need, bundled once per trial."""

    def __init__(
        self,
        sim: Simulator,
        config: SimulationConfig,
        tracker: JobTracker,
        nodetree: NodeTree,
        planner: DegradedReadPlanner,
        rng: RngStreams,
        observer=None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.tracker = tracker
        self.nodetree = nodetree
        self.planner = planner
        self.rng = rng
        #: Optional slot observer (an ObservabilityCollector); attached to
        #: every slot semaphore, including ones recreated after recovery.
        self.observer = observer
        topology = tracker.topology
        self.map_slots = {
            node.node_id: Semaphore(sim, node.map_slots, name=f"map:{node.node_id}")
            for node in topology.nodes
        }
        self.reduce_slots = {
            node.node_id: Semaphore(sim, node.reduce_slots, name=f"reduce:{node.node_id}")
            for node in topology.nodes
        }
        if observer is not None:
            for semaphore in (*self.map_slots.values(), *self.reduce_slots.values()):
                semaphore.observer = observer
        self._running: dict[int, set[Process]] = {
            node.node_id: set() for node in topology.nodes
        }
        #: Ground-truth crash instants (nodes dead but possibly undetected).
        self.crash_times: dict[int, float] = {}
        self._slowdowns: dict[int, float] = {}
        self._slave_procs: dict[int, Process] = {}
        #: Attached by the simulation wiring when a RepairConfig is set.
        self.repair_driver = None
        #: In-flight degraded reads by token, so a dying source node can
        #: break exactly the reads fetching from it (see
        #: :meth:`_abort_transfers_from`).
        self._degraded_reads: dict[int, dict] = {}
        self._next_read_token = 0

    def spawn_slave(self, node_id: int) -> Process:
        """Start (or restart, after recovery) the heartbeat loop of a node."""
        process = self.sim.spawn(
            slave_process(self, node_id), name=f"slave:{node_id}"
        )
        self._slave_procs[node_id] = process
        return process

    def fail_node(self, node_id: int) -> None:
        """Kill a node mid-run *omnisciently*: master told, then live tasks.

        This is the paper's original at-strike semantics.  Scripted
        schedules use :meth:`crash_node` instead, where the master must
        detect the death from heartbeat expiry.
        """
        self.tracker.fail_node(node_id)
        self.crash_times.setdefault(node_id, self.sim.now)
        self._slowdowns.pop(node_id, None)
        slave = self._slave_procs.pop(node_id, None)
        if slave is not None:
            slave.interrupt("crash")
        for process in list(self._running[node_id]):
            process.interrupt("node-failure")
        self._running[node_id].clear()
        self._note_slots_lost(node_id)
        self._abort_transfers_from(node_id)

    def crash_node(self, node_id: int) -> None:
        """Kill a node silently: heartbeats stop, its processes die.

        The master is *not* informed; it declares the node dead once the
        heartbeat-expiry detector fires, and requeues the lost attempts
        from its in-flight registry at that point.
        """
        if node_id in self.crash_times or node_id in self.tracker.failed_nodes:
            return
        self.crash_times[node_id] = self.sim.now
        self._slowdowns.pop(node_id, None)
        slave = self._slave_procs.pop(node_id, None)
        if slave is not None:
            slave.interrupt("crash")
        for process in list(self._running[node_id]):
            process.interrupt("crash")
        self._running[node_id].clear()
        self._note_slots_lost(node_id)
        self._abort_transfers_from(node_id)

    def _abort_transfers_from(self, node_id: int) -> None:
        """A node just died: break every transfer it was serving.

        Degraded reads fetching from the node have their flows cancelled
        and their reader processes interrupted with :data:`_REPLAN_CAUSE`
        so they re-plan against current survivors; in-flight repairs with
        the node as an endpoint are aborted the same way.  Readers that
        died with the node are skipped -- their own kill path handles them.
        """
        for entry in list(self._degraded_reads.values()):
            if node_id not in entry["sources"]:
                continue
            reader = entry["reader"]
            if (
                reader == node_id
                or reader in self.crash_times
                or reader in self.tracker.failed_nodes
            ):
                continue
            entry["lost"].add(node_id)
            for flow in entry["flows"]:
                if not flow.fired:
                    self.nodetree.cancel(flow)
            if entry["process"] is not None:
                entry["process"].interrupt(_REPLAN_CAUSE)
        if self.repair_driver is not None:
            self.repair_driver.abort_flows_from(node_id)

    def _register_degraded_read(self, entry: dict) -> int:
        token = self._next_read_token
        self._next_read_token += 1
        self._degraded_reads[token] = entry
        return token

    def _unregister_degraded_read(self, token: int) -> None:
        self._degraded_reads.pop(token, None)

    # -- corruption faults ------------------------------------------------------

    def corrupt_block(self, block: BlockId) -> None:
        """Ground-truth corruption strike from the failure schedule.

        Nobody is told: readers discover the bad checksum at read time and
        the scrubber (if configured) finds it proactively.
        """
        self.tracker.hdfs.block_map.mark_corrupt(block)

    def is_corrupt(self, block: BlockId) -> bool:
        """Whether a block's stored copy is currently checksum-bad."""
        return self.tracker.hdfs.block_map.is_corrupt(block)

    def _note_slots_lost(self, node_id: int) -> None:
        """Zero the dead node's slot-occupancy series (observability only)."""
        if self.observer is None:
            return
        for semaphore in (self.map_slots[node_id], self.reduce_slots[node_id]):
            self.observer.slot_changed(
                self.sim.now, semaphore.name, 0, semaphore.capacity, 0
            )

    def recover_node(self, node_id: int) -> None:
        """A dead node rejoins: fresh slots, fresh heartbeat loop.

        Whatever ran on the node died with it, so the slot semaphores are
        recreated at full capacity.  If the node recovered *before* the
        expiry detector declared it dead, the rejoining (empty) tracker
        tells the master its old attempts are gone and they are requeued
        immediately.
        """
        if node_id in self.tracker.failed_nodes:
            self.tracker.recover_node(node_id)
        elif node_id in self.crash_times:
            self.tracker.last_heartbeat[node_id] = self.sim.now
            self.tracker.requeue_node_attempts(node_id)
        else:
            return  # the node was never down
        self.crash_times.pop(node_id, None)
        node = self.tracker.topology.node(node_id)
        self.map_slots[node_id] = Semaphore(
            self.sim, node.map_slots, name=f"map:{node_id}"
        )
        self.reduce_slots[node_id] = Semaphore(
            self.sim, node.reduce_slots, name=f"reduce:{node_id}"
        )
        if self.observer is not None:
            self.map_slots[node_id].observer = self.observer
            self.reduce_slots[node_id].observer = self.observer
            # The dead node's slots emptied with it; restart the series at 0.
            self.map_slots[node_id]._notify()
            self.reduce_slots[node_id]._notify()
        self._running[node_id] = set()
        self.spawn_slave(node_id)

    # -- slowdowns --------------------------------------------------------------

    def begin_slowdown(self, node_id: int, factor: float) -> None:
        """Scale a node's processing speed down by ``factor`` (stacking)."""
        self._slowdowns[node_id] = self._slowdowns.get(node_id, 1.0) * factor

    def end_slowdown(self, node_id: int, factor: float) -> None:
        """Undo one :meth:`begin_slowdown` (no-op if a crash cleared it)."""
        current = self._slowdowns.get(node_id)
        if current is None:
            return
        remaining = current / factor
        if abs(remaining - 1.0) < 1e-12:
            self._slowdowns.pop(node_id)
        else:
            self._slowdowns[node_id] = remaining

    def _register(self, node_id: int, process: Process) -> None:
        self._running[node_id].add(process)

    def _unregister(self, node_id: int, process: Process) -> None:
        self._running[node_id].discard(process)

    def speed_of(self, node_id: int) -> float:
        """Effective speed factor of a node (including active slowdowns)."""
        base = self.tracker.topology.node(node_id).speed_factor
        return base / self._slowdowns.get(node_id, 1.0)


def slave_process(runtime: SlaveRuntime, node_id: int) -> Generator:
    """The heartbeat loop of one live slave.

    Heartbeat phases are staggered by a per-slave random offset within one
    interval (unless ``config.heartbeat_stagger`` is off), as real task
    trackers' heartbeats are not synchronised; without this, all slaves
    would report at the same instants in node-id order, a systematic
    artifact that biases which nodes receive degraded tasks.
    """
    sim = runtime.sim
    tracker = runtime.tracker
    interval = runtime.config.heartbeat_interval
    if runtime.config.heartbeat_stagger:
        offset = runtime.rng.spawn("heartbeat").stream(str(node_id)).uniform(0.0, interval)
        yield Timeout(offset)
    while not tracker.finished:
        if node_id in tracker.failed_nodes or node_id in runtime.crash_times:
            return  # this slave just died
        free_map = runtime.map_slots[node_id].available
        free_reduce = runtime.reduce_slots[node_id].available
        maps, reduces = tracker.heartbeat(node_id, free_map, free_reduce)
        bus = tracker.bus
        for assignment in maps:
            if not runtime.map_slots[node_id].try_acquire():
                raise RuntimeError(
                    f"scheduler over-assigned map slots on node {node_id}"
                )
            process = sim.spawn(
                map_task_process(runtime, assignment),
                name=f"map:{assignment.job_id}:{assignment.block}",
            )
            runtime._register(node_id, process)
            attempt = tracker.note_attempt_started(assignment, process)
            if bus is not None:
                bus.emit(
                    "task.launch", sim.now,
                    job_id=assignment.job_id, task="map", node=node_id,
                    block=str(assignment.block),
                    category=assignment.category.value,
                    attempt=attempt.number, speculative=assignment.speculative,
                )
        for assignment in reduces:
            if not runtime.reduce_slots[node_id].try_acquire():
                raise RuntimeError(
                    f"scheduler over-assigned reduce slots on node {node_id}"
                )
            process = sim.spawn(
                reduce_task_process(runtime, assignment),
                name=f"reduce:{assignment.job_id}:{assignment.reduce_index}",
            )
            runtime._register(node_id, process)
            attempt = tracker.note_attempt_started(assignment, process)
            if bus is not None:
                bus.emit(
                    "task.launch", sim.now,
                    job_id=assignment.job_id, task="reduce", node=node_id,
                    reduce_index=assignment.reduce_index,
                    attempt=attempt.number, speculative=False,
                )
        yield Timeout(interval)


def map_task_process(runtime: SlaveRuntime, assignment: MapAssignment) -> Generator:
    """Execute one map task: fetch (if needed), process, report.

    If the hosting node fails mid-task, the process receives an
    :class:`~repro.sim.engine.Interrupt`.  What happens next depends on the
    cause: an omniscient node failure hands the task straight back to the
    master; a silent crash does nothing (the master requeues once it
    detects the death); a speculative kill or job abort releases the slot
    (the node is alive) and drops the work.
    """
    try:
        yield from _map_task_body(runtime, assignment)
    except Interrupt as interrupt:
        bus = runtime.tracker.bus
        if bus is not None:
            bus.emit(
                "task.kill", runtime.sim.now,
                job_id=assignment.job_id, task="map", node=assignment.slave_id,
                block=str(assignment.block), cause=interrupt.cause,
            )
        if interrupt.cause == "crash":
            pass
        elif interrupt.cause in _RELEASE_SLOT_CAUSES:
            runtime.map_slots[assignment.slave_id].release()
        else:
            runtime.tracker.on_map_task_killed(assignment)


def _map_task_body(runtime: SlaveRuntime, assignment: MapAssignment) -> Generator:
    sim = runtime.sim
    config = runtime.config
    job = runtime.tracker.active_job(assignment.job_id)
    if job is None:
        # The job was aborted after this attempt was assigned but before
        # its first step ran; the master's "job-aborted" interrupt lost
        # that race.  Behave as the delivered interrupt would: free the
        # slot and drop the work.
        runtime.map_slots[assignment.slave_id].release()
        return
    record = TaskRecord(
        job_id=assignment.job_id,
        kind=TaskKind.MAP,
        category=assignment.category,
        slave_id=assignment.slave_id,
        launch_time=sim.now,
        attempt=runtime.tracker.attempt_of(assignment),
        speculative=assignment.speculative,
    )

    corrupt = runtime.is_corrupt(assignment.block)
    if assignment.category is MapTaskCategory.DEGRADED or corrupt:
        if corrupt and assignment.category is not MapTaskCategory.DEGRADED:
            # Checksum failure on a live replica: report it (which queues a
            # repair) and reconstruct from the stripe's other blocks instead.
            runtime.tracker.report_corruption(assignment.block, via="read")
        fetched = yield from _degraded_fetch(runtime, assignment, record)
        if not fetched:
            return
    elif assignment.category in (MapTaskCategory.RACK_LOCAL, MapTaskCategory.REMOTE):
        home = runtime.tracker.hdfs.node_of(assignment.block)
        yield runtime.nodetree.transfer(home, assignment.slave_id, config.block_size)
        record.download_time = sim.now - record.launch_time

    processing = runtime.rng.spawn("maptime").normal(
        f"{assignment.job_id}:{assignment.block}",
        job.config.map_time_mean,
        job.config.map_time_std,
    ) / runtime.speed_of(assignment.slave_id)
    yield Timeout(processing)

    record.finish_time = sim.now
    shuffle_bytes = config.block_size * job.config.shuffle_ratio
    runtime.map_slots[assignment.slave_id].release()
    if runtime.tracker.bus is not None:
        runtime.tracker.bus.emit(
            "task.finish", sim.now,
            job_id=assignment.job_id, task="map", node=assignment.slave_id,
            block=str(assignment.block), category=assignment.category.value,
            runtime=record.finish_time - record.launch_time,
            download=record.download_time,
        )
    runtime.tracker.on_map_complete(record, shuffle_bytes, assignment)


def _degraded_fetch(
    runtime: SlaveRuntime, assignment: MapAssignment, record: TaskRecord
) -> Generator:
    """Reconstruct a lost/corrupt block, surviving source deaths mid-read.

    Plans a degraded read against the current survivors and streams the
    ``k`` fragments in.  If a source node dies while flows are in flight,
    :meth:`SlaveRuntime.abort_degraded_reads_from` cancels the flows and
    interrupts this process with :data:`_REPLAN_CAUSE`; the read then
    re-plans (avoiding every source it has watched die) after a linear
    backoff, up to ``config.degraded_read_retries`` times before the
    attempt is handed back to the master.  If the stripe has dropped below
    ``k`` readable blocks the task either parks on the tracker's
    availability event (``config.wait_for_repair``) or fails the job with
    a typed :class:`DataUnavailableError`.

    Returns ``True`` when the data landed, ``False`` when the task is over
    (job failed or attempt requeued); the caller must return immediately
    on ``False`` -- the slot has already been dealt with.
    """
    sim = runtime.sim
    config = runtime.config
    tracker = runtime.tracker
    bus = tracker.bus
    observed_dead: set[int] = set()
    replans = 0
    while True:
        # The block may have come back since this attempt was classified
        # degraded: its home node recovered, or a repair rebuilt it
        # elsewhere.  Then a plain remote read replaces reconstruction.
        home = tracker.hdfs.node_of(assignment.block)
        if (
            home not in tracker.failed_nodes
            and home not in runtime.crash_times
            and not runtime.is_corrupt(assignment.block)
        ):
            if home == assignment.slave_id:
                return True
            flow = runtime.nodetree.transfer(
                home, assignment.slave_id, config.block_size
            )
            attempt = tracker.attempt_record(assignment)
            token = runtime._register_degraded_read(
                {
                    "sources": {home},
                    "flows": [flow],
                    "process": attempt.process if attempt is not None else None,
                    "reader": assignment.slave_id,
                    "lost": set(),
                }
            )
            try:
                yield flow
            except Interrupt as interrupt:
                runtime._unregister_degraded_read(token)
                if interrupt.cause != _REPLAN_CAUSE:
                    raise
                observed_dead.add(home)
                replans += 1
                if replans > config.degraded_read_retries:
                    runtime.map_slots[assignment.slave_id].release()
                    tracker.on_map_task_killed(assignment)
                    return False
                yield Timeout(config.degraded_read_backoff * replans)
                continue
            runtime._unregister_degraded_read(token)
            record.download_time = sim.now - record.launch_time
            return True
        # Avoid only sources that are *still* down: a recovered node is a
        # perfectly good source again.
        avoid = frozenset(
            node for node in observed_dead
            if node in runtime.crash_times or node in tracker.failed_nodes
        )
        try:
            plan = runtime.planner.plan(
                assignment.block,
                assignment.slave_id,
                tracker.failed_nodes,
                runtime.rng,
                avoid=avoid,
            )
        except DataUnavailableError as error:
            if config.wait_for_repair:
                if bus is not None:
                    bus.emit(
                        "degraded.park", sim.now,
                        job_id=assignment.job_id, block=str(assignment.block),
                        node=assignment.slave_id, reason=str(error),
                    )
                tracker.parked_tasks += 1
                try:
                    yield tracker.availability_event()
                finally:
                    tracker.parked_tasks -= 1
                if bus is not None:
                    bus.emit(
                        "degraded.unpark", sim.now,
                        job_id=assignment.job_id, block=str(assignment.block),
                        node=assignment.slave_id,
                    )
                continue
            runtime.map_slots[assignment.slave_id].release()
            tracker.fail_job_data_unavailable(assignment.job_id, str(error))
            return False
        # A source may have crashed between this attempt being scheduled and
        # the plan being drawn (the tracker only learns of silent crashes at
        # heartbeat expiry).  Reading from a dead node would hang forever.
        stale = {source.node_id for source in plan.sources} & set(runtime.crash_times)
        if stale:
            observed_dead |= stale
            replans += 1
            if replans > config.degraded_read_retries:
                runtime.map_slots[assignment.slave_id].release()
                tracker.on_map_task_killed(assignment)
                return False
            if bus is not None:
                bus.emit(
                    "degraded.replan", sim.now,
                    job_id=assignment.job_id, block=str(assignment.block),
                    node=assignment.slave_id, replan=replans,
                    lost_sources=sorted(stale),
                )
            yield Timeout(config.degraded_read_backoff * replans)
            continue
        per_rack: dict[int, float] = {}
        for source in plan.sources:
            if source.node_id == assignment.slave_id:
                continue  # already on this node, no transfer
            rack = runtime.tracker.topology.rack_of(source.node_id)
            per_rack[rack] = per_rack.get(rack, 0.0) + config.block_size
        if bus is not None:
            bus.emit(
                "degraded.start", sim.now,
                job_id=assignment.job_id, block=str(assignment.block),
                node=assignment.slave_id,
                surviving_blocks=len(plan.sources),
                racks={str(rack): size for rack, size in sorted(per_rack.items())},
            )
        flows = [
            runtime.nodetree.transfer_from_rack(rack, assignment.slave_id, size)
            for rack, size in sorted(per_rack.items())
        ]
        attempt = tracker.attempt_record(assignment)
        entry = {
            "sources": {source.node_id for source in plan.sources},
            "flows": flows,
            "process": attempt.process if attempt is not None else None,
            "reader": assignment.slave_id,
            "lost": set(),
        }
        token = runtime._register_degraded_read(entry)
        try:
            if flows:
                yield sim.all_of(flows)
        except Interrupt as interrupt:
            runtime._unregister_degraded_read(token)
            if interrupt.cause != _REPLAN_CAUSE:
                raise
            observed_dead |= entry["lost"]
            replans += 1
            if replans > config.degraded_read_retries:
                runtime.map_slots[assignment.slave_id].release()
                tracker.on_map_task_killed(assignment)
                return False
            if bus is not None:
                bus.emit(
                    "degraded.replan", sim.now,
                    job_id=assignment.job_id, block=str(assignment.block),
                    node=assignment.slave_id, replan=replans,
                    lost_sources=sorted(entry["lost"]),
                )
            yield Timeout(config.degraded_read_backoff * replans)
            continue
        runtime._unregister_degraded_read(token)
        record.download_time = sim.now - record.launch_time
        if bus is not None:
            bus.emit(
                "degraded.end", sim.now,
                job_id=assignment.job_id, block=str(assignment.block),
                node=assignment.slave_id, duration=record.download_time,
            )
        return True


def reduce_task_process(runtime: SlaveRuntime, assignment: ReduceAssignment) -> Generator:
    """Execute one reduce task: drain shuffle until maps finish, then process.

    Like maps, a reduce task killed by a node failure is requeued; its
    already-fetched shuffle data died with the node, so the replacement
    starts from scratch.
    """
    try:
        yield from _reduce_task_body(runtime, assignment)
    except Interrupt as interrupt:
        bus = runtime.tracker.bus
        if bus is not None:
            bus.emit(
                "task.kill", runtime.sim.now,
                job_id=assignment.job_id, task="reduce",
                node=assignment.slave_id,
                reduce_index=assignment.reduce_index, cause=interrupt.cause,
            )
        if interrupt.cause == "crash":
            pass
        elif interrupt.cause in _RELEASE_SLOT_CAUSES:
            runtime.reduce_slots[assignment.slave_id].release()
        else:
            runtime.tracker.on_reduce_task_killed(assignment)


def _reduce_task_body(runtime: SlaveRuntime, assignment: ReduceAssignment) -> Generator:
    sim = runtime.sim
    job = runtime.tracker.active_job(assignment.job_id)
    if job is None:
        # Same race as in _map_task_body: the job died before this
        # attempt's first step and the abort interrupt was dropped.
        runtime.reduce_slots[assignment.slave_id].release()
        return
    shuffle = runtime.tracker.shuffles[assignment.job_id]
    record = TaskRecord(
        job_id=assignment.job_id,
        kind=TaskKind.REDUCE,
        category=None,
        slave_id=assignment.slave_id,
        launch_time=sim.now,
        attempt=runtime.tracker.attempt_of(assignment),
    )
    shuffling_time = 0.0
    while True:
        batch = shuffle.take(assignment.reduce_index)
        if batch:
            drain_start = sim.now
            flows = [
                runtime.nodetree.transfer_from_rack(rack, assignment.slave_id, size)
                for rack, size in sorted(batch.items())
            ]
            yield sim.all_of(flows)
            shuffling_time += sim.now - drain_start
            # Pace drains so that many small deposits batch into one flow.
            yield Timeout(runtime.config.shuffle_drain_interval)
            continue
        if job.maps_all_completed():
            break
        yield shuffle.wait(assignment.reduce_index)
    record.download_time = shuffling_time

    processing = runtime.rng.spawn("reducetime").normal(
        f"{assignment.job_id}:{assignment.reduce_index}",
        job.config.reduce_time_mean,
        job.config.reduce_time_std,
    ) / runtime.speed_of(assignment.slave_id)
    yield Timeout(processing)

    record.finish_time = sim.now
    runtime.reduce_slots[assignment.slave_id].release()
    if runtime.tracker.bus is not None:
        runtime.tracker.bus.emit(
            "task.finish", sim.now,
            job_id=assignment.job_id, task="reduce", node=assignment.slave_id,
            reduce_index=assignment.reduce_index,
            runtime=record.finish_time - record.launch_time,
            download=record.download_time,
        )
    runtime.tracker.on_reduce_complete(record, assignment)
