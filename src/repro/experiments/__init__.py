"""Per-figure/table experiment harnesses.

Every evaluation artifact of the paper has a module here that regenerates
its rows:

* :mod:`repro.experiments.fig5_analysis` -- Figure 5 (analytical model).
* :mod:`repro.experiments.fig7_simulation` -- Figure 7 (LF vs EDF sweeps).
* :mod:`repro.experiments.fig8_bdf_edf` -- Figure 8 (BDF vs EDF).
* :mod:`repro.experiments.fig9_testbed` -- Figure 9 (functional testbed).
* :mod:`repro.experiments.table1_breakdown` -- Table I (task breakdown).
* :mod:`repro.experiments.reliability` -- long-horizon reliability
  campaigns (MTTDL, degraded-read latency tails, saturation verdicts).
* :mod:`repro.experiments.registry` -- name -> runner mapping for the CLI.
* :mod:`repro.experiments.common` -- shared trial plumbing.
* :mod:`repro.experiments.campaign` -- crash-safe campaign engine
  (journaled resumable sweeps, worker fault tolerance).
* :mod:`repro.experiments.cache` -- integrity-verified result cache.
"""

from repro.experiments.campaign import (
    CampaignEngine,
    CampaignInterrupted,
    CampaignPolicy,
    SweepSpec,
    run_sweep,
)
from repro.experiments.cache import ResultCache
from repro.experiments.common import (
    ExperimentTable,
    NormalizationError,
    normalized_runtimes,
    run_failure_and_normal,
    run_many,
)
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.reliability import (
    CampaignConfig,
    render_report,
    report_to_json,
    run_campaign,
)

__all__ = [
    "CampaignConfig",
    "CampaignEngine",
    "CampaignInterrupted",
    "CampaignPolicy",
    "ExperimentTable",
    "NormalizationError",
    "ResultCache",
    "SweepSpec",
    "get_experiment",
    "list_experiments",
    "normalized_runtimes",
    "render_report",
    "report_to_json",
    "run_campaign",
    "run_failure_and_normal",
    "run_many",
    "run_sweep",
]
