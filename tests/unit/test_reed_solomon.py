"""Unit and property tests for the Reed-Solomon coder."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.reed_solomon import ReedSolomon


def make_stripe(coder: ReedSolomon, payloads: list[bytes]) -> list[bytes]:
    return list(payloads) + coder.encode(payloads)


class TestEncode:
    def test_parity_count(self):
        coder = ReedSolomon(6, 4)
        assert coder.parity_count == 2

    def test_encode_wrong_count(self):
        coder = ReedSolomon(4, 2)
        with pytest.raises(ValueError):
            coder.encode([b"ab"])

    def test_encode_unequal_lengths(self):
        coder = ReedSolomon(4, 2)
        with pytest.raises(ValueError):
            coder.encode([b"ab", b"abc"])

    def test_bad_params(self):
        with pytest.raises(ValueError):
            ReedSolomon(2, 3)
        with pytest.raises(ValueError):
            ReedSolomon(4, 0)

    def test_single_parity_recovers_either_native(self):
        """With one parity block, the code still repairs any single loss."""
        coder = ReedSolomon(3, 2)
        a, b = b"\x0f\xf0", b"\xff\x00"
        (parity,) = coder.encode([a, b])
        assert coder.reconstruct_block(0, {1: b, 2: parity}) == a
        assert coder.reconstruct_block(1, {0: a, 2: parity}) == b

    def test_generator_matrix_is_copy(self):
        coder = ReedSolomon(4, 2)
        g = coder.generator_matrix
        g[0, 0] ^= 1
        assert coder.generator_matrix[0, 0] != g[0, 0]


class TestDecode:
    def test_decode_from_parities_only(self):
        coder = ReedSolomon(4, 2)
        natives = [b"hello!", b"world."]
        stripe = make_stripe(coder, natives)
        recovered = coder.decode({2: stripe[2], 3: stripe[3]})
        assert recovered == natives

    def test_decode_mixed(self):
        coder = ReedSolomon(6, 4)
        natives = [bytes([i] * 8) for i in range(4)]
        stripe = make_stripe(coder, natives)
        recovered = coder.decode({0: stripe[0], 2: stripe[2], 4: stripe[4], 5: stripe[5]})
        assert recovered == natives

    def test_decode_needs_k(self):
        coder = ReedSolomon(4, 2)
        with pytest.raises(ValueError):
            coder.decode({0: b"xx"})

    def test_decode_bad_index(self):
        coder = ReedSolomon(4, 2)
        with pytest.raises(ValueError):
            coder.decode({0: b"xx", 9: b"yy"})

    def test_decode_unequal_lengths(self):
        coder = ReedSolomon(4, 2)
        with pytest.raises(ValueError):
            coder.decode({0: b"xx", 1: b"yyy"})


class TestReconstruct:
    def test_reconstruct_native(self):
        coder = ReedSolomon(4, 2)
        natives = [b"data-AA", b"data-BB"]
        stripe = make_stripe(coder, natives)
        rebuilt = coder.reconstruct_block(0, {1: stripe[1], 3: stripe[3]})
        assert rebuilt == natives[0]

    def test_reconstruct_parity(self):
        coder = ReedSolomon(4, 2)
        natives = [b"data-AA", b"data-BB"]
        stripe = make_stripe(coder, natives)
        rebuilt = coder.reconstruct_block(3, {0: stripe[0], 1: stripe[1]})
        assert rebuilt == stripe[3]

    def test_reconstruct_available_shortcut(self):
        coder = ReedSolomon(4, 2)
        natives = [b"aa", b"bb"]
        stripe = make_stripe(coder, natives)
        assert coder.reconstruct_block(1, {0: stripe[0], 1: stripe[1]}) == natives[1]

    def test_reconstruct_bad_index(self):
        coder = ReedSolomon(4, 2)
        with pytest.raises(ValueError):
            coder.reconstruct_block(7, {})


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),  # k
        st.integers(min_value=1, max_value=4),  # parity
        st.integers(min_value=1, max_value=64),  # block length
        st.randoms(use_true_random=False),
    )
    def test_any_k_subset_decodes(self, k, parity, length, pyrandom):
        """MDS round-trip: erase any n-k blocks, recover the natives."""
        n = k + parity
        coder = ReedSolomon(n, k)
        natives = [bytes(pyrandom.randrange(256) for _ in range(length)) for _ in range(k)]
        stripe = make_stripe(coder, natives)
        survivors = pyrandom.sample(range(n), k)
        recovered = coder.decode({index: stripe[index] for index in survivors})
        assert recovered == natives

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=3),
        st.randoms(use_true_random=False),
    )
    def test_every_block_reconstructible(self, k, parity, pyrandom):
        """Every single lost block is rebuildable from any k survivors."""
        n = k + parity
        coder = ReedSolomon(n, k)
        natives = [bytes(pyrandom.randrange(256) for _ in range(16)) for _ in range(k)]
        stripe = make_stripe(coder, natives)
        for lost in range(n):
            survivors = [index for index in range(n) if index != lost]
            chosen = pyrandom.sample(survivors, k)
            rebuilt = coder.reconstruct_block(lost, {index: stripe[index] for index in chosen})
            assert rebuilt == stripe[lost]

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=2, max_size=40))
    def test_encoding_is_deterministic(self, blob):
        coder = ReedSolomon(5, 2)
        half = len(blob) // 2
        natives = [blob[:half], blob[half : 2 * half]]
        assert coder.encode(natives) == coder.encode(natives)


class TestPlanCache:
    def test_counters_and_sharing(self):
        """Two losses with one survivor pattern share a single inversion."""
        coder = ReedSolomon(6, 4)
        natives = [bytes([i] * 32) for i in range(4)]
        stripe = make_stripe(coder, natives)
        available = {i: stripe[i] for i in (1, 2, 3, 4)}
        coder.reconstruct_block(0, available)
        coder.reconstruct_block(5, available)
        info = coder.plan_cache_info()
        assert info["plan_misses"] == 1  # one pattern, one inversion
        assert info["row_plans"] == 2
        assert info["row_misses"] == 2
        coder.reconstruct_block(0, available)
        assert coder.plan_cache_info()["row_hits"] == 1

    def test_lru_eviction_bounds_cache(self):
        from repro.ec.reed_solomon import PLAN_CACHE_SIZE

        coder = ReedSolomon(3, 1)
        native = [b"\x5a" * 8]
        stripe = make_stripe(coder, native)
        patterns = [(0,), (1,), (2,)]
        for _ in range(PLAN_CACHE_SIZE):
            for pattern in patterns:
                available = {index: stripe[index] for index in pattern}
                assert coder.decode(available) == native
        info = coder.plan_cache_info()
        assert info["plans"] == len(patterns) <= PLAN_CACHE_SIZE
        assert info["plan_hits"] > 0

    def test_decode_arrays_matches_decode(self):
        import numpy as np

        coder = ReedSolomon(5, 3)
        natives = [bytes([7 * i + j for j in range(16)]) for i in range(3)]
        stripe = make_stripe(coder, natives)
        available = {i: stripe[i] for i in (0, 3, 4)}
        arrays = coder.decode_arrays(available)
        assert [array.tobytes() for array in arrays] == coder.decode(available)
        assert all(array.dtype == np.uint8 for array in arrays)

    def test_reconstruct_available_block_is_verbatim(self):
        coder = ReedSolomon(4, 2)
        natives = [b"abcd", b"wxyz"]
        stripe = make_stripe(coder, natives)
        available = {i: stripe[i] for i in range(4)}
        assert coder.reconstruct_block(1, available) == b"wxyz"
        # No plan work happens for a block that is already present.
        assert coder.plan_cache_info()["plan_misses"] == 0


class TestEncodeStripes:
    def test_empty_input(self):
        assert ReedSolomon(4, 2).encode_stripes([]) == []

    def test_wrong_stripe_width(self):
        coder = ReedSolomon(4, 2)
        with pytest.raises(ValueError):
            coder.encode_stripes([[b"ab"]])

    def test_unequal_lengths_within_stripe(self):
        coder = ReedSolomon(4, 2)
        with pytest.raises(ValueError):
            coder.encode_stripes([[b"ab", b"abc"]])

    def test_zero_length_stripes(self):
        coder = ReedSolomon(4, 2)
        assert coder.encode_stripes([[b"", b""]]) == [coder.encode([b"", b""])]
