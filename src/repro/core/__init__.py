"""The paper's contribution: MapReduce task schedulers for failure mode.

* :mod:`repro.core.tasks` -- per-job bookkeeping of unassigned map tasks,
  split into normal (local/remote) and degraded pools, with the launch
  counters ``m``, ``M``, ``m_d``, ``M_d`` used by the pacing rule.
* :mod:`repro.core.scheduler` -- the heartbeat-driven scheduler interface
  and shared reduce-slot assignment.
* :mod:`repro.core.locality_first` -- Algorithm 1 (Hadoop default, LF).
* :mod:`repro.core.degraded_first` -- Algorithm 2 (basic degraded-first, BDF).
* :mod:`repro.core.enhanced` -- Algorithm 3 (enhanced degraded-first, EDF)
  with locality preservation (``ASSIGNTOSLAVE``) and rack awareness
  (``ASSIGNTORACK``).
"""

from repro.core.degraded_first import BasicDegradedFirstScheduler
from repro.core.enhanced import EnhancedDegradedFirstScheduler
from repro.core.locality_first import LocalityFirstScheduler
from repro.core.scheduler import Scheduler, SchedulerContext, make_scheduler
from repro.core.tasks import JobTaskState

__all__ = [
    "BasicDegradedFirstScheduler",
    "EnhancedDegradedFirstScheduler",
    "JobTaskState",
    "LocalityFirstScheduler",
    "Scheduler",
    "SchedulerContext",
    "make_scheduler",
]
