"""Block placement policies for erasure-coded stripes.

The paper's placement rule (Section III) adapts the HDFS replica rule to
HDFS-RAID: the code must have ``n - k >= 2``, and **at most ``n - k`` blocks
of any stripe may land in the same rack**, so that an arbitrary single-rack
failure (and any double-node failure) leaves at least ``k`` survivors per
stripe.  Every policy here enforces that invariant and additionally places
the blocks of one stripe on distinct nodes.

Three policies are provided:

* :class:`RackConstrainedRandomPlacement` -- the simulator default
  ("randomly place them in the nodes based on the requirements in
  Section III").
* :class:`RoundRobinPlacement` -- the testbed layout ("blocks are placed in
  the slaves in a round-robin manner for load balancing").
* :class:`ParityDeclusteredPlacement` -- spreads stripes evenly over all
  nodes as in parity declustering [19], the assumption of the analysis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.sim.rng import RngStreams
from repro.storage.block import BlockId


class PlacementError(RuntimeError):
    """Raised when a stripe cannot be placed under the rack constraint."""


class PlacementPolicy(ABC):
    """Assigns the ``n`` blocks of each stripe to nodes.

    Parameters
    ----------
    topology:
        The cluster layout.
    params:
        The erasure-code parameters.
    rack_fault_tolerant:
        When True (default), enforce the paper's Section III rule: at most
        ``n - k`` blocks of a stripe per rack, so any single-rack failure is
        survivable.  The paper's own 13-node testbed cannot satisfy this
        (each (12,10) stripe spans all 12 slaves, 4 per rack), so the
        testbed disables it and tolerates node failures only.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        params: CodeParams,
        rack_fault_tolerant: bool = True,
    ) -> None:
        self.topology = topology
        self.params = params
        self.rack_cap = params.parity if rack_fault_tolerant else 0
        self._validate_feasibility()

    def _validate_feasibility(self) -> None:
        n, cap = self.params.n, self.rack_cap
        if self.topology.num_nodes < n:
            raise PlacementError(
                f"cannot place stripes of width n={n} on {self.topology.num_nodes} nodes"
            )
        capacity = sum(
            min(len(rack), cap) if cap > 0 else len(rack)
            for rack in self.topology.racks
        )
        if capacity < n:
            raise PlacementError(
                f"rack constraint unsatisfiable: at most {cap} blocks per rack "
                f"allows {capacity} < n={n} blocks per stripe"
            )

    @abstractmethod
    def place_stripe(self, stripe_id: int, rng: RngStreams) -> list[int]:
        """Return the node id for each of the stripe's ``n`` positions."""

    def place_file(self, num_stripes: int, rng: RngStreams) -> dict[BlockId, int]:
        """Place ``num_stripes`` stripes; returns block -> node id."""
        assignment: dict[BlockId, int] = {}
        for stripe_id in range(num_stripes):
            nodes = self.place_stripe(stripe_id, rng)
            self._check_stripe(nodes)
            for position, node_id in enumerate(nodes):
                block = BlockId(stripe_id=stripe_id, position=position, k=self.params.k)
                assignment[block] = node_id
        return assignment

    def _check_stripe(self, nodes: list[int]) -> None:
        """Enforce the distinct-node and per-rack invariants."""
        if len(nodes) != self.params.n:
            raise PlacementError(f"stripe got {len(nodes)} placements, expected {self.params.n}")
        if len(set(nodes)) != len(nodes):
            raise PlacementError(f"stripe placed two blocks on one node: {nodes}")
        if self.rack_cap == 0:
            return
        per_rack: dict[int, int] = {}
        for node_id in nodes:
            rack = self.topology.rack_of(node_id)
            per_rack[rack] = per_rack.get(rack, 0) + 1
        worst = max(per_rack.values())
        if worst > self.rack_cap:
            raise PlacementError(
                f"rack constraint violated: {worst} blocks in one rack, "
                f"allowed at most n-k={self.rack_cap}"
            )


class RackConstrainedRandomPlacement(PlacementPolicy):
    """Random placement subject to the at-most-``n-k``-per-rack rule.

    Nodes are drawn uniformly without replacement; candidates from racks
    that already hold ``n - k`` blocks of the stripe are excluded as the
    draw proceeds.
    """

    def place_stripe(self, stripe_id: int, rng: RngStreams) -> list[int]:
        cap = self.rack_cap
        chosen: list[int] = []
        rack_counts: dict[int, int] = {}
        candidates = list(self.topology.node_ids())
        rng.spawn("placement").shuffle(str(stripe_id), candidates)
        for node_id in candidates:
            if len(chosen) == self.params.n:
                break
            rack = self.topology.rack_of(node_id)
            if cap > 0 and rack_counts.get(rack, 0) >= cap:
                continue
            chosen.append(node_id)
            rack_counts[rack] = rack_counts.get(rack, 0) + 1
        if len(chosen) < self.params.n:
            raise PlacementError(
                f"could not place stripe {stripe_id}: only {len(chosen)} of "
                f"{self.params.n} positions satisfiable"
            )
        return chosen


class RoundRobinPlacement(PlacementPolicy):
    """Deterministic rotation of stripes over nodes (the testbed layout).

    Stripe ``i`` starts at node ``(i * k) mod N`` and takes the next ``n``
    nodes in id order, skipping nodes whose rack is full for this stripe.
    Advancing by ``k`` (not ``n``) per stripe keeps the *native* blocks
    evenly spread: on the paper's testbed (N=12, (12,10), 240 natives) each
    slave ends up with exactly 20 native blocks, as Section VI reports,
    whereas advancing by ``n`` would pin all parity to the last two nodes.
    """

    def place_stripe(self, stripe_id: int, rng: RngStreams) -> list[int]:
        del rng  # deterministic policy
        cap = self.rack_cap
        node_ids = sorted(self.topology.node_ids())
        total = len(node_ids)
        start = (stripe_id * self.params.k) % total
        chosen: list[int] = []
        rack_counts: dict[int, int] = {}
        offset = 0
        while len(chosen) < self.params.n and offset < 2 * total:
            node_id = node_ids[(start + offset) % total]
            offset += 1
            if node_id in chosen:
                continue
            rack = self.topology.rack_of(node_id)
            if cap > 0 and rack_counts.get(rack, 0) >= cap:
                continue
            chosen.append(node_id)
            rack_counts[rack] = rack_counts.get(rack, 0) + 1
        if len(chosen) < self.params.n:
            raise PlacementError(f"round-robin could not place stripe {stripe_id}")
        return chosen


class ParityDeclusteredPlacement(PlacementPolicy):
    """Balanced placement: every node holds (nearly) the same block count.

    Greedy: each stripe picks the ``n`` least-loaded nodes that keep the
    rack constraint, breaking ties by a per-stripe random shuffle.  This is
    the "distribute the stripes evenly among the N nodes (as in parity
    declustering)" assumption used by the analysis.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        params: CodeParams,
        rack_fault_tolerant: bool = True,
    ) -> None:
        super().__init__(topology, params, rack_fault_tolerant)
        self._load: dict[int, int] = {node_id: 0 for node_id in topology.node_ids()}

    def place_stripe(self, stripe_id: int, rng: RngStreams) -> list[int]:
        cap = self.rack_cap
        candidates = list(self.topology.node_ids())
        rng.spawn("placement").shuffle(str(stripe_id), candidates)
        candidates.sort(key=lambda node_id: self._load[node_id])
        chosen: list[int] = []
        rack_counts: dict[int, int] = {}
        for node_id in candidates:
            if len(chosen) == self.params.n:
                break
            rack = self.topology.rack_of(node_id)
            if cap > 0 and rack_counts.get(rack, 0) >= cap:
                continue
            chosen.append(node_id)
            rack_counts[rack] = rack_counts.get(rack, 0) + 1
        if len(chosen) < self.params.n:
            raise PlacementError(f"declustered placement failed for stripe {stripe_id}")
        for node_id in chosen:
            self._load[node_id] += 1
        return chosen


#: Registry of policy names accepted by configuration files and the CLI.
POLICIES = {
    "random": RackConstrainedRandomPlacement,
    "round-robin": RoundRobinPlacement,
    "declustered": ParityDeclusteredPlacement,
}


def make_placement_policy(
    name: str,
    topology: ClusterTopology,
    params: CodeParams,
    rack_fault_tolerant: bool = True,
) -> PlacementPolicy:
    """Instantiate a placement policy by registry name."""
    try:
        policy_cls = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown placement policy {name!r}; choose from {sorted(POLICIES)}")
    return policy_cls(topology, params, rack_fault_tolerant)
