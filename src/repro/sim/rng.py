"""Named, independently seeded random streams.

Experiments in the paper repeat each configuration over 30 random seeds.  To
keep runs reproducible *and* structurally comparable (so changing how one
component draws randomness does not perturb another component's draws), each
consumer asks :class:`RngStreams` for its own named stream; streams are
derived from the master seed and the name, never from draw order.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent :class:`random.Random` streams.

    Parameters
    ----------
    master_seed:
        Seed for the whole experiment run.
    prefix:
        Label prefix prepended to every stream name.  User code never passes
        it directly; :meth:`spawn` builds prefixed children that share this
        factory's caches, so ``rng.spawn("a").stream("b")`` *is*
        ``rng.stream("a:b")``.
    """

    def __init__(self, master_seed: int, prefix: str = "") -> None:
        self.master_seed = master_seed
        self.prefix = prefix
        self._streams: dict[str, random.Random] = {}
        self._children: dict[str, RngStreams] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        full = f"{self.prefix}{name}"
        if full not in self._streams:
            digest = hashlib.sha256(f"{self.master_seed}:{full}".encode()).digest()
            self._streams[full] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[full]

    def spawn(self, name: str) -> "RngStreams":
        """Return a child factory whose streams live under ``name:``.

        The child is a labeled namespace, not a reseeding: it shares this
        factory's stream cache, and its streams are derived from the same
        master seed and the ``:``-joined full name.  Components that used to
        compose names by hand (``rng.sample(f"repair:{block}", ...)``) draw
        byte-identical values through ``rng.spawn("repair").sample(str(block),
        ...)``, so adopting ``spawn`` never perturbs trajectories.  Children
        are cached: repeated ``spawn`` calls with one name return one object.
        """
        full = f"{self.prefix}{name}:"
        child = self._children.get(full)
        if child is None:
            child = RngStreams(self.master_seed, prefix=full)
            child._streams = self._streams
            child._children = self._children
            self._children[full] = child
        return child

    def normal(self, name: str, mean: float, std: float, minimum: float = 1e-9) -> float:
        """Draw a normal variate from stream ``name``, floored at ``minimum``.

        Task processing times in the paper follow normal distributions; the
        floor guards against nonsensical non-positive durations in the tail.
        """
        value = self.stream(name).gauss(mean, std)
        return max(value, minimum)

    def exponential(self, name: str, mean: float) -> float:
        """Draw an exponential variate with the given mean from stream ``name``."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self.stream(name).expovariate(1.0 / mean)

    def choice(self, name: str, items: list):
        """Pick one item uniformly from stream ``name``."""
        return self.stream(name).choice(items)

    def sample(self, name: str, items: list, count: int) -> list:
        """Sample ``count`` distinct items from stream ``name``."""
        return self.stream(name).sample(items, count)

    def shuffle(self, name: str, items: list) -> None:
        """Shuffle ``items`` in place using stream ``name``."""
        self.stream(name).shuffle(items)

    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` from stream ``name``."""
        return self.stream(name).randint(low, high)
