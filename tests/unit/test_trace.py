"""Unit tests for timeline export and rendering."""

from __future__ import annotations

import json

import pytest

from repro.cluster.network import MB
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.simulation import run_simulation
from repro.mapreduce.trace import (
    render_timeline,
    summarize,
    to_json,
    to_records,
    write_csv,
)


@pytest.fixture(scope="module")
def result():
    config = SimulationConfig(
        num_nodes=6,
        num_racks=2,
        map_slots=2,
        code=CodeParams(4, 2),
        block_size=16 * MB,
        jobs=(JobConfig(num_blocks=24, num_reduce_tasks=2),),
        scheduler="EDF",
        seed=2,
    )
    return run_simulation(config)


class TestRecords:
    def test_one_record_per_task(self, result):
        records = to_records(result)
        assert len(records) == 26  # 24 maps + 2 reduces

    def test_records_sorted_by_launch(self, result):
        records = to_records(result)
        launches = [record["launch_time"] for record in records]
        assert launches == sorted(launches)

    def test_record_fields(self, result):
        record = to_records(result)[0]
        for field in ("job_id", "kind", "category", "slave_id",
                      "launch_time", "download_time", "finish_time", "runtime"):
            assert field in record


class TestJson:
    def test_roundtrips_through_json(self, result):
        payload = json.loads(to_json(result))
        assert payload["scheduler"] == "EDF"
        assert payload["seed"] == 2
        assert len(payload["tasks"]) == 26
        assert payload["jobs"]["0"]["runtime"] > 0

    def test_failed_nodes_listed(self, result):
        payload = json.loads(to_json(result))
        assert payload["failed_nodes"] == sorted(result.failed_nodes)


class TestCsv:
    def test_header_and_rows(self, result):
        text = write_csv(result)
        lines = text.strip().splitlines()
        assert lines[0].startswith("job_id,kind,category")
        assert len(lines) == 27  # header + 26 tasks

    def test_stream_write(self, result):
        import io

        stream = io.StringIO()
        write_csv(result, stream)
        assert stream.getvalue().startswith("job_id")


class TestTimeline:
    def test_renders_rows_per_live_node(self, result):
        chart = render_timeline(result)
        live = set(range(6)) - result.failed_nodes
        for node in live:
            assert f"node {node}.0" in chart

    def test_download_and_process_glyphs(self, result):
        chart = render_timeline(result, width=100)
        assert "#" in chart
        # Degraded or remote fetches draw a download prefix somewhere.
        assert "~" in chart

    def test_empty_selection(self, result):
        assert render_timeline(result, job_id=99) == "(no tasks)"

    def test_width_respected(self, result):
        chart = render_timeline(result, width=40)
        for line in chart.splitlines()[1:]:
            assert len(line) <= 40 + 14  # label + bars


class TestSummary:
    def test_summarize_mentions_key_stats(self, result):
        digest = summarize(result)
        assert "scheduler=EDF" in digest
        assert "job 0" in digest
        assert "degraded=" in digest
