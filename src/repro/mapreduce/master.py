"""The job tracker: job lifecycle and heartbeat-driven scheduling.

The :class:`JobTracker` owns the FIFO job list, the per-job
:class:`~repro.core.tasks.JobTaskState`, and the pluggable scheduler.  Slave
processes call :meth:`JobTracker.heartbeat`; completion callbacks flow back
through :meth:`on_map_complete` / :meth:`on_reduce_complete`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.topology import ClusterTopology
from repro.core.scheduler import Scheduler
from repro.core.tasks import JobTaskState
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import MapAssignment, ReduceAssignment
from repro.mapreduce.metrics import JobMetrics, TaskRecord
from repro.mapreduce.shuffle import JobShuffle
from repro.sim.engine import Event, Simulator
from repro.storage.hdfs import HdfsRaidCluster


class JobTracker:
    """Master-side state: jobs, scheduler, and completion accounting.

    Parameters
    ----------
    sim:
        The simulation engine.
    topology:
        Cluster layout.
    hdfs:
        The erasure-coded storage cluster (shared by all jobs).
    scheduler:
        The scheduling policy under test.
    failed_nodes:
        Nodes that are down when the trial starts; :meth:`fail_node` can
        take down further nodes mid-run.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: ClusterTopology,
        hdfs: HdfsRaidCluster,
        scheduler: Scheduler,
        failed_nodes: frozenset[int],
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.hdfs = hdfs
        self.scheduler = scheduler
        self.failed_nodes = frozenset(failed_nodes)
        self.killed_tasks = 0

        self.active_jobs: list[JobTaskState] = []
        self.metrics: dict[int, JobMetrics] = {}
        self.shuffles: dict[int, JobShuffle] = {}
        self._expected_jobs = 0
        self._finished_jobs = 0
        self.all_done: Event = sim.event(name="all-jobs-done")

    @property
    def finished(self) -> bool:
        """True once every expected job has completed."""
        return self._expected_jobs > 0 and self._finished_jobs >= self._expected_jobs

    def expect_jobs(self, count: int) -> None:
        """Declare how many jobs this run will submit in total."""
        if count <= 0:
            raise ValueError("a simulation needs at least one job")
        self._expected_jobs = count

    def submit_job(self, job_id: int, config: JobConfig) -> JobTaskState:
        """Initialise a job at its submit time and append it to the FIFO list.

        A job processes the first ``config.num_blocks`` native blocks of the
        stored file, so jobs with fewer blocks than the file holds see a
        truncated view.
        """
        view = self.hdfs.failure_view(self.failed_nodes)
        if config.num_blocks < len(view.lost_blocks) + len(view.available_blocks):
            view = replace(
                view,
                lost_blocks=tuple(
                    block
                    for block in view.lost_blocks
                    if block.native_index < config.num_blocks
                ),
                available_blocks=tuple(
                    block
                    for block in view.available_blocks
                    if block.native_index < config.num_blocks
                ),
            )
        state = JobTaskState(
            job_id=job_id,
            config=config,
            view=view,
            block_map=self.hdfs.block_map,
            topology=self.topology,
        )
        self.active_jobs.append(state)
        self.metrics[job_id] = JobMetrics(job_id=job_id, submit_time=self.sim.now)
        self.shuffles[job_id] = JobShuffle(
            self.sim, config.num_reduce_tasks, self.topology
        )
        return state

    def heartbeat(
        self, slave_id: int, free_map_slots: int, free_reduce_slots: int
    ) -> tuple[list[MapAssignment], list[ReduceAssignment]]:
        """Handle one slave heartbeat: delegate to the scheduler, log launches."""
        if not self.active_jobs:
            return [], []
        maps, reduces = self.scheduler.assign(
            slave_id, free_map_slots, free_reduce_slots, self.active_jobs, self.sim.now
        )
        for assignment in maps:
            self._note_launch(assignment.job_id)
        for assignment in reduces:
            self._note_launch(assignment.job_id)
        return maps, reduces

    def job_state(self, job_id: int) -> JobTaskState:
        """Look up an active job's scheduling state."""
        for state in self.active_jobs:
            if state.job_id == job_id:
                return state
        raise KeyError(f"job {job_id} is not active")

    # -- completion callbacks ---------------------------------------------------

    def on_map_complete(self, record: TaskRecord, shuffle_bytes: float) -> None:
        """A map task finished: account it, deposit shuffle data."""
        state = self.job_state(record.job_id)
        state.on_map_complete()
        self.metrics[record.job_id].tasks.append(record)
        shuffle = self.shuffles[record.job_id]
        shuffle.deposit(record.slave_id, shuffle_bytes)
        if state.maps_all_completed():
            shuffle.notify_maps_done()
            if state.job_completed():
                self._finish_job(state)

    def on_reduce_complete(self, record: TaskRecord) -> None:
        """A reduce task finished."""
        state = self.job_state(record.job_id)
        state.on_reduce_complete()
        self.metrics[record.job_id].tasks.append(record)
        if state.job_completed():
            self._finish_job(state)

    # -- mid-run failure ---------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Take a node down while jobs are running.

        Pending tasks whose blocks lived on the node become degraded tasks;
        the EDF guard's live-node view shrinks.  Killing the node's *running*
        tasks is the slave runtime's job (it holds the processes) -- see
        :meth:`on_map_task_killed` / :meth:`on_reduce_task_killed` for the
        requeue half.

        Simplification (documented in DESIGN.md): intermediate map outputs
        already shuffled out of the node survive; Hadoop would re-execute
        completed maps whose output was lost, a second-order effect the
        paper's simulator also ignores.
        """
        if node_id in self.failed_nodes:
            return
        self.failed_nodes = self.failed_nodes | {node_id}
        self.hdfs.block_map.check_recoverable(self.failed_nodes)
        live = self.scheduler.context.live_nodes
        if isinstance(live, set):
            live.discard(node_id)
        for state in self.active_jobs:
            state.on_node_failure(node_id)

    def on_map_task_killed(self, assignment: MapAssignment) -> None:
        """A running map task died with its node: requeue it."""
        state = self.job_state(assignment.job_id)
        home = self.hdfs.node_of(assignment.block)
        from repro.mapreduce.job import MapTaskCategory

        state.requeue_killed_map(
            assignment.block,
            was_degraded=assignment.category is MapTaskCategory.DEGRADED,
            lost=home in self.failed_nodes,
        )
        self.killed_tasks += 1

    def on_reduce_task_killed(self, assignment: ReduceAssignment) -> None:
        """A running reduce task died with its node: requeue and reset it."""
        state = self.job_state(assignment.job_id)
        state.requeue_killed_reduce(assignment.reduce_index)
        self.shuffles[assignment.job_id].reset_reducer(assignment.reduce_index)
        self.killed_tasks += 1

    # -- internals ------------------------------------------------------------------

    def _note_launch(self, job_id: int) -> None:
        metrics = self.metrics[job_id]
        if metrics.first_launch_time != metrics.first_launch_time:  # NaN check
            metrics.first_launch_time = self.sim.now

    def _finish_job(self, state: JobTaskState) -> None:
        self.metrics[state.job_id].finish_time = self.sim.now
        self.active_jobs.remove(state)
        self._finished_jobs += 1
        if self.finished and not self.all_done.fired:
            self.all_done.succeed()
