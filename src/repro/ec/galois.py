"""Arithmetic over the finite field GF(2^8).

The field is realised as polynomials over GF(2) modulo the primitive
polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the same polynomial used by
most storage erasure-code implementations (e.g. Jerasure, ISA-L).  Field
elements are the integers ``0..255``.

Multiplication and division go through precomputed log/antilog tables, which
makes single-element operations O(1) and lets the vectorised helpers
(:func:`mul_bytes`, :func:`addmul_bytes`) run over numpy arrays for
block-sized payloads.
"""

from __future__ import annotations

import numpy as np

#: Primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLYNOMIAL = 0x11D

#: The multiplicative order of the field, i.e. ``2**8 - 1``.
FIELD_ORDER = 255

#: Number of elements in the field.
FIELD_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build the antilog (exponent) and log tables for GF(2^8).

    Returns a pair ``(exp, log)`` where ``exp[i] == g**i`` for the generator
    ``g = 2`` and ``log[exp[i]] == i``.  The ``exp`` table is doubled in
    length so that ``exp[log[a] + log[b]]`` never needs an explicit modulo.
    """
    exp = np.zeros(2 * FIELD_ORDER, dtype=np.uint8)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    value = 1
    for power in range(FIELD_ORDER):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLYNOMIAL
    exp[FIELD_ORDER:] = exp[:FIELD_ORDER]
    return exp, log


_EXP, _LOG = _build_tables()

#: Full 256x256 multiplication table, used by the vectorised helpers.
_MUL_TABLE = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
for _a in range(1, FIELD_SIZE):
    for _b in range(1, FIELD_SIZE):
        _MUL_TABLE[_a, _b] = _EXP[_LOG[_a] + _LOG[_b]]
del _a, _b


def gf_add(a: int, b: int) -> int:
    """Return ``a + b`` in GF(2^8); addition is XOR."""
    return a ^ b


def gf_sub(a: int, b: int) -> int:
    """Return ``a - b`` in GF(2^8); identical to addition."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Return the product of two field elements."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_div(a: int, b: int) -> int:
    """Return ``a / b`` in GF(2^8).

    Raises :class:`ZeroDivisionError` when ``b`` is zero.
    """
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] - _LOG[b]) % FIELD_ORDER])


def gf_inv(a: int) -> int:
    """Return the multiplicative inverse of ``a``.

    Raises :class:`ZeroDivisionError` for ``a == 0``, which has no inverse.
    """
    if a == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(2^8)")
    return int(_EXP[FIELD_ORDER - _LOG[a]])


def gf_pow(a: int, exponent: int) -> int:
    """Return ``a`` raised to an arbitrary integer power."""
    if a == 0:
        if exponent == 0:
            return 1
        if exponent < 0:
            raise ZeroDivisionError("0 cannot be raised to a negative power")
        return 0
    reduced = (_LOG[a] * exponent) % FIELD_ORDER
    return int(_EXP[reduced])


def mul_bytes(coefficient: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``coefficient``; returns a new array."""
    if coefficient == 0:
        return np.zeros_like(data)
    if coefficient == 1:
        return data.copy()
    return _MUL_TABLE[coefficient][data]


def addmul_bytes(accumulator: np.ndarray, coefficient: int, data: np.ndarray) -> None:
    """In-place ``accumulator ^= coefficient * data`` over byte arrays.

    This is the inner loop of Reed-Solomon encoding and decoding; keeping it
    as a single fused numpy expression is what makes block-sized coding
    practical in pure Python.
    """
    if coefficient == 0:
        return
    if coefficient == 1:
        np.bitwise_xor(accumulator, data, out=accumulator)
        return
    np.bitwise_xor(accumulator, _MUL_TABLE[coefficient][data], out=accumulator)
