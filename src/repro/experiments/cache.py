"""Content-addressed, integrity-verified result cache for campaigns.

Campaign traffic is repetitive: the same (scenario, scheduler, seed) trial
shows up in sweep after sweep, and the determinism machinery (PR 4/5's
golden-equivalence and serial-vs-parallel bit-identity) guarantees that a
trial's result is a pure function of its canonical spec and the code that
produced it.  That makes caching sound: a :class:`ResultCache` entry is
keyed by ``sha256(code_version | canonical spec JSON)`` and a repeated
trial is free.

What makes it *safe* is that nothing from disk is ever trusted blindly:

* Every entry carries the sha256 of its canonical payload JSON.  On read,
  the payload is re-serialised and re-hashed; a mismatch -- a flipped byte,
  a truncated file, a hand-edited entry -- is a **corruption**, not a hit.
* A corrupt entry is *quarantined* (moved into ``<cache-dir>/quarantine/``
  with its detection reason in the file name) and the lookup reports a
  miss, so the trial is recomputed and the evidence is preserved for
  inspection.  A corrupt entry is never deserialised into a report.
* Writes are crash-atomic: the entry is serialised to a temporary file in
  the same directory, fsynced, and atomically renamed into place.  A crash
  mid-write leaves either the old state or the new state, never a torn
  entry (a leftover ``*.tmp`` is ignored by lookups and overwritten by the
  next write).

Payloads must be canonical-JSON-serialisable (plain dicts/lists/strings/
numbers); trial runners that return full result objects cannot be cached
-- use a digesting runner (:class:`repro.experiments.common.DigestedRunner`
or the campaign trial runners) instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field

#: Schema tag stamped on (and required of) every cache entry.
ENTRY_SCHEMA = "repro.result-cache/v1"


def canonical_json(payload) -> str:
    """The canonical JSON form used for hashing and storage.

    Sorted keys, no whitespace, strict JSON (``allow_nan=False``): two
    payloads are bit-identical iff their canonical JSON strings are equal.
    Raises :class:`TypeError`/:class:`ValueError` for non-JSON payloads --
    callers gate on that to refuse journaling/caching uncacheable runners.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def payload_sha256(payload) -> str:
    """Hex sha256 of a payload's canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def cache_key(spec_hash: str, code_version: str) -> str:
    """The content address of one trial: spec hash bound to code version."""
    return hashlib.sha256(f"{code_version}|{spec_hash}".encode()).hexdigest()


def write_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` crash-atomically (tmp + fsync + rename)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    descriptor, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        with _suppress_oserror():
            os.unlink(tmp_path)
        raise


class _suppress_oserror:
    def __enter__(self):
        return self

    def __exit__(self, kind, value, traceback):
        return isinstance(value, OSError)


@dataclass
class CacheStats:
    """Lookup/store accounting one cache instance accumulates."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stores: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
        }


@dataclass
class ResultCache:
    """A directory of verified, content-addressed trial results.

    Entries live under two-hex-digit shard directories
    (``<dir>/ab/<key>.json``); corrupt entries are moved to
    ``<dir>/quarantine/`` and reported as misses.
    """

    directory: str
    code_version: str
    stats: CacheStats = field(default_factory=CacheStats)

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.directory, "quarantine")

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def key_for(self, spec_hash: str) -> str:
        """The content address of a trial spec under this cache's version."""
        return cache_key(spec_hash, self.code_version)

    def get(self, key: str):
        """The verified payload for ``key``, or ``None`` on miss.

        Any defect -- unreadable file, malformed JSON, wrong schema, a key
        or code-version mismatch, or a payload hash that does not verify --
        quarantines the entry and counts as a miss.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError:
            self.stats.misses += 1
            return None
        reason = None
        payload = None
        try:
            entry = json.loads(text)
        except ValueError:
            reason = "malformed-json"
        else:
            reason, payload = self._verify(key, entry)
        if reason is not None:
            self._quarantine(path, key, reason)
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def _verify(self, key: str, entry) -> tuple[str | None, object]:
        """(defect reason, payload): reason ``None`` iff the entry verifies."""
        if not isinstance(entry, dict) or entry.get("schema") != ENTRY_SCHEMA:
            return "bad-schema", None
        if entry.get("key") != key:
            return "key-mismatch", None
        if entry.get("code_version") != self.code_version:
            return "version-mismatch", None
        if "payload" not in entry:
            return "missing-payload", None
        payload = entry["payload"]
        try:
            digest = payload_sha256(payload)
        except (TypeError, ValueError):
            return "unhashable-payload", None
        if digest != entry.get("payload_sha256"):
            return "payload-hash-mismatch", None
        return None, payload

    def _quarantine(self, path: str, key: str, reason: str) -> None:
        os.makedirs(self.quarantine_dir, exist_ok=True)
        target = os.path.join(self.quarantine_dir, f"{key}.{reason}.json")
        with _suppress_oserror():
            os.replace(path, target)

    def put(self, key: str, payload) -> None:
        """Store a payload under ``key`` (crash-atomically).

        Raises :class:`TypeError`/:class:`ValueError` when the payload is
        not canonical-JSON-serialisable -- the caller picked an uncacheable
        runner, which must fail loudly rather than silently skip caching.
        """
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "code_version": self.code_version,
            "payload_sha256": payload_sha256(payload),
            "payload": payload,
        }
        write_atomic(
            self._path(key), json.dumps(entry, sort_keys=True, indent=2) + "\n"
        )
        self.stats.stores += 1
