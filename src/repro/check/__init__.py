"""Runtime sanitizer: invariant checking and scenario fuzzing.

``repro.check`` is the simulator's validation layer.  The
:class:`InvariantMonitor` is a zero-perturbation observer (like
:class:`~repro.obs.ObservabilityCollector`, which it wraps) that watches a
trial through the event bus and the slot/network observer protocols and
records an :class:`InvariantViolation` whenever the simulation breaks one
of its own rules -- slot accounting, link-capacity feasibility, the task
lifecycle state machine, BDF pacing / EDF guard postconditions, stripe
conservation, or event-time monotonicity (see DESIGN.md section 11 for the
full catalogue).

:mod:`repro.check.fuzz` drives the monitor over randomly generated
scenarios (``repro fuzz``), shrinks failures, and writes minimal repro
files into ``tests/corpus/``.
"""

from repro.check.generators import (
    check_arrivals_determinism,
    check_generator_determinism,
)
from repro.check.fuzz import (
    SCHEDULERS,
    FaultyRunner,
    TrialReport,
    build_scenario,
    load_repro,
    run_campaign_fuzz,
    run_checked_trial,
    run_fuzz,
    save_repro,
    scenario_strategy,
    shrink_scenario,
)
from repro.check.invariants import (
    InvariantMonitor,
    InvariantViolation,
    InvariantViolationError,
    render_report,
)

__all__ = [
    "SCHEDULERS",
    "FaultyRunner",
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "TrialReport",
    "build_scenario",
    "check_arrivals_determinism",
    "check_generator_determinism",
    "load_repro",
    "render_report",
    "save_repro",
    "run_campaign_fuzz",
    "run_checked_trial",
    "run_fuzz",
    "scenario_strategy",
    "shrink_scenario",
]
