"""Unit tests for the ``repro campaign`` CLI family and its exit codes."""

from __future__ import annotations

import json

from repro.cli import main

QUICK = ["--schedulers", "LF", "--seeds", "1", "--blocks", "60", "--backoff", "0.0"]


class TestCampaignRun:
    def test_quick_sweep_exit_zero(self, tmp_path, capsys):
        report_path = str(tmp_path / "report.json")
        code = main(["campaign", "run", *QUICK, "--report", report_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "== campaign ==" in out
        assert "1 submitted, 1 done" in out
        report = json.loads(open(report_path).read())
        assert report["schema"] == "repro.campaign-report/v1"
        assert report["accounting"]["submitted"] == 1
        assert report["schedulers"]["LF"]["done"] == 1

    def test_spec_file_round_trip(self, tmp_path, capsys):
        from repro.experiments.campaign import SweepSpec
        from repro.mapreduce.config import JobConfig, SimulationConfig

        spec = SweepSpec(
            base=SimulationConfig(jobs=(JobConfig(num_blocks=60),)),
            schedulers=("LF",),
            seeds=(0,),
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        code = main(["campaign", "run", "--spec", str(spec_path)])
        assert code == 0
        assert "== campaign ==" in capsys.readouterr().out

    def test_bad_spec_schema_exit_two(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text('{"schema": "wrong/v1"}')
        assert main(["campaign", "run", "--spec", str(spec_path)]) == 2
        assert "bad campaign options" in capsys.readouterr().err

    def test_bad_retries_exit_two(self, capsys):
        assert main(["campaign", "run", *QUICK, "--retries", "-1"]) == 2
        assert "bad campaign options" in capsys.readouterr().err

    def test_empty_schedulers_exit_two(self, capsys):
        assert main(["campaign", "run", "--schedulers", ",", "--seeds", "1"]) == 2
        assert "bad campaign options" in capsys.readouterr().err


class TestCampaignResume:
    def test_resume_without_journal_exit_two(self, capsys):
        assert main(["campaign", "resume", *QUICK]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_resume_missing_journal_exit_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["campaign", "resume", *QUICK, "--journal", missing]) == 2
        assert "no journal" in capsys.readouterr().err

    def test_resume_replays_finished_sweep(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        assert main(["campaign", "run", *QUICK, "--journal", journal]) == 0
        capsys.readouterr()
        assert main(["campaign", "resume", *QUICK, "--journal", journal]) == 0
        assert "1 submitted, 1 done" in capsys.readouterr().out


class TestCampaignStatus:
    def test_status_summarises_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        assert main(["campaign", "run", *QUICK, "--journal", journal]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "--journal", journal]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["trials"] == 1
        assert status["done"] == 1
        assert status["failed"] == 0
        assert status["corrupt_lines"] == 0

    def test_status_empty_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "absent.jsonl")
        assert main(["campaign", "status", "--journal", journal]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["trials"] == 0


class TestFuzzCampaignAxis:
    def test_campaign_fuzz_clean_exit_zero(self, capsys, tmp_path):
        code = main(
            [
                "fuzz",
                "--trials",
                "1",
                "--seed",
                "5",
                "--campaign",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign-fuzzed 2 batch(es)" in out
        assert "0 accounting violation(s)" in out


class TestExitCodesDocumented:
    def test_docstring_lists_exit_code_five(self):
        import repro.cli

        assert "``5``" in repro.cli.__doc__
        assert "checkpointed" in repro.cli.__doc__
