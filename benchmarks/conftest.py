"""Benchmark-suite configuration.

The benchmarks regenerate every table and figure of the paper.  By default
they run abbreviated sample counts (3 seeds / 2 testbed repetitions) so the
whole suite finishes in minutes on a laptop; set ``REPRO_SEEDS=30`` and
``REPRO_TESTBED_RUNS=5`` for the paper's full methodology.
"""

from __future__ import annotations

import os

os.environ.setdefault("REPRO_SEEDS", "3")
os.environ.setdefault("REPRO_TESTBED_RUNS", "2")


def one_shot(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
