"""Benchmarks: Figure 9, functional-testbed runtimes of LF vs EDF.

The testbed really executes WordCount / Grep / LineCount over erasure-coded
bytes with one slave killed.  Paper shapes asserted: EDF's mean runtime is
below LF's for every job, single-job and multi-job.

Repetitions follow ``REPRO_TESTBED_RUNS`` (2 by default; the paper uses 5).
"""

from __future__ import annotations

import statistics

import pytest

from conftest import one_shot
from repro.experiments.fig9_testbed import (
    build_cluster,
    format_runtimes,
    run_fig9a,
    run_fig9b,
)


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(seed=0)


def test_fig9a(benchmark, cluster):
    outcome = one_shot(benchmark, run_fig9a, cluster)
    print("\n" + format_runtimes(outcome, "Figure 9(a): single-job runtime (s)"))
    wins = 0
    for job_name, by_scheduler in outcome.items():
        lf = statistics.mean(by_scheduler["LF"])
        edf = statistics.mean(by_scheduler["EDF"])
        if edf < lf:
            wins += 1
    assert wins >= 2, f"EDF should beat LF for most jobs, won {wins}/3"


def test_fig9b(benchmark, cluster):
    outcome = one_shot(benchmark, run_fig9b, cluster)
    print("\n" + format_runtimes(outcome, "Figure 9(b): multi-job runtime (s)"))
    lf_total = sum(statistics.mean(v["LF"]) for v in outcome.values())
    edf_total = sum(statistics.mean(v["EDF"]) for v in outcome.values())
    assert edf_total < lf_total, "EDF should reduce total multi-job runtime"
