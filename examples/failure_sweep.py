#!/usr/bin/env python
"""Capacity planning: how failure patterns and codes affect job slowdown.

A storage operator choosing an erasure code wants to know the MapReduce
penalty of running degraded.  This example sweeps coding schemes and
failure patterns on a mid-size cluster and prints the failure-mode slowdown
(normalized runtime) under LF and EDF -- the kind of table one would build
before enabling HDFS-RAID in production.

Run:  python examples/failure_sweep.py        (takes a minute or two)
"""

from dataclasses import replace

from repro import CodeParams, FailurePattern, JobConfig, SimulationConfig, run_simulation

#: A smaller cluster than the paper default keeps this example snappy.
BASE = SimulationConfig(
    num_nodes=16,
    num_racks=4,
    map_slots=2,
    code=CodeParams(8, 6),
    jobs=(JobConfig(num_blocks=320, num_reduce_tasks=8),),
    seed=7,
)


def normalized(config: SimulationConfig, scheduler: str) -> float:
    failure = run_simulation(config.with_scheduler(scheduler))
    normal = run_simulation(config.with_failure(FailurePattern.NONE))
    return failure.job(0).runtime / normal.job(0).runtime


def sweep_codes() -> None:
    print("Normalized runtime vs erasure code (single node failure):")
    print(f"  {'code':>8}  {'LF':>6}  {'EDF':>6}  {'EDF saves':>9}")
    for code in (CodeParams(6, 4), CodeParams(8, 6), CodeParams(12, 9)):
        config = replace(BASE, code=code)
        lf = normalized(config, "LF")
        edf = normalized(config, "EDF")
        print(f"  {str(code):>8}  {lf:6.3f}  {edf:6.3f}  {(lf - edf) / lf:>8.1%}")


def sweep_failures() -> None:
    print("\nNormalized runtime vs failure pattern ((8,6) code):")
    print(f"  {'failure':>12}  {'LF':>6}  {'EDF':>6}  {'EDF saves':>9}")
    for pattern in (
        FailurePattern.SINGLE_NODE,
        FailurePattern.DOUBLE_NODE,
        FailurePattern.RACK,
    ):
        config = BASE.with_failure(pattern)
        lf = normalized(config, "LF")
        edf = normalized(config, "EDF")
        print(
            f"  {pattern.value:>12}  {lf:6.3f}  {edf:6.3f}  {(lf - edf) / lf:>8.1%}"
        )


def main() -> None:
    sweep_codes()
    sweep_failures()
    print(
        "\nLarger codes and heavier failures raise the penalty; degraded-first"
        "\nscheduling recovers most of it except under whole-rack failures,"
        "\nwhere surviving bandwidth, not scheduling, is the bottleneck."
    )


if __name__ == "__main__":
    main()
