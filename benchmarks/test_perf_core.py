"""Performance suite for the simulation core, with a regression floor.

Runs the fixed workloads of :mod:`benchmarks.perf_core` and writes
``BENCH_sim.json`` next to this file: the measured "after" numbers, the
checked-in seed baseline ("before", from ``perf_floor.json``) and the
implied speedups, so the repo's perf trajectory accumulates across
commits.

Environment knobs:

``REPRO_PERF_SMALL``
    Shrink every workload (the CI perf-smoke setting) so the suite
    finishes in seconds; speedup-vs-baseline fields are omitted because
    the baseline was measured at full size.
``REPRO_PERF_ENFORCE``
    Turn the checked-in floors (``perf_floor.json``) into hard assertions:
    a workload landing more than 30% below its floor fails the test.  The
    indexed-vs-reference recompute comparison must also hold its 3x
    minimum -- that one is machine-independent, so it is asserted at full
    strength.
``REPRO_BENCH_SIM_OUT``
    Override the output path (empty string disables the write).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.perf_core import engine_churn, fig7_single_trial, fluid_churn
from repro.sim.engine import Simulator
from repro.sim.resources import FluidNetwork

SMALL = bool(os.environ.get("REPRO_PERF_SMALL"))
ENFORCE = bool(os.environ.get("REPRO_PERF_ENFORCE"))
FLOOR_PATH = os.path.join(os.path.dirname(__file__), "perf_floor.json")
#: A measured value may land at most 30% below its floor before failing.
FLOOR_SLACK = 0.7

with open(FLOOR_PATH) as _handle:
    _FLOOR_FILE = json.load(_handle)
FLOORS = _FLOOR_FILE["floors"]
SEED_BASELINE = _FLOOR_FILE["seed_baseline"]

#: Workload name -> measured metrics, filled as the module's tests run.
_results: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def write_bench_sim():
    """After the module's tests, persist BENCH_sim.json."""
    yield
    out = os.environ.get(
        "REPRO_BENCH_SIM_OUT",
        os.path.join(os.path.dirname(__file__), "BENCH_sim.json"),
    )
    if not out or not _results:
        return
    workloads = {}
    for name, after in _results.items():
        entry: dict = {"after": after}
        before = SEED_BASELINE.get(name)
        if before is not None and not SMALL:
            entry["before"] = before
            if "events_per_sec" in after:
                entry["speedup"] = round(
                    after["events_per_sec"] / before["events_per_sec"], 2
                )
            elif "seconds" in before:
                entry["speedup"] = round(before["seconds"] / after["seconds"], 2)
        workloads[name] = entry
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "small": SMALL,
        "enforced": ENFORCE,
        "floors": FLOORS,
        "workloads": workloads,
    }
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_engine_events_per_sec():
    """Raw dispatch throughput of the tuple-encoded event loop."""
    if SMALL:
        result = engine_churn(num_processes=100, rounds=150)
    else:
        result = engine_churn()
    _results["engine_churn"] = result
    if ENFORCE:
        floor = FLOORS["engine_events_per_sec"] * FLOOR_SLACK
        assert result["events_per_sec"] >= floor, (
            f"engine dispatched {result['events_per_sec']:.0f} events/s, "
            f"below the enforced floor {floor:.0f}"
        )


def test_fluid_churn_throughput():
    """Reallocation throughput under multi-link churn with cancels."""
    if SMALL:
        result = fluid_churn(num_flows=250)
    else:
        result = fluid_churn()
    _results["fluid_churn"] = result
    assert result["completed"] + result["cancelled"] == result["flows"]
    if ENFORCE:
        floor = FLOORS["fluid_reallocations_per_sec"] * FLOOR_SLACK
        assert result["reallocations_per_sec"] >= floor, (
            f"fluid churn ran {result['reallocations_per_sec']:.0f} "
            f"reallocations/s, below the enforced floor {floor:.0f}"
        )


def test_recompute_indexed_vs_reference():
    """Same-machine algorithmic comparison: indexed vs all-pairs recompute.

    Builds one congested network state (many concurrent multi-link flows,
    flows pinned at t=0 so nothing completes) and times N recomputes of
    each implementation over the identical flow population.  This is the
    honest form of the churn speedup claim: both sides run in this very
    process, so runner speed cancels out.
    """
    num_flows = 120 if SMALL else 400
    repeats = 20 if SMALL else 30
    sim = Simulator()
    network = FluidNetwork(sim)
    num_racks, nodes_per_rack = 4, 10
    for rack in range(num_racks):
        network.add_link(f"rack{rack}:up", 125e6)
        network.add_link(f"rack{rack}:down", 125e6)
    num_nodes = num_racks * nodes_per_rack
    for node in range(num_nodes):
        network.add_link(f"node{node}:in", 125e6)
        network.add_link(f"node{node}:out", 125e6)
    for index in range(num_flows):
        src = (index * 7) % num_nodes
        dst = (src + 1 + (index * 13) % (num_nodes - 1)) % num_nodes
        links = [f"node{src}:out"]
        if src // nodes_per_rack != dst // nodes_per_rack:
            links += [
                f"rack{src // nodes_per_rack}:up",
                f"rack{dst // nodes_per_rack}:down",
            ]
        links.append(f"node{dst}:in")
        network.transfer(links, 64e6)

    start = time.perf_counter()
    for _ in range(repeats):
        network._recompute_rates()
    indexed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(repeats):
        reference = network._recompute_rates_reference()
    reference_seconds = time.perf_counter() - start

    # The two allocators must agree exactly on this population, too.
    assert {done: flow.rate for done, flow in network._flows.items()} == reference

    speedup = reference_seconds / indexed_seconds
    _results["recompute_indexed_vs_reference"] = {
        "flows": num_flows,
        "repeats": repeats,
        "indexed_seconds": indexed_seconds,
        "reference_seconds": reference_seconds,
        "speedup": round(speedup, 2),
    }
    if ENFORCE:
        minimum = FLOORS["recompute_speedup_vs_reference"]
        assert speedup >= minimum, (
            f"indexed recompute is only {speedup:.1f}x the reference, "
            f"expected at least {minimum}x"
        )


def test_fig7_end_to_end_trial():
    """Wall clock of one fig7-style trial (the sweeps' unit of work)."""
    result = fig7_single_trial(num_blocks=360 if SMALL else 1440)
    _results["fig7_single_trial"] = result
    # No absolute floor: end-to-end seconds vary too much across runners.
    assert result["seconds"] > 0
