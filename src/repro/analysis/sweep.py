"""Parameter sweeps over the analytical model (Figure 5 of the paper).

Each sweep varies one parameter of :class:`~repro.analysis.model.AnalysisParams`
and returns, per point, the normalized runtimes of locality-first and
degraded-first scheduling plus the fractional reduction -- the exact series
Figure 5 plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.model import AnalysisParams, AnalyticalModel
from repro.cluster.network import mbps
from repro.ec.codec import CodeParams

#: The coding schemes of Figure 5(a).
FIG5A_CODES = (CodeParams(8, 6), CodeParams(12, 9), CodeParams(16, 12), CodeParams(20, 15))

#: The block counts of Figure 5(b).
FIG5B_BLOCKS = (720, 1440, 2160, 2880)

#: The bandwidths of Figure 5(c), in Mbps.
FIG5C_BANDWIDTHS_MBPS = (100, 250, 500, 1000)


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a Figure 5 sweep."""

    label: str
    normalized_lf: float
    normalized_df: float
    reduction: float


def _evaluate(label: str, params: AnalysisParams) -> SweepPoint:
    model = AnalyticalModel(params)
    return SweepPoint(
        label=label,
        normalized_lf=model.normalized_locality_first(),
        normalized_df=model.normalized_degraded_first(),
        reduction=model.runtime_reduction(),
    )


def sweep_code(
    base: AnalysisParams | None = None,
    codes: tuple[CodeParams, ...] = FIG5A_CODES,
) -> list[SweepPoint]:
    """Figure 5(a): normalized runtime versus erasure-coding scheme."""
    base = base or AnalysisParams()
    return [_evaluate(str(code), base.with_code(code)) for code in codes]


def sweep_blocks(
    base: AnalysisParams | None = None,
    block_counts: tuple[int, ...] = FIG5B_BLOCKS,
) -> list[SweepPoint]:
    """Figure 5(b): normalized runtime versus the number of native blocks."""
    base = base or AnalysisParams()
    return [_evaluate(str(count), base.with_blocks(count)) for count in block_counts]


def sweep_bandwidth(
    base: AnalysisParams | None = None,
    bandwidths_mbps: tuple[int, ...] = FIG5C_BANDWIDTHS_MBPS,
) -> list[SweepPoint]:
    """Figure 5(c): normalized runtime versus rack download bandwidth."""
    base = base or AnalysisParams()
    return [
        _evaluate(f"{bandwidth}Mbps", base.with_bandwidth(mbps(bandwidth)))
        for bandwidth in bandwidths_mbps
    ]
