"""JSON (de)serialisation of simulation configurations and results.

Lets experiment definitions live in version-controlled files:

.. code-block:: json

    {
      "num_nodes": 40, "num_racks": 4, "code": [20, 15],
      "scheduler": "EDF", "failure": "single-node",
      "jobs": [{"num_blocks": 1440, "num_reduce_tasks": 30}]
    }

run with ``repro simulate --config experiment.json``.

:func:`result_to_dict` / :func:`result_to_json` do the reverse direction
for trial outputs: a :class:`~repro.mapreduce.metrics.SimulationResult`
becomes a stable, canonically ordered JSON document.  Every float is kept
at full ``repr`` precision (NaN encoded as the string ``"NaN"`` so the
document stays strict JSON), which makes the output suitable for
golden-equivalence testing: two trials are bit-identical iff their
serialized results compare equal.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
from typing import Any

from repro.cluster.failures import FailurePattern
from repro.ec.codec import CodeParams
from repro.faults.schedule import FailureSchedule
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.metrics import SimulationResult
from repro.storage.degraded import SourceSelection
from repro.storage.repair_driver import RepairConfig


def config_to_dict(config: SimulationConfig) -> dict[str, Any]:
    """Turn a :class:`SimulationConfig` into JSON-serialisable primitives."""
    payload = dataclasses.asdict(config)
    payload["code"] = [config.code.n, config.code.k]
    payload["failure"] = config.failure.value
    payload["source_selection"] = config.source_selection.value
    payload["jobs"] = [dataclasses.asdict(job) for job in config.jobs]
    if config.speed_factors is not None:
        payload["speed_factors"] = list(config.speed_factors)
    if config.failure_schedule is not None:
        payload["failure_schedule"] = config.failure_schedule.to_dict()
    if config.repair is not None:
        payload["repair"] = dataclasses.asdict(config.repair)
    return payload


def config_from_dict(payload: dict[str, Any]) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`config_to_dict` output.

    Missing keys fall back to the defaults, so sparse hand-written files
    work; unknown keys raise, so typos do not silently vanish.
    """
    known = {field.name for field in dataclasses.fields(SimulationConfig)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown configuration keys: {sorted(unknown)}")
    kwargs: dict[str, Any] = dict(payload)
    if "code" in kwargs:
        n, k = kwargs["code"]
        kwargs["code"] = CodeParams(int(n), int(k))
    if "failure" in kwargs and not isinstance(kwargs["failure"], FailurePattern):
        kwargs["failure"] = FailurePattern(kwargs["failure"])
    if "source_selection" in kwargs and not isinstance(
        kwargs["source_selection"], SourceSelection
    ):
        kwargs["source_selection"] = SourceSelection(kwargs["source_selection"])
    if "jobs" in kwargs:
        kwargs["jobs"] = tuple(
            job if isinstance(job, JobConfig) else JobConfig(**job)
            for job in kwargs["jobs"]
        )
    if kwargs.get("speed_factors") is not None:
        kwargs["speed_factors"] = tuple(kwargs["speed_factors"])
    if kwargs.get("failure_eligible") is not None:
        kwargs["failure_eligible"] = tuple(kwargs["failure_eligible"])
    schedule = kwargs.get("failure_schedule")
    if schedule is not None and not isinstance(schedule, FailureSchedule):
        kwargs["failure_schedule"] = FailureSchedule.from_dict(schedule)
    repair = kwargs.get("repair")
    if repair is not None and not isinstance(repair, RepairConfig):
        kwargs["repair"] = RepairConfig(**repair)
    return SimulationConfig(**kwargs)


def config_to_json(config: SimulationConfig, indent: int | None = 2) -> str:
    """Serialise a configuration to a JSON string."""
    return json.dumps(config_to_dict(config), indent=indent)


def config_from_json(text: str) -> SimulationConfig:
    """Parse a configuration from a JSON string."""
    return config_from_dict(json.loads(text))


def load_config(path: str) -> SimulationConfig:
    """Load a configuration from a JSON file."""
    with open(path) as handle:
        return config_from_json(handle.read())


def _jsonify(value: Any) -> Any:
    """Recursively convert a value tree into strict-JSON primitives.

    Enums become their values, frozensets become sorted lists, mapping keys
    become strings, and NaN floats become the string ``"NaN"`` (strict JSON
    has no NaN literal, and ``NaN != NaN`` would defeat equality checks).
    """
    if isinstance(value, enum.Enum):
        return _jsonify(value.value)
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(item) for item in value)
    return value


def result_to_dict(result: SimulationResult) -> dict[str, Any]:
    """Turn a :class:`SimulationResult` into JSON-serialisable primitives.

    The conversion is lossless for everything the simulator computes
    deterministically, so equal dictionaries imply bit-identical trials.
    """
    return _jsonify(dataclasses.asdict(result))


def result_to_json(result: SimulationResult, indent: int | None = 2) -> str:
    """Serialise a result to canonical JSON (sorted keys, full precision)."""
    return json.dumps(
        result_to_dict(result), indent=indent, sort_keys=True, allow_nan=False
    )
