"""Deterministic, mergeable percentile digests for campaign telemetry.

Campaigns (:func:`repro.experiments.common.run_many` sweeps, the
reliability driver) produce thousands of latency samples -- degraded-read
times, job sojourns, makespans -- whose tails (p95/p99) the MDS-queue and
latency-optimization analyses in PAPERS.md care about.  Holding every
sample in memory defeats process-pool fan-out, so each worker folds its
trial's samples into a :class:`LatencyDigest`: a fixed-bin, log-bucketed
histogram with **exact merge semantics**.

Design constraints, enforced by construction:

* **Fixed bins.**  Bucket edges are a pure function of the class constants
  (geometric spacing, :data:`GROWTH` per bin anchored at :data:`BASE`), so
  two digests built anywhere -- different workers, different machines,
  different runs -- always share the same bin grid and merge exactly.
* **Deterministic merge.**  Merging adds integer bin counts (exact and
  order-independent) and combines ``total``/``min``/``max``.  Float
  ``total`` addition is *order-dependent*, so aggregation contracts to a
  canonical order: fold per-trial digests **in trial order** (the order
  ``run_many`` returns results).  Serial and process-pool campaigns then
  produce bit-identical digests, which
  ``tests/integration/test_obs_analysis.py`` asserts.
* **O(1) memory.**  A digest is a sparse ``{bin: count}`` dict bounded by
  the bin-grid size, independent of the sample count.

Quantiles are deterministic: walk the bins in index order to the target
rank and report the bin's geometric midpoint, clamped to the observed
``[min, max]`` (so ``p50`` of a single sample is that sample).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Left edge of bin 0, in the sample's own unit (seconds here): 1 us of
#: simulated time, far below any latency the simulator can produce.
BASE = 1e-6

#: Geometric bin width: 2^(1/16) per bin, ~4.4% relative quantile error.
GROWTH = 2.0 ** (1.0 / 16.0)

#: Reciprocal of ``log(GROWTH)``, precomputed for the hot ``add`` path.
_INV_LOG_GROWTH = 16.0 / math.log(2.0)

_LOG_BASE = math.log(BASE)


def _bin_of(value: float) -> int:
    """Fixed bin index of a positive finite value."""
    return math.floor((math.log(value) - _LOG_BASE) * _INV_LOG_GROWTH)


@dataclass
class LatencyDigest:
    """A mergeable log-bucketed histogram over non-negative samples.

    ``zeros`` counts samples at or below 0 (a duration of exactly ``0.0``
    is legitimate -- e.g. a node-local read); non-finite samples are
    rejected.  ``total`` is the exact running sum, so ``mean`` is exact
    even though quantiles are bucketed.
    """

    counts: dict[int, int] = field(default_factory=dict)
    zeros: int = 0
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample in."""
        if not math.isfinite(value):
            raise ValueError(f"digest samples must be finite, got {value!r}")
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = _bin_of(value)
        self.counts[index] = self.counts.get(index, 0) + 1

    def extend(self, values) -> None:
        """Fold an iterable of samples in, in iteration order."""
        for value in values:
            self.add(value)

    def merge(self, other: "LatencyDigest") -> None:
        """Fold ``other`` into this digest (exact on counts).

        ``total`` is a float sum, so callers aggregating many digests must
        merge in a canonical order (trial order) for bit-identical results.
        """
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @classmethod
    def merged(cls, digests) -> "LatencyDigest":
        """A fresh digest folding ``digests`` together in iteration order."""
        out = cls()
        for digest in digests:
            out.merge(digest)
        return out

    @property
    def mean(self) -> float | None:
        """Exact mean of every sample folded in (None when empty)."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Deterministic quantile estimate in ``[min, max]`` (None if empty).

        The sample at rank ``ceil(q * count)`` (1-based, nearest-rank) is
        located by walking bins in index order; the estimate is its bin's
        geometric midpoint clamped to the observed extremes.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zeros:
            return max(self.minimum, 0.0) if self.minimum <= 0.0 else 0.0
        seen = self.zeros
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                midpoint = math.exp(_LOG_BASE + (index + 0.5) / _INV_LOG_GROWTH)
                return min(max(midpoint, self.minimum), self.maximum)
        return self.maximum

    def percentiles(self) -> dict:
        """The campaign-report summary block: count + p50/p95/p99."""
        return {
            "count": self.count,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict:
        """JSON-friendly canonical form (bin keys as sorted strings)."""
        return {
            "bins": {str(index): self.counts[index] for index in sorted(self.counts)},
            "zeros": self.zeros,
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyDigest":
        """Rebuild a digest from :meth:`to_dict` output."""
        count = payload.get("count", 0)
        return cls(
            counts={int(index): n for index, n in payload.get("bins", {}).items()},
            zeros=payload.get("zeros", 0),
            count=count,
            total=payload.get("total", 0.0),
            minimum=payload["min"] if count else math.inf,
            maximum=payload["max"] if count else -math.inf,
        )


def digest_result(result) -> dict[str, LatencyDigest]:
    """Fold one trial's telemetry samples into the standard digest triple.

    ``degraded_read`` holds per-task degraded-read durations, ``sojourn``
    per-job submit-to-finish times, ``makespan`` per-job first-launch to
    finish runtimes.  Jobs abandoned mid-flight (NaN finish times) are
    skipped entirely -- their latencies are undefined, not zero -- matching
    the reliability campaign's completed-jobs-only accounting.
    """
    from repro.mapreduce.job import MapTaskCategory, TaskKind

    digests = {
        "degraded_read": LatencyDigest(),
        "sojourn": LatencyDigest(),
        "makespan": LatencyDigest(),
    }
    for job_id in sorted(result.jobs):
        job = result.jobs[job_id]
        if job.failed or math.isnan(job.finish_time):
            continue
        digests["sojourn"].add(job.makespan)
        digests["makespan"].add(job.runtime)
        for task in job.tasks:
            if task.kind is TaskKind.MAP and task.category is MapTaskCategory.DEGRADED:
                digests["degraded_read"].add(task.download_time)
    return digests
