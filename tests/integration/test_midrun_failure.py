"""Mid-run node failure: the node dies *while* the job executes."""

from __future__ import annotations

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.network import MB
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.job import MapTaskCategory, TaskKind
from repro.mapreduce.simulation import run_simulation


def config(failure_time=None, **overrides) -> SimulationConfig:
    defaults = dict(
        num_nodes=8,
        num_racks=2,
        map_slots=2,
        code=CodeParams(4, 2),
        block_size=32 * MB,
        jobs=(JobConfig(num_blocks=64, num_reduce_tasks=4),),
        scheduler="EDF",
        seed=7,
        failure_time=failure_time,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestMidRunFailure:
    def test_all_work_still_completes(self):
        result = run_simulation(config(failure_time=50.0))
        job = result.job(0)
        maps = [t for t in job.tasks if t.kind is TaskKind.MAP]
        reduces = [t for t in job.tasks if t.kind is TaskKind.REDUCE]
        assert len(maps) == 64
        assert len(reduces) == 4

    def test_strike_at_zero_equals_static_failure(self):
        """Failing at t=0 is the same trial as a pre-failed cluster."""
        static = run_simulation(config(failure_time=None))
        dynamic = run_simulation(config(failure_time=0.0))
        assert static.failed_nodes == dynamic.failed_nodes
        assert static.job(0).runtime == pytest.approx(dynamic.job(0).runtime)

    def test_late_strike_equals_normal_mode(self):
        """Failing after the job finished changes nothing."""
        normal = run_simulation(config(failure=FailurePattern.NONE))
        late = run_simulation(config(failure_time=1e6))
        assert late.job(0).runtime == pytest.approx(normal.job(0).runtime)
        assert late.job(0).degraded_task_count == 0

    def test_later_strikes_produce_fewer_degraded_tasks(self):
        counts = []
        for failure_time in (0.0, 40.0, 80.0):
            result = run_simulation(config(failure_time=failure_time))
            counts.append(result.job(0).degraded_task_count)
        assert counts[0] >= counts[1] >= counts[2]

    def test_no_completed_task_on_failed_node_after_strike(self):
        strike = 50.0
        result = run_simulation(config(failure_time=strike))
        (dead,) = result.failed_nodes
        for task in result.job(0).tasks:
            if task.slave_id == dead:
                assert task.finish_time <= strike + 1e-9

    def test_degraded_tasks_only_after_strike(self):
        strike = 50.0
        result = run_simulation(config(failure_time=strike))
        degraded = result.job(0).tasks_of(MapTaskCategory.DEGRADED)
        assert all(task.launch_time >= strike for task in degraded)

    def test_runtime_between_normal_and_static_failure(self):
        normal = run_simulation(config(failure=FailurePattern.NONE)).job(0).runtime
        static = run_simulation(config(failure_time=None)).job(0).runtime
        mid = run_simulation(config(failure_time=60.0)).job(0).runtime
        assert normal <= mid + 1e-9
        # A late strike loses less work than a strike before launch.
        assert mid <= static * 1.35

    def test_multi_job_with_midrun_failure(self):
        jobs = tuple(
            JobConfig(num_blocks=32, num_reduce_tasks=2, submit_time=i * 30.0)
            for i in range(2)
        )
        result = run_simulation(config(failure_time=45.0, jobs=jobs))
        for job_id in range(2):
            job = result.job(job_id)
            maps = [t for t in job.tasks if t.kind is TaskKind.MAP]
            assert len(maps) == 32

    def test_negative_failure_time_rejected(self):
        with pytest.raises(ValueError):
            config(failure_time=-1.0)
