"""Unit tests for the three scheduling algorithms."""

from __future__ import annotations

import math

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.degraded_first import BasicDegradedFirstScheduler, pacing_allows_degraded
from repro.core.enhanced import EnhancedDegradedFirstScheduler
from repro.core.locality_first import LocalityFirstScheduler
from repro.core.scheduler import (
    Scheduler,
    SchedulerContext,
    make_scheduler,
    register_scheduler,
    registered_schedulers,
)
from repro.core.tasks import JobTaskState
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import MapTaskCategory
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster


def build_state(seed=2, num_blocks=24, failed=frozenset({0}), num_reduce=4):
    topology = ClusterTopology.from_rack_sizes([3, 3], map_slots=2)
    cluster = HdfsRaidCluster(
        topology, CodeParams(4, 2), num_native_blocks=num_blocks,
        placement="declustered", rng=RngStreams(seed),
    )
    view = cluster.failure_view(failed)
    config = JobConfig(num_blocks=num_blocks, num_reduce_tasks=num_reduce)
    state = JobTaskState(0, config, view, cluster.block_map, topology)
    context = SchedulerContext(
        topology=topology,
        live_nodes=frozenset(topology.node_ids()) - failed,
        expected_degraded_read_time=5.0,
        map_time_mean=config.map_time_mean,
        reduce_slowstart=0.05,
    )
    return state, context, cluster


class TestRegistry:
    def test_builtins_present(self):
        names = registered_schedulers()
        assert {"LF", "BDF", "EDF"} <= set(names)

    def test_make_unknown(self):
        _, context, _ = build_state()
        with pytest.raises(ValueError):
            make_scheduler("NOPE", context)

    def test_register_requires_name(self):
        class Anonymous(Scheduler):
            def assign_maps(self, slave_id, free_map_slots, jobs, now):
                return []

        with pytest.raises(ValueError):
            register_scheduler(Anonymous)

    def test_register_conflict(self):
        class Impostor(Scheduler):
            name = "LF"

            def assign_maps(self, slave_id, free_map_slots, jobs, now):
                return []

        with pytest.raises(ValueError):
            register_scheduler(Impostor)


class TestPacingRule:
    def test_no_degraded_tasks(self):
        state, _, _ = build_state(failed=frozenset())
        assert state.M_d == 0
        assert not pacing_allows_degraded(state)

    def test_initially_allowed(self):
        state, _, _ = build_state()
        if state.M_d == 0:
            pytest.skip("no lost natives for this seed")
        assert pacing_allows_degraded(state)  # 0/M >= 0/M_d

    def test_blocks_after_launch_until_ratio_recovers(self):
        state, _, _ = build_state()
        if state.M_d < 2:
            pytest.skip("need at least two degraded tasks")
        state.pop_degraded()
        # Right after the first degraded launch: m=1, m_d=1 -> 1/M < 1/M_d.
        assert not pacing_allows_degraded(state)

    def test_never_deadlocks(self):
        """(M-M_d+m_d)/M >= m_d/M_d always holds once normals are done."""
        state, _, _ = build_state()
        while state.pop_local(1) or state.pop_remote(1):
            pass
        launched = 0
        while state.has_unassigned_degraded():
            assert pacing_allows_degraded(state)
            state.pop_degraded()
            launched += 1
        assert launched == state.M_d


class TestLocalityFirst:
    def test_prefers_local_then_remote_then_degraded(self):
        state, context, cluster = build_state()
        scheduler = LocalityFirstScheduler(context)
        categories = []
        for slave in sorted(context.live_nodes):
            while True:
                maps = scheduler.assign_maps(slave, 1, [state], now=0.0)
                if not maps:
                    break
                categories.append((slave, maps[0].category))
        # All of a slave's node-local tasks come before any degraded task.
        kinds = [category for _, category in categories]
        first_degraded = kinds.index(MapTaskCategory.DEGRADED) if MapTaskCategory.DEGRADED in kinds else len(kinds)
        assert all(
            not kind.is_local for kind in kinds[first_degraded:] if kind is not MapTaskCategory.DEGRADED
        )
        assert len(kinds) == state.M

    def test_respects_slot_budget(self):
        state, context, _ = build_state()
        scheduler = LocalityFirstScheduler(context)
        maps = scheduler.assign_maps(1, 3, [state], now=0.0)
        assert len(maps) <= 3

    def test_zero_slots(self):
        state, context, _ = build_state()
        scheduler = LocalityFirstScheduler(context)
        assert scheduler.assign_maps(1, 0, [state], now=0.0) == []


class TestBasicDegradedFirst:
    def test_at_most_one_degraded_per_heartbeat(self):
        state, context, _ = build_state()
        if state.M_d < 2:
            pytest.skip("need at least two degraded tasks")
        scheduler = BasicDegradedFirstScheduler(context)
        maps = scheduler.assign_maps(1, 10, [state], now=0.0)
        degraded = [m for m in maps if m.category is MapTaskCategory.DEGRADED]
        assert len(degraded) <= 1

    def test_first_assignment_is_degraded(self):
        state, context, _ = build_state()
        if state.M_d == 0:
            pytest.skip("no degraded tasks")
        scheduler = BasicDegradedFirstScheduler(context)
        maps = scheduler.assign_maps(1, 2, [state], now=0.0)
        assert maps[0].category is MapTaskCategory.DEGRADED

    def test_spreading_of_degraded_launch_indices(self):
        """Degraded launches are spaced roughly M/M_d apart (Figure 4)."""
        state, context, _ = build_state(num_blocks=24)
        if state.M_d < 2:
            pytest.skip("need several degraded tasks")
        scheduler = BasicDegradedFirstScheduler(context)
        order = []
        live = sorted(context.live_nodes)
        while state.has_unassigned_maps():
            progressed = False
            for slave in live:
                for assignment in scheduler.assign_maps(slave, 1, [state], now=0.0):
                    order.append(assignment.category)
                    progressed = True
            assert progressed, "scheduler stalled with pending tasks"
        indices = [i for i, cat in enumerate(order) if cat is MapTaskCategory.DEGRADED]
        expected_gap = state.M / state.M_d
        gaps = [b - a for a, b in zip(indices, indices[1:])]
        assert all(gap >= expected_gap - 1 for gap in gaps)

    def test_degraded_not_assigned_via_fallback(self):
        """Once pacing blocks, remaining slots take local/remote only."""
        state, context, _ = build_state()
        if state.M_d == 0:
            pytest.skip("no degraded tasks")
        scheduler = BasicDegradedFirstScheduler(context)
        maps = scheduler.assign_maps(1, 6, [state], now=0.0)
        degraded = [m for m in maps if m.category is MapTaskCategory.DEGRADED]
        assert len(degraded) <= 1


class TestEnhanced:
    def test_rack_guard_blocks_back_to_back(self):
        state, context, _ = build_state()
        if state.M_d < 2:
            pytest.skip("need two degraded tasks")
        scheduler = EnhancedDegradedFirstScheduler(context)
        rack0_nodes = [n for n in sorted(context.live_nodes) if context.topology.rack_of(n) == 0]
        first = scheduler.assign_maps(rack0_nodes[0], 1, [state], now=0.0)
        if not first or first[0].category is not MapTaskCategory.DEGRADED:
            pytest.skip("slave guard kept the first degraded task off this node")
        # Advance pacing so only the rack guard can block the next launch.
        state.launched_map_tasks += state.M
        second = scheduler.assign_maps(rack0_nodes[1], 1, [state], now=0.1)
        degraded = [m for m in second if m.category is MapTaskCategory.DEGRADED]
        assert not degraded  # same rack, within the threshold window

    def test_rack_guard_releases_after_threshold(self):
        state, context, _ = build_state()
        if state.M_d < 2:
            pytest.skip("need two degraded tasks")
        scheduler = EnhancedDegradedFirstScheduler(context)
        scheduler._on_degraded_assigned(slave_id=1, now=0.0)
        assert not scheduler.assign_to_rack(0, now=1.0)
        assert scheduler.assign_to_rack(0, now=context.expected_degraded_read_time + 0.1)

    def test_slave_guard_blocks_backlogged_slave(self):
        state, context, _ = build_state()
        scheduler = EnhancedDegradedFirstScheduler(context)
        backlogs = {
            slave: state.pending_node_local_count(slave)
            for slave in context.live_nodes
        }
        heavy = max(backlogs, key=backlogs.get)
        light = min(backlogs, key=backlogs.get)
        if backlogs[heavy] == backlogs[light]:
            pytest.skip("perfectly balanced placement; no heavy slave")
        assert scheduler.assign_to_slave(state, light)
        assert not scheduler.assign_to_slave(state, heavy)

    def test_slave_guard_counts_speed(self):
        """A slow empty node must not absorb a degraded task (extreme case)."""
        topology = ClusterTopology.from_rack_sizes(
            [3, 3], map_slots=2, speed_factors=[0.1, 1, 1, 1, 1, 1]
        )
        cluster = HdfsRaidCluster(
            topology, CodeParams(4, 2), num_native_blocks=24,
            placement="declustered", rng=RngStreams(2),
        )
        view = cluster.failure_view(frozenset({1}))
        config = JobConfig(num_blocks=24)
        state = JobTaskState(0, config, view, cluster.block_map, topology)
        context = SchedulerContext(
            topology=topology,
            live_nodes=frozenset(topology.node_ids()) - {1},
            expected_degraded_read_time=5.0,
            map_time_mean=config.map_time_mean,
            reduce_slowstart=0.05,
        )
        scheduler = EnhancedDegradedFirstScheduler(context)
        # Drain node 0's backlog so only its slowness can block it.
        while state.pop_local(0):
            pass
        assert state.pending_node_local_count(0) == 0
        assert not scheduler.assign_to_slave(state, 0)

    def test_time_since_degraded_infinite_initially(self):
        _, context, _ = build_state()
        scheduler = EnhancedDegradedFirstScheduler(context)
        assert math.isinf(scheduler._time_since_degraded(0, now=100.0))
        assert math.isinf(scheduler._mean_time_since_degraded(now=100.0))


class TestReduceAssignment:
    def test_reduce_waits_for_slowstart(self):
        state, context, _ = build_state()
        scheduler = LocalityFirstScheduler(context)
        _, reduces = scheduler.assign(1, 0, 1, [state], now=0.0)
        assert reduces == []
        state.completed_map_tasks = state.M  # force past slow-start
        _, reduces = scheduler.assign(1, 0, 1, [state], now=0.0)
        assert len(reduces) == 1
        assert reduces[0].reduce_index == 0
