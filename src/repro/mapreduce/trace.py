"""Task-timeline export and rendering.

The paper communicates its scheduling ideas through map-slot activity
charts (Figures 3 and 4).  This module turns a
:class:`~repro.mapreduce.metrics.SimulationResult` into the same artifact:

* :func:`to_records` / :func:`to_json` / :func:`write_csv` -- flat task
  records for external tooling;
* :func:`render_timeline` -- an ASCII map-slot activity chart, one row per
  node, download phases drawn differently from processing.
"""

from __future__ import annotations

import csv
import io
import json
import math

from repro.mapreduce.job import TaskKind
from repro.mapreduce.metrics import SimulationResult

#: Characters used by the ASCII chart.
_PROCESS_CHAR = {"map": "#", "reduce": "R"}
_DOWNLOAD_CHAR = "~"


def _rounded(value: float) -> float | None:
    """Round for export; ``None`` for NaN/inf (an unfinished task's time).

    JSON has no NaN token -- ``json.dumps`` would emit the non-standard
    ``NaN``, which strict parsers reject -- so non-finite times serialise
    as ``null``.
    """
    if not math.isfinite(value):
        return None
    return round(value, 6)


def to_records(result: SimulationResult) -> list[dict]:
    """Flatten a result into one dict per task, JSON/CSV-friendly.

    Non-finite times (a killed or still-running attempt in a failed trial's
    partial result) become ``None``/empty rather than NaN.
    """
    records = []
    for job_id, job in sorted(result.jobs.items()):
        for task in job.tasks:
            records.append(
                {
                    "job_id": job_id,
                    "kind": task.kind.value,
                    "category": task.category.value if task.category else "",
                    "slave_id": task.slave_id,
                    "launch_time": _rounded(task.launch_time),
                    "download_time": _rounded(task.download_time),
                    "finish_time": _rounded(task.finish_time),
                    "runtime": _rounded(task.runtime),
                    "attempt": task.attempt,
                    "speculative": task.speculative,
                }
            )
    records.sort(key=lambda r: (r["launch_time"] or 0.0, r["slave_id"]))
    return records


def to_json(result: SimulationResult, indent: int | None = None) -> str:
    """Serialise the task timeline (plus trial metadata) as JSON."""
    payload = {
        "scheduler": result.scheduler,
        "seed": result.seed,
        "failed_nodes": sorted(result.failed_nodes),
        "jobs": {
            str(job_id): {
                "submit_time": job.submit_time,
                "first_launch_time": job.first_launch_time,
                "finish_time": job.finish_time,
                "runtime": job.runtime,
                "failed": job.failed,
                "failure_kind": job.failure_kind,
                "killed_attempts": job.killed_attempts,
                "speculative_launched": job.speculative_launched,
                "speculative_killed": job.speculative_killed,
            }
            for job_id, job in sorted(result.jobs.items())
        },
        "faults": {
            "detections": [
                {
                    "node": record.node,
                    "failed_at": record.failed_at,
                    "detected_at": record.detected_at,
                    "latency": record.latency,
                }
                for record in result.faults.detections
            ],
            "blacklistings": [
                {"node": record.node, "at": record.at}
                for record in result.faults.blacklistings
            ],
            "recoveries": [
                {
                    "node": record.node,
                    "at": record.at,
                    "reclaimed_tasks": record.reclaimed_tasks,
                }
                for record in result.faults.recoveries
            ],
            "repairs": [
                {
                    "block": record.block,
                    "destination": record.destination,
                    "started_at": record.started_at,
                    "finished_at": record.finished_at,
                    "bytes_fetched": record.bytes_fetched,
                    "reclaimed_tasks": record.reclaimed_tasks,
                    "attempts": record.attempts,
                }
                for record in result.faults.repairs
            ],
            "corruptions": [
                {
                    "block": record.block,
                    "node": record.node,
                    "detected_at": record.detected_at,
                    "via": record.via,
                }
                for record in result.faults.corruptions
            ],
        },
        "tasks": to_records(result),
    }
    from repro.obs.export import sanitize

    return json.dumps(sanitize(payload), indent=indent, allow_nan=False)


def write_csv(result: SimulationResult, stream: io.TextIOBase | None = None) -> str:
    """Write the task records as CSV; returns the text."""
    records = to_records(result)
    buffer = io.StringIO()
    fields = [
        "job_id", "kind", "category", "slave_id",
        "launch_time", "download_time", "finish_time", "runtime",
        "attempt", "speculative",
    ]
    writer = csv.DictWriter(buffer, fieldnames=fields)
    writer.writeheader()
    writer.writerows(records)
    text = buffer.getvalue()
    if stream is not None:
        stream.write(text)
    return text


def render_timeline(
    result: SimulationResult,
    width: int = 72,
    job_id: int | None = None,
    kinds: tuple[TaskKind, ...] = (TaskKind.MAP,),
) -> str:
    """Render an ASCII map-slot activity chart (the paper's Figure 3 view).

    One row per (node, slot-lane); ``~`` marks download/degraded-read time,
    ``#`` processing (``R`` for reduce tasks).  Lanes are assigned greedily
    per node, so the row count equals each node's peak concurrency.
    """
    tasks = []
    for jid, job in sorted(result.jobs.items()):
        if job_id is not None and jid != job_id:
            continue
        tasks.extend(task for task in job.tasks if task.kind in kinds)
    if not tasks:
        return "(no tasks)"
    horizon = max(task.finish_time for task in tasks)
    start = min(task.launch_time for task in tasks)
    span = max(horizon - start, 1e-9)
    scale = (width - 1) / span

    def column(time: float) -> int:
        return min(width - 1, max(0, int((time - start) * scale)))

    lanes: dict[tuple[int, int], list[str]] = {}
    lane_busy_until: dict[int, list[float]] = {}
    for task in sorted(tasks, key=lambda t: (t.slave_id, t.launch_time)):
        node = task.slave_id
        busy = lane_busy_until.setdefault(node, [])
        for lane_index, busy_until in enumerate(busy):
            if task.launch_time >= busy_until - 1e-9:
                busy[lane_index] = task.finish_time
                break
        else:
            lane_index = len(busy)
            busy.append(task.finish_time)
        row = lanes.setdefault((node, lane_index), [" "] * width)
        begin = column(task.launch_time)
        split = column(task.launch_time + task.download_time)
        end = column(task.finish_time)
        glyph = _PROCESS_CHAR["reduce" if task.kind is TaskKind.REDUCE else "map"]
        for position in range(begin, max(begin, split)):
            row[position] = _DOWNLOAD_CHAR
        for position in range(split, end + 1):
            row[position] = glyph
    lines = [
        f"timeline [{start:.1f}s .. {horizon:.1f}s]  (~ download, # map, R reduce)"
    ]
    for (node, lane_index) in sorted(lanes):
        label = f"node {node}.{lane_index}"
        lines.append(f"{label:>10} |{''.join(lanes[(node, lane_index)])}|")
    return "\n".join(lines)


def summarize(result: SimulationResult) -> str:
    """A one-paragraph textual digest of a trial."""
    lines = [
        f"scheduler={result.scheduler} seed={result.seed} "
        f"failed={sorted(result.failed_nodes)}"
    ]
    for job_id, job in sorted(result.jobs.items()):
        degraded_read = job.mean_degraded_read_time()
        degraded_text = "n/a" if math.isnan(degraded_read) else f"{degraded_read:.1f}s"
        lines.append(
            f"  job {job_id}: runtime={job.runtime:.1f}s "
            f"maps={sum(1 for t in job.tasks if t.kind is TaskKind.MAP)} "
            f"degraded={job.degraded_task_count} "
            f"mean-degraded-read={degraded_text} "
            f"stolen={job.stolen_task_count}"
        )
    return "\n".join(lines)
