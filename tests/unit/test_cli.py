"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig5", "fig7", "fig8", "fig9", "table1"):
            assert name in out


class TestRun:
    def test_run_fig3(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "40 s" in out and "30 s" in out

    def test_run_fig5(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out

    def test_run_unknown(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])


class TestSimulate:
    def test_small_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "8", "--racks", "2", "--code", "4,2",
                "--blocks", "48", "--scheduler", "LF", "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime:" in out
        assert "degraded tasks:" in out

    def test_bad_code_argument(self, capsys):
        assert main(["simulate", "--code", "oops"]) == 2

    def test_timeline_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "6", "--racks", "2", "--code", "4,2",
                "--blocks", "24", "--seed", "2", "--timeline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline [" in out
        assert "node " in out

    def test_json_export(self, capsys, tmp_path):
        target = tmp_path / "trace.json"
        code = main(
            [
                "simulate",
                "--nodes", "6", "--racks", "2", "--code", "4,2",
                "--blocks", "24", "--seed", "2", "--json", str(target),
            ]
        )
        assert code == 0
        import json

        payload = json.loads(target.read_text())
        assert payload["scheduler"] == "EDF"
        assert len(payload["tasks"]) > 0

    def test_failure_time_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "6", "--racks", "2", "--code", "4,2",
                "--blocks", "24", "--seed", "2", "--failure-time", "1e9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded tasks: 0" in out  # strike after completion

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


_SMALL = [
    "simulate",
    "--nodes", "6", "--racks", "2", "--code", "4,2",
    "--blocks", "24", "--seed", "2",
]


class TestObservabilityExports:
    def test_scheduler_flag_is_case_insensitive(self, capsys):
        assert main(_SMALL + ["--scheduler", "edf"]) == 0
        assert "scheduler: EDF" in capsys.readouterr().out

    def test_events_export(self, capsys, tmp_path):
        import json

        target = tmp_path / "events.jsonl"
        assert main(_SMALL + ["--events", str(target)]) == 0
        lines = target.read_text().strip().split("\n")
        kinds = {json.loads(line)["kind"] for line in lines}
        assert {"job.submit", "heartbeat", "sched.decision", "task.launch",
                "task.finish", "job.finish"} <= kinds

    def test_chrome_trace_export(self, capsys, tmp_path):
        import json

        target = tmp_path / "trace.json"
        assert main(_SMALL + ["--chrome-trace", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert any(event["ph"] == "X" for event in payload["traceEvents"])

    def test_utilization_report_to_stdout(self, capsys):
        assert main(_SMALL + ["--utilization-report", "-"]) == 0
        out = capsys.readouterr().out
        assert "map slots" in out
        assert "links" in out

    def test_exports_create_parent_directories(self, capsys, tmp_path):
        target = tmp_path / "deep" / "nested" / "events.jsonl"
        assert main(_SMALL + ["--events", str(target)]) == 0
        assert target.exists()

    def test_json_export_creates_parent_directories(self, capsys, tmp_path):
        target = tmp_path / "deep" / "trace.json"
        assert main(_SMALL + ["--json", str(target)]) == 0
        assert target.exists()

    def test_unwritable_path_exits_2_without_traceback(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        target = blocker / "sub" / "events.jsonl"  # parent is a regular file
        assert main(_SMALL + ["--events", str(target)]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestRepairAndExitCodes:
    """The documented exit-code contract: 0 ok / 1 job failed / 2 bad usage."""

    def test_repair_flags_accepted_and_reported(self, capsys):
        code = main(
            _SMALL
            + [
                "--failure", "single-node",
                "--repair-bandwidth-mbps", "500",
                "--repair-concurrent", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repairs:" in out
        assert "reclassified" in out

    def test_data_unavailable_exits_1(self, capsys, tmp_path):
        # (3,2) tolerates one failure; two overlapping ones doom a stripe.
        trace = tmp_path / "double.json"
        trace.write_text(
            '{"events": [{"kind": "fail", "at": 20.0, "node": 0},'
            ' {"kind": "fail", "at": 26.0, "node": 2}]}'
        )
        code = main(
            [
                "simulate",
                "--nodes", "6", "--racks", "3", "--code", "3,2",
                "--blocks", "48", "--seed", "3",
                "--heartbeat-expiry", "9",
                "--failure-trace", str(trace),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "job failed" in captured.err
        # The partial result's summary still printed.
        assert "runtime:" in captured.out

    def test_wait_for_repair_completes_after_recovery(self, capsys, tmp_path):
        trace = tmp_path / "double_recover.json"
        trace.write_text(
            '{"events": [{"kind": "fail", "at": 20.0, "node": 0},'
            ' {"kind": "fail", "at": 26.0, "node": 2},'
            ' {"kind": "recover", "at": 120.0, "node": 2}]}'
        )
        code = main(
            [
                "simulate",
                "--nodes", "6", "--racks", "3", "--code", "3,2",
                "--blocks", "48", "--seed", "3",
                "--heartbeat-expiry", "9",
                "--failure-trace", str(trace),
                "--wait-for-repair",
            ]
        )
        assert code == 0

    def test_corruption_trace_reported(self, capsys, tmp_path):
        trace = tmp_path / "corrupt.json"
        trace.write_text(
            '{"events": [{"kind": "corrupt", "at": 1.0,'
            ' "stripe": 2, "position": 3}]}'
        )
        code = main(
            _SMALL
            + [
                "--failure-trace", str(trace),
                "--repair-bandwidth-mbps", "500",
                "--scrub-interval", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "found corrupt" in out

    def test_scrub_without_repair_exits_2(self, capsys):
        assert main(_SMALL + ["--scrub-interval", "5"]) == 2
        assert "needs --repair-bandwidth-mbps" in capsys.readouterr().err

    def test_bad_repair_options_exit_2(self, capsys):
        code = main(
            _SMALL
            + ["--repair-bandwidth-mbps", "500", "--repair-concurrent", "0"]
        )
        assert code == 2
        assert "bad repair options" in capsys.readouterr().err


class TestCheckMode:
    """``--check`` and the sanitizer's exit code 3."""

    def test_simulate_check_clean_run_exits_0(self, capsys):
        assert main(_SMALL + ["--check"]) == 0
        assert "runtime:" in capsys.readouterr().out

    def test_simulate_check_composes_with_exports(self, capsys, tmp_path):
        target = tmp_path / "events.jsonl"
        code = main(_SMALL + ["--check", "--events", str(target)])
        assert code == 0
        assert target.exists()

    # 48 blocks keep the degraded backlog long enough that pacing actually
    # forbids a launch, which the forced break then takes anyway.
    _BDF_BROKEN = [
        "simulate",
        "--nodes", "6", "--racks", "2", "--code", "4,2",
        "--blocks", "48", "--seed", "2", "--scheduler", "BDF",
    ]

    def test_simulate_check_violation_exits_3(self, capsys, monkeypatch):
        from repro.core import degraded_first

        monkeypatch.setattr(degraded_first, "_FORCE_PACING_BREAK", True)
        code = main(self._BDF_BROKEN + ["--check"])
        assert code == 3
        err = capsys.readouterr().err
        assert "bdf-pacing" in err
        assert "sanitizer" in err

    def test_violation_without_check_goes_unnoticed(self, capsys, monkeypatch):
        # The mutation only trips the sanitizer; an unchecked run completes.
        from repro.core import degraded_first

        monkeypatch.setattr(degraded_first, "_FORCE_PACING_BREAK", True)
        assert main(self._BDF_BROKEN) == 0


class TestFuzz:
    def test_clean_fuzz_exits_0(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        code = main(
            ["fuzz", "--trials", "2", "--seed", "0", "--corpus", str(corpus)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fuzzed 2 scenario(s) (seed 0)" in out
        assert not list(corpus.glob("*.json")) if corpus.exists() else True

    def test_fuzz_report_export(self, capsys, tmp_path):
        import json

        report = tmp_path / "fuzz.json"
        code = main(["fuzz", "--trials", "1", "--report", str(report)])
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["trials"] == 1
        assert "outcomes" in payload and "findings" in payload

    def test_fuzz_finding_exits_3_and_saves_repro(self, capsys, tmp_path, monkeypatch):
        from repro.core import degraded_first

        monkeypatch.setattr(degraded_first, "_FORCE_PACING_BREAK", True)
        corpus = tmp_path / "corpus"
        # Pin the policy axis to BDF: the forced pacing break lives in the
        # BDF assign path, and the default per-scenario draw from the full
        # registry may not sample it within a handful of trials.
        code = main(
            ["fuzz", "--trials", "10", "--seed", "0", "--schedulers", "bdf",
             "--corpus", str(corpus)]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "bdf-pacing" in err
        saved = list(corpus.glob("repro-*.json"))
        assert saved, "findings must be saved into the corpus directory"
        assert any("bdf-pacing" in path.name for path in saved)

    def test_schedulers_flag_pins_the_policy_axis(self, capsys, tmp_path):
        import json

        report = tmp_path / "fuzz.json"
        code = main(
            ["fuzz", "--trials", "2", "--schedulers", "LF,edf",
             "--report", str(report)]
        )
        assert code == 0
        assert json.loads(report.read_text())["schedulers"] == ["LF", "EDF"]

    def test_unknown_schedulers_flag_exits_2(self, capsys):
        assert main(["fuzz", "--trials", "1", "--schedulers", "NOPE"]) == 2
        assert "NOPE" in capsys.readouterr().err

    def test_bad_trials_exits_2(self, capsys):
        assert main(["fuzz", "--trials", "0"]) == 2
        assert "--trials" in capsys.readouterr().err

    def test_unwritable_report_exits_2(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        target = blocker / "sub" / "fuzz.json"
        assert main(["fuzz", "--trials", "1", "--report", str(target)]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestPoliciesCommand:
    def test_list_shows_every_registered_policy(self, capsys):
        from repro.core.scheduler import registered_schedulers

        assert main(["policies", "list"]) == 0
        out = capsys.readouterr().out
        for name in registered_schedulers():
            assert name in out
        # One line per policy, each carrying a one-line summary.
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == len(registered_schedulers())

    def test_simulate_accepts_policy_alias(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "8", "--racks", "2", "--code", "4,2",
                "--blocks", "24", "--policy", "steal", "--seed", "1",
            ]
        )
        assert code == 0
        assert "scheduler: STEAL" in capsys.readouterr().out

    def test_simulate_unknown_policy_exits_2(self, capsys):
        assert main(["simulate", "--policy", "NOT-A-POLICY"]) == 2
        err = capsys.readouterr().err
        assert "NOT-A-POLICY" in err and "choose from" in err


class TestTournament:
    def test_smoke_run_writes_ranked_report(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "tournament.json"
        code = main(
            [
                "tournament",
                "--nodes", "12", "--racks", "3", "--code", "6,4",
                "--blocks", "48", "--seeds", "1",
                "--policies", "LF,edf",
                "--workers", "2",
                "--json", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== tournament ==" in out
        assert "2 policies x 5 scenario(s) x 1 seed(s)" in out
        payload = json.loads(report_path.read_text())
        assert payload["schema"] == "repro.tournament-report/v1"
        assert payload["tournament"]["policies"] == ["LF", "EDF"]
        assert payload["accounting"]["submitted"] == 10
        assert payload["accounting"]["failed"] == 0
        assert [entry["rank"] for entry in payload["leaderboard"]] == [1, 2]

    def test_unknown_policy_exits_2(self, capsys):
        assert main(["tournament", "--policies", "LF,NOPE"]) == 2
        assert "NOPE" in capsys.readouterr().err

    def test_bad_code_exits_2(self, capsys):
        assert main(["tournament", "--code", "oops"]) == 2
        assert "--code" in capsys.readouterr().err
