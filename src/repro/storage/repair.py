"""Full-node repair planning: rebuilding a failed node's blocks.

Degraded reads (what the paper schedules around) serve *reads* during
failure; eventually the storage system also *repairs* — re-creates every
lost block on surviving nodes.  This module plans that reconstruction the
conventional way (each lost block is rebuilt from ``k`` surviving blocks of
its stripe) and estimates its cost, so users can reason about repair
traffic alongside MapReduce traffic.

The planner balances rebuilt blocks across surviving nodes (subject to the
same distinct-node / rack-cap placement rules) and accounts the bytes each
link carries, the quantity the paper's related work (e.g. XORing Elephants)
optimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import NetworkSpec
from repro.cluster.topology import ClusterTopology
from repro.sim.rng import RngStreams
from repro.storage.block import BlockId, StoredBlock
from repro.storage.namenode import BlockMap


@dataclass(frozen=True)
class BlockRepair:
    """The plan for rebuilding one lost block."""

    block: BlockId
    destination: int
    sources: tuple[StoredBlock, ...]


@dataclass
class RepairPlan:
    """A full-node reconstruction plan plus traffic accounting."""

    failed_nodes: frozenset[int]
    repairs: list[BlockRepair] = field(default_factory=list)

    @property
    def lost_block_count(self) -> int:
        """Number of blocks being rebuilt."""
        return len(self.repairs)

    def bytes_per_destination(self, block_size: float) -> dict[int, float]:
        """Bytes each rebuilding node must download."""
        totals: dict[int, float] = {}
        for repair in self.repairs:
            fetched = sum(
                block_size for source in repair.sources if source.node_id != repair.destination
            )
            totals[repair.destination] = totals.get(repair.destination, 0.0) + fetched
        return totals

    def cross_rack_bytes(self, topology: ClusterTopology, block_size: float) -> float:
        """Total bytes crossing the core switch during repair."""
        total = 0.0
        for repair in self.repairs:
            dst_rack = topology.rack_of(repair.destination)
            for source in repair.sources:
                if topology.rack_of(source.node_id) != dst_rack:
                    total += block_size
        return total

    def estimated_duration(
        self,
        topology: ClusterTopology,
        network: NetworkSpec,
        block_size: float,
        parallel_destinations: bool = True,
    ) -> float:
        """A bandwidth-bound repair-time estimate.

        With ``parallel_destinations`` every rebuilding node downloads
        concurrently; the bottleneck is the busiest of (per-node NIC, rack
        downlink shared by that rack's rebuilders, core-crossing total).
        Serial mode sums each destination's download at NIC speed -- the
        single-repair-process lower bound.
        """
        per_destination = self.bytes_per_destination(block_size)
        if not per_destination:
            return 0.0
        if not parallel_destinations:
            return sum(amount / network.node_bandwidth for amount in per_destination.values())
        nic_bound = max(
            amount / network.node_bandwidth for amount in per_destination.values()
        )
        per_rack_cross: dict[int, float] = {}
        for repair in self.repairs:
            dst_rack = topology.rack_of(repair.destination)
            for source in repair.sources:
                if topology.rack_of(source.node_id) != dst_rack:
                    per_rack_cross[dst_rack] = per_rack_cross.get(dst_rack, 0.0) + block_size
        downlink_bound = max(
            (amount / network.rack_download_bw for amount in per_rack_cross.values()),
            default=0.0,
        )
        return max(nic_bound, downlink_bound)


class RepairPlanner:
    """Plans conventional (k-source) reconstruction of failed nodes.

    Parameters
    ----------
    block_map:
        Placement metadata of the stored file.
    topology:
        Cluster layout.
    """

    def __init__(self, block_map: BlockMap, topology: ClusterTopology) -> None:
        self.block_map = block_map
        self.topology = topology

    def plan(self, failed_nodes: frozenset[int], rng: RngStreams) -> RepairPlan:
        """Build a repair plan for every block (native *and* parity) lost.

        Destinations are the least-loaded surviving nodes that do not
        already hold a block of the same stripe (keeping the distinct-node
        invariant); sources are ``k`` random survivors of the stripe.
        """
        self.block_map.check_recoverable(failed_nodes)
        k = self.block_map.params.k
        plan = RepairPlan(failed_nodes=failed_nodes)
        load: dict[int, int] = {
            node_id: 0
            for node_id in self.topology.node_ids()
            if node_id not in failed_nodes
        }
        lost_blocks = [
            stored.block
            for stored in self.block_map.all_blocks()
            if stored.node_id in failed_nodes
        ]
        for block in lost_blocks:
            survivors = self.block_map.surviving_stripe_blocks(
                block.stripe_id, failed_nodes
            )
            stripe_nodes = {stored.node_id for stored in survivors}
            candidates = sorted(
                (node_id for node_id in load if node_id not in stripe_nodes),
                key=lambda node_id: (load[node_id], node_id),
            )
            if not candidates:
                # Stripes as wide as the cluster (the paper's testbed layout)
                # leave no survivor without a block of the stripe; real
                # HDFS-RAID then doubles up until a replacement node joins.
                candidates = sorted(load, key=lambda node_id: (load[node_id], node_id))
            destination = candidates[0]
            load[destination] += 1
            sources = tuple(
                sorted(
                    rng.sample(f"repair:{block}", survivors, k),
                    key=lambda stored: stored.block,
                )
            )
            plan.repairs.append(
                BlockRepair(block=block, destination=destination, sources=sources)
            )
        return plan
