"""Systematic Reed-Solomon coding over GF(2^8).

An ``RS(n, k)`` code turns ``k`` *native* blocks into ``n - k`` *parity*
blocks such that any ``k`` of the ``n`` stripe blocks suffice to rebuild the
originals.  This is exactly the contract HDFS-RAID relies on for degraded
reads, and the contract the paper's scheduling analysis assumes.

The implementation is matrix-based: a systematic ``n x k`` generator matrix
(top ``k`` rows = identity) encodes, and decoding inverts the ``k x k``
sub-matrix formed by the rows of whichever ``k`` blocks survived.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.ec import matrix as gfm


def _as_byte_array(block: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Coerce a block payload to a 1-D uint8 numpy array without copying numpy input."""
    if isinstance(block, np.ndarray):
        if block.dtype != np.uint8 or block.ndim != 1:
            raise ValueError("numpy blocks must be 1-D uint8 arrays")
        return block
    return np.frombuffer(bytes(block), dtype=np.uint8)


class ReedSolomon:
    """A systematic RS(n, k) encoder/decoder.

    Parameters
    ----------
    n:
        Total number of blocks per stripe (native + parity).
    k:
        Number of native blocks per stripe.
    """

    def __init__(self, n: int, k: int) -> None:
        if not 0 < k <= n:
            raise ValueError(f"require 0 < k <= n, got n={n} k={k}")
        self.n = n
        self.k = k
        self._generator = gfm.systematic_encoding_matrix(n, k)

    @property
    def parity_count(self) -> int:
        """Number of parity blocks per stripe (``n - k``)."""
        return self.n - self.k

    @property
    def generator_matrix(self) -> np.ndarray:
        """A copy of the ``n x k`` systematic generator matrix."""
        return self._generator.copy()

    def encode(self, native_blocks: Sequence[bytes | np.ndarray]) -> list[bytes]:
        """Encode ``k`` equal-length native blocks into ``n - k`` parity blocks.

        Returns the parity blocks only; a full stripe is
        ``list(native_blocks) + parity``.
        """
        if len(native_blocks) != self.k:
            raise ValueError(f"expected {self.k} native blocks, got {len(native_blocks)}")
        arrays = [_as_byte_array(block) for block in native_blocks]
        lengths = {len(array) for array in arrays}
        if len(lengths) > 1:
            raise ValueError(f"native blocks have unequal lengths: {sorted(lengths)}")
        parity_rows = self._generator[self.k:]
        parity_arrays = gfm.matvec_blocks(parity_rows, arrays)
        return [array.tobytes() for array in parity_arrays]

    def decode(self, available: Mapping[int, bytes | np.ndarray]) -> list[bytes]:
        """Reconstruct all ``k`` native blocks from any ``k`` stripe blocks.

        Parameters
        ----------
        available:
            Maps stripe index (``0 .. n-1``; indices below ``k`` are native,
            the rest parity) to the surviving block payload.  At least ``k``
            entries are required; exactly the first ``k`` sorted by index are
            used, matching the paper's "read from any k surviving nodes".
        """
        if len(available) < self.k:
            raise ValueError(
                f"need at least k={self.k} blocks to decode, got {len(available)}"
            )
        indices = sorted(available)[: self.k]
        for index in indices:
            if not 0 <= index < self.n:
                raise ValueError(f"stripe index {index} out of range [0, {self.n})")
        arrays = [_as_byte_array(available[index]) for index in indices]
        lengths = {len(array) for array in arrays}
        if len(lengths) > 1:
            raise ValueError(f"blocks have unequal lengths: {sorted(lengths)}")
        sub_matrix = self._generator[indices, :]
        decode_matrix = gfm.invert(sub_matrix)
        native_arrays = gfm.matvec_blocks(decode_matrix, arrays)
        return [array.tobytes() for array in native_arrays]

    def reconstruct_block(
        self, stripe_index: int, available: Mapping[int, bytes | np.ndarray]
    ) -> bytes:
        """Rebuild one block (native or parity) of the stripe.

        This is the degraded-read primitive: a degraded task downloads ``k``
        surviving blocks and reconstructs exactly the lost one.
        """
        if not 0 <= stripe_index < self.n:
            raise ValueError(f"stripe index {stripe_index} out of range [0, {self.n})")
        if stripe_index in available:
            return bytes(_as_byte_array(available[stripe_index]).tobytes())
        natives = self.decode(available)
        if stripe_index < self.k:
            return natives[stripe_index]
        parity = self.encode(natives)
        return parity[stripe_index - self.k]
