"""MapReduce engine on the discrete-event simulator.

Reproduces the architecture of the paper's CSIM-based simulator (Figure 6):
a master process (the job tracker), slave processes with map/reduce slots
that heartbeat every 3 seconds, a NodeTree for all transmissions, and a FIFO
job queue.

* :mod:`repro.mapreduce.job` -- job and task descriptions.
* :mod:`repro.mapreduce.config` -- :class:`~repro.mapreduce.config.SimulationConfig`.
* :mod:`repro.mapreduce.master` -- the job tracker.
* :mod:`repro.mapreduce.slave` -- task trackers and task execution.
* :mod:`repro.mapreduce.shuffle` -- shuffle traffic between maps and reduces.
* :mod:`repro.mapreduce.metrics` -- per-task records and job summaries.
* :mod:`repro.mapreduce.simulation` -- top-level ``run_simulation`` entry.
"""

from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.job import MapTaskCategory, TaskKind
from repro.mapreduce.metrics import JobMetrics, SimulationResult, TaskRecord

__all__ = [
    "JobConfig",
    "JobMetrics",
    "MapTaskCategory",
    "SimulationConfig",
    "SimulationResult",
    "TaskKind",
    "TaskRecord",
    "run_simulation",
]


def __getattr__(name: str):
    """Lazily expose :func:`run_simulation`.

    The simulation module depends on :mod:`repro.core`, whose schedulers in
    turn import this package's config and job types; importing it eagerly
    here would create a cycle.
    """
    if name == "run_simulation":
        from repro.mapreduce.simulation import run_simulation

        return run_simulation
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
