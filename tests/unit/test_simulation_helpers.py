"""Unit tests for simulation assembly helpers."""

from __future__ import annotations

import pytest

from repro.analysis.model import AnalysisParams, AnalyticalModel
from repro.cluster.network import MB, gbps
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.simulation import build_topology, expected_degraded_read_time


class TestBuildTopology:
    def test_default_layout(self):
        topo = build_topology(SimulationConfig())
        assert topo.num_nodes == 40
        assert topo.num_racks == 4
        assert topo.node(0).map_slots == 4
        assert topo.node(0).reduce_slots == 1

    def test_uneven_split_rejected(self):
        config = SimulationConfig(num_nodes=10, num_racks=4, code=CodeParams(4, 2))
        with pytest.raises(ValueError):
            build_topology(config)

    def test_speed_factors_applied(self):
        factors = tuple(0.5 if i < 4 else 1.0 for i in range(8))
        config = SimulationConfig(
            num_nodes=8, num_racks=2, code=CodeParams(4, 2), speed_factors=factors
        )
        topo = build_topology(config)
        assert topo.node(0).speed_factor == 0.5
        assert topo.node(7).speed_factor == 1.0


class TestExpectedDegradedReadTime:
    def test_matches_analysis_formula(self):
        config = SimulationConfig(
            num_nodes=40,
            num_racks=4,
            code=CodeParams(16, 12),
            block_size=128 * MB,
            rack_bandwidth=gbps(1),
        )
        model = AnalyticalModel(
            AnalysisParams(code=CodeParams(16, 12))
        )
        assert expected_degraded_read_time(config) == pytest.approx(
            model.expected_degraded_read_time()
        )

    def test_scales_with_k_and_size(self):
        small = SimulationConfig(code=CodeParams(8, 6))
        large = SimulationConfig(code=CodeParams(20, 15))
        assert expected_degraded_read_time(large) > expected_degraded_read_time(small)


class TestJobTruncation:
    def test_job_smaller_than_file(self):
        """A job over fewer blocks than stored sees a truncated view."""
        from repro.mapreduce.simulation import run_simulation

        config = SimulationConfig(
            num_nodes=6,
            num_racks=2,
            map_slots=2,
            code=CodeParams(4, 2),
            block_size=16 * MB,
            jobs=(JobConfig(num_blocks=10, num_reduce_tasks=0),),
            seed=1,
        )
        result = run_simulation(config)
        assert len(result.job(0).tasks) == 10
