"""Property-based tests of the discrete-event engine's ordering guarantees."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator, Timeout


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
def test_callbacks_fire_in_time_order(delays):
    sim = Simulator()
    fired: list[float] = []
    for delay in delays:
        sim.call_in(delay, lambda delay=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert sim.now == max(delays)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=20))
def test_processes_accumulate_timeouts_exactly(delays):
    sim = Simulator()
    finish: list[float] = []

    def worker():
        for delay in delays:
            yield Timeout(delay)
        finish.append(sim.now)

    sim.spawn(worker())
    sim.run()
    assert finish[0] == sum(delays)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=20.0),
            st.floats(min_value=0.0, max_value=20.0),
        ),
        min_size=1,
        max_size=15,
    )
)
def test_interleaved_processes_are_deterministic(plans):
    """Two identical runs produce identical event logs."""

    def execute():
        sim = Simulator()
        log: list[tuple[int, float]] = []

        def worker(index, first, second):
            yield Timeout(first)
            log.append((index, sim.now))
            yield Timeout(second)
            log.append((index, sim.now))

        for index, (first, second) in enumerate(plans):
            sim.spawn(worker(index, first, second))
        sim.run()
        return log

    assert execute() == execute()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=25))
def test_event_fanout_wakes_every_waiter(count):
    sim = Simulator()
    gate = sim.event()
    woken: list[int] = []

    def waiter(index):
        yield gate
        woken.append(index)

    for index in range(count):
        sim.spawn(waiter(index))
    sim.call_in(1.0, gate.succeed)
    sim.run()
    assert sorted(woken) == list(range(count))
    assert woken == list(range(count))  # FIFO wake order
