"""Benchmark: Table I, average task runtime by type in the single-job runs.

Paper shapes asserted: EDF cuts the degraded-map mean sharply (paper:
35-48%) while normal map means stay roughly equal; reduce means do not get
worse under EDF.
"""

from __future__ import annotations

from conftest import one_shot
from repro.experiments.table1_breakdown import format_table, run_table1
from repro.mapreduce.job import MapTaskCategory, TaskKind

NORMAL = (
    MapTaskCategory.NODE_LOCAL,
    MapTaskCategory.RACK_LOCAL,
    MapTaskCategory.REMOTE,
)


def test_table1(benchmark):
    results = one_shot(benchmark, run_table1)
    print("\n" + format_table(results))
    degraded_wins = 0
    for job_name, by_scheduler in results.items():
        lf = by_scheduler["LF"]
        edf = by_scheduler["EDF"]
        lf_degraded = lf.mean_runtime(TaskKind.MAP, MapTaskCategory.DEGRADED)
        edf_degraded = edf.mean_runtime(TaskKind.MAP, MapTaskCategory.DEGRADED)
        if edf_degraded < lf_degraded:
            degraded_wins += 1
        # Normal maps are unaffected by the scheduling policy (within noise).
        lf_normal = lf.mean_runtime(TaskKind.MAP, *NORMAL)
        edf_normal = edf.mean_runtime(TaskKind.MAP, *NORMAL)
        assert abs(lf_normal - edf_normal) <= 0.5 * max(lf_normal, edf_normal), (
            f"normal map means diverged for {job_name}"
        )
    assert degraded_wins >= 2, (
        f"EDF should cut degraded-task runtime for most jobs, won {degraded_wins}/3"
    )
