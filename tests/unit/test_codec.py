"""Unit tests for CodeParams and the ErasureCodec facade."""

from __future__ import annotations

import pytest

from repro.ec.codec import CodeParams, ErasureCodec


class TestCodeParams:
    def test_valid(self):
        params = CodeParams(16, 12)
        assert params.parity == 4
        assert str(params) == "(16,12)"

    def test_storage_overhead(self):
        assert CodeParams(4, 3).storage_overhead == pytest.approx(1 / 3)
        assert CodeParams(20, 15).storage_overhead == pytest.approx(1 / 3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            CodeParams(2, 3)
        with pytest.raises(ValueError):
            CodeParams(4, 0)
        with pytest.raises(ValueError):
            CodeParams(300, 200)

    def test_frozen(self):
        params = CodeParams(4, 2)
        with pytest.raises(AttributeError):
            params.n = 5  # type: ignore[misc]


class TestEncodeStripe:
    def test_full_stripe_width(self):
        codec = ErasureCodec(CodeParams(4, 2))
        stripe = codec.encode_stripe([b"aaaa", b"bbbb"])
        assert len(stripe) == 4
        assert stripe[0] == b"aaaa"
        assert stripe[1] == b"bbbb"

    def test_short_stripe_placeholders(self):
        codec = ErasureCodec(CodeParams(4, 2))
        stripe = codec.encode_stripe([b"solo"])
        assert len(stripe) == 4
        assert stripe[0] == b"solo"
        assert stripe[1] == b""  # placeholder for the padded native

    def test_unequal_lengths_allowed(self):
        codec = ErasureCodec(CodeParams(4, 2))
        stripe = codec.encode_stripe([b"longer-block", b"short"])
        assert stripe[1] == b"short"
        assert len(stripe[2]) == len(b"longer-block")  # parity at coding length

    def test_too_many_blocks(self):
        codec = ErasureCodec(CodeParams(4, 2))
        with pytest.raises(ValueError):
            codec.encode_stripe([b"a", b"b", b"c"])

    def test_empty_stripe_rejected(self):
        codec = ErasureCodec(CodeParams(4, 2))
        with pytest.raises(ValueError):
            codec.encode_stripe([])


class TestEncodeFile:
    def test_splits_into_stripes(self):
        codec = ErasureCodec(CodeParams(4, 2))
        data = bytes(range(100))
        stripes = codec.encode_file(data, block_size=16)
        # 100 bytes / 16 = 7 blocks -> ceil(7/2) = 4 stripes.
        assert len(stripes) == 4
        rebuilt = b"".join(stripes[i][j] for i in range(4) for j in range(2))
        assert rebuilt == data

    def test_bad_block_size(self):
        codec = ErasureCodec(CodeParams(4, 2))
        with pytest.raises(ValueError):
            codec.encode_file(b"data", block_size=0)

    def test_empty_data(self):
        codec = ErasureCodec(CodeParams(4, 2))
        stripes = codec.encode_file(b"", block_size=16)
        assert len(stripes) == 1


class TestDegradedRead:
    def test_degraded_read_native(self):
        codec = ErasureCodec(CodeParams(4, 2))
        stripe = codec.encode_stripe([b"AAAA", b"BBBB"])
        rebuilt = codec.degraded_read(0, {1: stripe[1], 2: stripe[2]})
        assert rebuilt == b"AAAA"

    def test_degraded_read_with_unpadded_survivor(self):
        codec = ErasureCodec(CodeParams(4, 2))
        stripe = codec.encode_stripe([b"0123456789", b"abc"])
        rebuilt = codec.degraded_read(1, {0: stripe[0], 3: stripe[3]}, lost_length=3)
        assert rebuilt == b"abc"

    def test_lost_length_truncates(self):
        codec = ErasureCodec(CodeParams(4, 2))
        stripe = codec.encode_stripe([b"0123456789", b"abc"])
        rebuilt = codec.degraded_read(1, {2: stripe[2], 3: stripe[3]}, lost_length=3)
        assert rebuilt == b"abc"

    def test_lost_length_too_large(self):
        codec = ErasureCodec(CodeParams(4, 2))
        stripe = codec.encode_stripe([b"abcd", b"efgh"])
        with pytest.raises(ValueError):
            codec.degraded_read(0, {2: stripe[2], 3: stripe[3]}, lost_length=99)

    def test_decode_natives(self):
        codec = ErasureCodec(CodeParams(4, 2))
        stripe = codec.encode_stripe([b"natA", b"natB"])
        natives = codec.decode_natives({2: stripe[2], 3: stripe[3]})
        assert natives == [b"natA", b"natB"]
