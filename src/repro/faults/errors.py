"""Errors raised by the fault-tolerance subsystem."""

from __future__ import annotations

from typing import Any


class JobFailedError(RuntimeError):
    """A job was abandoned because a task exhausted its retry budget.

    The partial :class:`~repro.mapreduce.metrics.SimulationResult` (covering
    whatever did complete, including the failed jobs' metrics records) is
    attached as :attr:`result` so callers can inspect how far the run got.
    """

    def __init__(self, message: str, result: Any = None) -> None:
        super().__init__(message)
        self.result = result


class DataUnavailableError(JobFailedError):
    """A stripe dropped below ``k`` readable blocks, so its data is gone.

    Raised when more than ``n - k`` concurrent failures (or corruptions)
    leave a degraded task with nothing to decode from, and the trial was not
    asked to ``wait_for_repair``.  Subclasses :class:`JobFailedError` so the
    partial-result contract (and CLI exit code 1) is shared; ``stripe_id``
    names one affected stripe when known.
    """

    def __init__(
        self, message: str, result: Any = None, stripe_id: int | None = None
    ) -> None:
        super().__init__(message, result)
        self.stripe_id = stripe_id
