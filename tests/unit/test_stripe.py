"""Unit tests for stripe layout and block naming."""

from __future__ import annotations

import pytest

from repro.ec.stripe import BlockKind, StripeLayout, block_name


class TestBlockName:
    def test_native_name(self):
        assert block_name(0, 0, 2) == "B_{0,0}"
        assert block_name(3, 1, 2) == "B_{3,1}"

    def test_parity_name(self):
        assert block_name(0, 2, 2) == "P_{0,0}"
        assert block_name(5, 3, 2) == "P_{5,1}"

    def test_negative_position(self):
        with pytest.raises(ValueError):
            block_name(0, -1, 2)


class TestStripeLayout:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StripeLayout(n=2, k=3)

    def test_counts(self):
        layout = StripeLayout(n=4, k=2)
        assert layout.parity_per_stripe == 2
        assert layout.stripe_count(12) == 6
        assert layout.stripe_count(13) == 7
        assert layout.stripe_count(0) == 0
        assert layout.total_blocks(12) == 24

    def test_stripe_count_negative(self):
        layout = StripeLayout(n=4, k=2)
        with pytest.raises(ValueError):
            layout.stripe_count(-1)

    def test_locate_roundtrip(self):
        layout = StripeLayout(n=6, k=4)
        for native_index in range(20):
            stripe_id, position = layout.locate_native(native_index)
            assert layout.native_index(stripe_id, position) == native_index
            assert layout.kind(position) is BlockKind.NATIVE

    def test_locate_negative(self):
        layout = StripeLayout(n=4, k=2)
        with pytest.raises(ValueError):
            layout.locate_native(-1)

    def test_native_index_rejects_parity(self):
        layout = StripeLayout(n=4, k=2)
        with pytest.raises(ValueError):
            layout.native_index(0, 3)

    def test_kind_bounds(self):
        layout = StripeLayout(n=4, k=2)
        assert layout.kind(1) is BlockKind.NATIVE
        assert layout.kind(2) is BlockKind.PARITY
        with pytest.raises(ValueError):
            layout.kind(4)

    def test_positions_and_names(self):
        layout = StripeLayout(n=4, k=2)
        names = [layout.name(1, position) for position in layout.positions()]
        assert names == ["B_{1,0}", "B_{1,1}", "P_{1,0}", "P_{1,1}"]
