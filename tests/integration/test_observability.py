"""Instrumentation must observe without perturbing.

The contract of :mod:`repro.obs`: attaching an
:class:`~repro.obs.ObservabilityCollector` to a trial draws no random
numbers and schedules nothing on the event heap, so the serialized
:class:`SimulationResult` is byte-identical with instrumentation on or
off -- while the collector still captures the full event stream.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.faults.schedule import FailEvent, FailureSchedule
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.simulation import run_simulation
from repro.mapreduce.trace import to_json
from repro.obs import ObservabilityCollector, chrome_trace, events_jsonl


def _edf_midrun_failure_config(seed: int = 7) -> SimulationConfig:
    """EDF trial where a node crashes mid-run and is detected by expiry."""
    return SimulationConfig(
        scheduler="EDF",
        seed=seed,
        # Several map waves (400 blocks over 160 slots), so the node killed
        # at t=5 both holds running attempts (-> kill/requeue events) and
        # leaves pending blocks behind (-> degraded tasks).
        jobs=(JobConfig(num_blocks=400, num_reduce_tasks=8),),
        failure_schedule=FailureSchedule(events=(FailEvent(at=5.0, node=3),)),
        heartbeat_expiry=10.0,
    )


@pytest.fixture(scope="module")
def observed_trial():
    config = _edf_midrun_failure_config()
    baseline = run_simulation(config)
    collector = ObservabilityCollector()
    instrumented = run_simulation(config, observer=collector)
    return baseline, instrumented, collector


class TestBitIdentical:
    def test_serialized_results_are_byte_identical(self, observed_trial):
        baseline, instrumented, _ = observed_trial
        assert to_json(baseline) == to_json(instrumented)

    def test_other_schedulers_and_seeds(self):
        for scheduler in ("LF", "BDF"):
            config = dataclasses.replace(
                _edf_midrun_failure_config(seed=11), scheduler=scheduler
            )
            baseline = run_simulation(config)
            instrumented = run_simulation(config, observer=ObservabilityCollector())
            assert to_json(baseline) == to_json(instrumented)


class TestEventStream:
    def test_expected_kinds_present(self, observed_trial):
        _, _, collector = observed_trial
        kinds = collector.bus.counts
        for kind in (
            "job.submit", "job.finish", "heartbeat", "sched.decision",
            "task.launch", "task.finish", "task.kill", "task.requeue",
            "degraded.start", "degraded.end", "failure.detect",
            "flow.start", "flow.end",
        ):
            assert kinds.get(kind, 0) > 0, f"no {kind} events recorded"

    def test_failure_detection_event_matches_result(self, observed_trial):
        _, instrumented, collector = observed_trial
        detections = [
            event for event in collector.events if event.kind == "failure.detect"
        ]
        assert len(detections) == len(instrumented.faults.detections)
        assert detections[0].fields["node"] == 3
        assert detections[0].fields["latency"] > 0

    def test_degraded_events_pair_up(self, observed_trial):
        _, instrumented, collector = observed_trial
        starts = collector.bus.counts["degraded.start"]
        ends = collector.bus.counts["degraded.end"]
        assert starts == ends
        assert starts >= instrumented.job(0).degraded_task_count

    def test_events_jsonl_round_trips(self, observed_trial):
        _, _, collector = observed_trial
        lines = events_jsonl(collector.events).strip().split("\n")
        assert len(lines) == collector.bus.emitted
        for line in lines[:50]:
            record = json.loads(line)
            assert "t" in record and "kind" in record


class TestDecisionTrace:
    def test_every_assignment_traced_with_pacing_state(self, observed_trial):
        _, _, collector = observed_trial
        assigns = [
            decision for decision in collector.decisions
            if decision.fields["action"] == "assign"
        ]
        assert assigns
        for decision in assigns:
            assert decision.fields["scheduler"] == "EDF"
            for key in ("m", "M", "m_d", "M_d", "reason", "node", "job_id"):
                assert key in decision.fields

    def test_degraded_assignments_record_guard_outcomes(self, observed_trial):
        _, _, collector = observed_trial
        degraded = [
            decision for decision in collector.decisions
            if decision.fields.get("reason") == "degraded-first"
        ]
        assert degraded
        for decision in degraded:
            assert decision.fields["slave_ok"] is True
            assert decision.fields["rack_ok"] is True
            assert decision.fields["rejected_by"] is None


class TestChromeTrace:
    def test_trace_structure(self, observed_trial):
        _, instrumented, _ = observed_trial
        trace = chrome_trace(instrumented)
        events = trace["traceEvents"]
        durations = [event for event in events if event["ph"] == "X"]
        assert durations
        for event in durations[:50]:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
        # Strict JSON: Perfetto rejects NaN tokens.
        text = json.dumps(trace, allow_nan=False)
        assert "NaN" not in text
