"""Stochastic failure models: generators of long-horizon churn.

:class:`~repro.faults.schedule.FailureSchedule` is plain data -- a scripted
timeline.  This module is where such timelines come *from* when the goal is
reliability engineering rather than figure replay: each model draws node
lifetimes, repair times, correlated outage episodes, or latent sector errors
from **named** :class:`~repro.sim.rng.RngStreams` substreams and emits an
ordinary schedule.  Because every draw is tied to a labeled stream (never to
draw order), generation is deterministic for a ``(model, seed)`` pair and
resumable: regenerating the same model twice yields byte-identical event
streams, which :func:`repro.check.check_generator_determinism` asserts.

The family:

* :class:`ExponentialLifetimes` -- the classical Markovian availability
  model: per-node i.i.d. exponential time-to-failure and time-to-repair,
  the assumption behind textbook MTTDL formulas.
* :class:`WeibullLifetimes` -- heavy/light-tailed lifetimes (disk-failure
  studies consistently reject the exponential; Weibull shape < 1 captures
  infant mortality, > 1 wear-out).  Parameterised by *mean* lifetime plus
  shape so it stays comparable with the exponential model.
* :class:`CorrelatedBursts` -- GFS-style availability episodes: outage
  *events* arrive as a Poisson process and each takes down a batch of
  nodes (often rack-confined) within a short window, the pattern Ford et
  al. observed to dominate real data-loss risk.
* :class:`LatentSectorErrors` -- silent per-block corruption surfacing as
  :class:`~repro.faults.schedule.CorruptEvent`; discovered lazily by
  readers or proactively by the scrubber.
* :class:`TraceReplay` -- replays an external failure log (optionally
  time-scaled), so real-cluster traces can drive the simulator.
* :class:`CompositeModel` -- overlays models over *disjoint* concerns
  (e.g. lifetimes + sector errors); the merged stream is checked for
  per-node fail/recover alternation so conflicting overlays fail loudly.

All models serialise through ``to_dict()`` / :func:`model_from_dict` with a
``kind`` tag, mirroring the schedule trace format.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import ClassVar

from repro.cluster.topology import ClusterTopology
from repro.faults.schedule import (
    CorruptEvent,
    FailEvent,
    FailureSchedule,
    FaultEvent,
    RecoverEvent,
)
from repro.sim.rng import RngStreams

#: Time-unit constants for readable model configuration.
HOUR = 3600.0
DAY = 24.0 * HOUR
YEAR = 365.0 * DAY

#: ``kind`` tag -> model class, for dict/JSON round-trips.
MODEL_KINDS: dict[str, type["FailureModel"]] = {}


def _register(cls: type["FailureModel"]) -> type["FailureModel"]:
    MODEL_KINDS[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class FailureModel:
    """Base class: a deterministic ``(topology, rng, horizon) -> schedule`` map."""

    kind: ClassVar[str] = ""

    def generate(
        self, topology: ClusterTopology, rng: RngStreams, horizon: float
    ) -> FailureSchedule:
        """Emit every event with ``at < horizon`` (plus matching recoveries).

        Recoveries of failures that happen inside the horizon are kept even
        when they land beyond it, so per-node fail/recover alternation is
        preserved and :func:`slice_window` sees a consistent tail state.
        """
        raise NotImplementedError

    def to_dict(self) -> dict:
        """The ``kind``-tagged dict this model round-trips through."""
        return {"kind": self.kind, **asdict(self)}

    @classmethod
    def _from_fields(cls, fields: dict) -> "FailureModel":
        """Default reconstruction; models with nested payloads override it."""
        return cls(**fields)

    def _streams(self, rng: RngStreams) -> RngStreams:
        """The model's own substream namespace under the trial RNG."""
        return rng.spawn(f"model:{self.kind}")


def model_from_dict(payload: dict) -> FailureModel:
    """Rebuild a model from its ``to_dict()`` form (``kind`` selects the class)."""
    fields = dict(payload)
    kind = fields.pop("kind", None)
    if kind not in MODEL_KINDS:
        raise ValueError(
            f"model kind must be one of {sorted(MODEL_KINDS)}, got {kind!r}"
        )
    return MODEL_KINDS[kind]._from_fields(fields)


def _alternating_lifetimes(
    node_stream, node_id: int, horizon: float, draw_up, draw_down
) -> list[FaultEvent]:
    """One node's renewal process: up ``draw_up()``, down ``draw_down()``, repeat."""
    events: list[FaultEvent] = []
    at = draw_up(node_stream)
    while at < horizon:
        events.append(FailEvent(at=at, node=node_id))
        recover_at = at + max(draw_down(node_stream), 1e-9)
        events.append(RecoverEvent(at=recover_at, node=node_id))
        at = recover_at + draw_up(node_stream)
    return events


@_register
@dataclass(frozen=True)
class ExponentialLifetimes(FailureModel):
    """I.i.d. exponential node lifetimes and repair times (the Markov model)."""

    kind: ClassVar[str] = "exponential"

    mttf: float = 30.0 * DAY
    mttr: float = 2.0 * HOUR

    def __post_init__(self) -> None:
        if self.mttf <= 0 or self.mttr <= 0:
            raise ValueError(f"mttf and mttr must be positive, got {self}")

    def generate(
        self, topology: ClusterTopology, rng: RngStreams, horizon: float
    ) -> FailureSchedule:
        streams = self._streams(rng)
        events: list[FaultEvent] = []
        for node_id in sorted(topology.node_ids()):
            node_stream = streams.stream(f"node:{node_id}")
            events.extend(
                _alternating_lifetimes(
                    node_stream,
                    node_id,
                    horizon,
                    lambda s: s.expovariate(1.0 / self.mttf),
                    lambda s: s.expovariate(1.0 / self.mttr),
                )
            )
        return FailureSchedule(tuple(events))


@_register
@dataclass(frozen=True)
class WeibullLifetimes(FailureModel):
    """Weibull node lifetimes (shape < 1: infant mortality; > 1: wear-out).

    ``mttf`` / ``mttr`` are *means*; the Weibull scale is derived as
    ``mean / gamma(1 + 1/shape)`` so the model is directly comparable with
    :class:`ExponentialLifetimes` (shape 1 *is* the exponential).
    """

    kind: ClassVar[str] = "weibull"

    mttf: float = 30.0 * DAY
    shape: float = 0.7
    mttr: float = 2.0 * HOUR
    repair_shape: float = 1.0

    def __post_init__(self) -> None:
        if self.mttf <= 0 or self.mttr <= 0:
            raise ValueError(f"mttf and mttr must be positive, got {self}")
        if self.shape <= 0 or self.repair_shape <= 0:
            raise ValueError(f"Weibull shapes must be positive, got {self}")

    def generate(
        self, topology: ClusterTopology, rng: RngStreams, horizon: float
    ) -> FailureSchedule:
        life_scale = self.mttf / math.gamma(1.0 + 1.0 / self.shape)
        repair_scale = self.mttr / math.gamma(1.0 + 1.0 / self.repair_shape)
        streams = self._streams(rng)
        events: list[FaultEvent] = []
        for node_id in sorted(topology.node_ids()):
            node_stream = streams.stream(f"node:{node_id}")
            events.extend(
                _alternating_lifetimes(
                    node_stream,
                    node_id,
                    horizon,
                    lambda s: s.weibullvariate(life_scale, self.shape),
                    lambda s: s.weibullvariate(repair_scale, self.repair_shape),
                )
            )
        return FailureSchedule(tuple(events))


@_register
@dataclass(frozen=True)
class CorrelatedBursts(FailureModel):
    """GFS-style correlated availability episodes.

    Outage *episodes* arrive as a Poisson process with mean spacing
    ``mtbe``.  Each episode takes down a geometric-sized batch of currently
    up nodes (mean ``burst_size_mean``) within ``spread`` seconds; with
    probability ``rack_bias`` the victims are confined to one rack (the
    shared switch / PDU / rolling-reboot case), otherwise they are spread
    cluster-wide.  Victims recover independently after exponential
    ``mttr``.  Nodes already down (or already doomed by an overlapping
    episode) are never double-failed, so per-node alternation holds by
    construction.
    """

    kind: ClassVar[str] = "bursts"

    mtbe: float = 7.0 * DAY
    burst_size_mean: float = 3.0
    rack_bias: float = 0.7
    mttr: float = 4.0 * HOUR
    spread: float = 60.0

    def __post_init__(self) -> None:
        if self.mtbe <= 0 or self.mttr <= 0 or self.spread <= 0:
            raise ValueError(f"mtbe, mttr, and spread must be positive, got {self}")
        if self.burst_size_mean < 1.0:
            raise ValueError(
                f"burst_size_mean must be at least 1, got {self.burst_size_mean}"
            )
        if not 0.0 <= self.rack_bias <= 1.0:
            raise ValueError(f"rack_bias must be in [0, 1], got {self.rack_bias}")

    def generate(
        self, topology: ClusterTopology, rng: RngStreams, horizon: float
    ) -> FailureSchedule:
        streams = self._streams(rng)
        episode_stream = streams.stream("episodes")
        rack_ids = sorted(rack.rack_id for rack in topology.racks)
        all_nodes = sorted(topology.node_ids())
        # Probability an episode claims one more victim (geometric, mean
        # burst_size_mean); zero when every burst is a single node.
        p_more = 1.0 - 1.0 / self.burst_size_mean
        events: list[FaultEvent] = []
        down_until: dict[int, float] = {}
        at = episode_stream.expovariate(1.0 / self.mtbe)
        index = 0
        while at < horizon:
            episode = streams.stream(f"episode:{index}")
            if episode.random() < self.rack_bias:
                rack = rack_ids[episode.randrange(len(rack_ids))]
                pool = sorted(topology.nodes_in_rack(rack))
            else:
                pool = all_nodes
            candidates = [n for n in pool if down_until.get(n, 0.0) <= at]
            size = 1
            while size < len(candidates) and episode.random() < p_more:
                size += 1
            for victim in episode.sample(candidates, min(size, len(candidates))):
                failed_at = at + episode.uniform(0.0, self.spread)
                recover_at = failed_at + max(
                    episode.expovariate(1.0 / self.mttr), 1e-9
                )
                events.append(FailEvent(at=failed_at, node=victim))
                events.append(RecoverEvent(at=recover_at, node=victim))
                down_until[victim] = recover_at
            at += episode_stream.expovariate(1.0 / self.mtbe)
            index += 1
        return FailureSchedule(tuple(events))


@_register
@dataclass(frozen=True)
class LatentSectorErrors(FailureModel):
    """Silent per-block corruption arriving as a Poisson process.

    Each stored block independently goes checksum-bad with mean time
    ``block_mtbc``; the aggregate is a Poisson stream of rate
    ``num_blocks / block_mtbc`` whose arrivals pick a uniform
    ``(stripe, position)``.  The file shape (``num_stripes`` stripes of
    ``stripe_width`` blocks) is part of the model so its serialised form is
    self-contained.
    """

    kind: ClassVar[str] = "lse"

    num_stripes: int = 1
    stripe_width: int = 1
    block_mtbc: float = 2.0 * YEAR

    def __post_init__(self) -> None:
        if self.num_stripes <= 0 or self.stripe_width <= 0:
            raise ValueError(f"file shape must be positive, got {self}")
        if self.block_mtbc <= 0:
            raise ValueError(f"block_mtbc must be positive, got {self.block_mtbc}")

    def generate(
        self, topology: ClusterTopology, rng: RngStreams, horizon: float
    ) -> FailureSchedule:
        del topology  # corruption targets blocks, not nodes
        streams = self._streams(rng)
        arrivals = streams.stream("arrivals")
        mean_gap = self.block_mtbc / (self.num_stripes * self.stripe_width)
        events: list[FaultEvent] = []
        at = arrivals.expovariate(1.0 / mean_gap)
        while at < horizon:
            events.append(
                CorruptEvent(
                    at=at,
                    stripe=arrivals.randrange(self.num_stripes),
                    position=arrivals.randrange(self.stripe_width),
                )
            )
            at += arrivals.expovariate(1.0 / mean_gap)
        return FailureSchedule(tuple(events))


@_register
@dataclass(frozen=True)
class TraceReplay(FailureModel):
    """Replay an external failure log as a schedule, optionally time-scaled.

    ``generate`` draws no randomness: the trace *is* the realisation.  Fail
    (and slowdown/corrupt) events at or beyond the horizon are dropped;
    recoveries are kept whenever their node failed inside the horizon, so
    alternation survives truncation.
    """

    kind: ClassVar[str] = "trace"

    schedule: FailureSchedule = FailureSchedule()
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {self.time_scale}")

    @classmethod
    def from_log(cls, records: list[dict], time_scale: float = 1.0) -> "TraceReplay":
        """Build from ``{"node", "failed_at", "recovered_at"?}`` log records."""
        events: list[FaultEvent] = []
        for record in records:
            node = record["node"]
            failed_at = float(record["failed_at"])
            events.append(FailEvent(at=failed_at, node=node))
            recovered_at = record.get("recovered_at")
            if recovered_at is not None:
                events.append(RecoverEvent(at=float(recovered_at), node=node))
        return cls(schedule=FailureSchedule(tuple(events)), time_scale=time_scale)

    def generate(
        self, topology: ClusterTopology, rng: RngStreams, horizon: float
    ) -> FailureSchedule:
        del topology, rng
        failed_in_horizon: set[int] = set()
        events: list[FaultEvent] = []
        for event in self.schedule.events:
            at = event.at * self.time_scale
            if isinstance(event, RecoverEvent):
                if event.node in failed_in_horizon or at < horizon:
                    events.append(RecoverEvent(at=at, node=event.node))
                continue
            if at >= horizon:
                continue
            scaled = type(event)(**{**asdict(event), "at": at})
            events.append(scaled)
            if isinstance(event, FailEvent) and event.node is not None:
                failed_in_horizon.add(event.node)
        return FailureSchedule(tuple(events))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "schedule": self.schedule.to_dict(),
            "time_scale": self.time_scale,
        }

    @classmethod
    def _from_fields(cls, fields: dict) -> "TraceReplay":
        return cls(
            schedule=FailureSchedule.from_dict(fields["schedule"]),
            time_scale=fields.get("time_scale", 1.0),
        )


@_register
@dataclass(frozen=True)
class CompositeModel(FailureModel):
    """Overlay of models covering *disjoint* concerns (lifetimes + LSE + ...).

    Each part draws from its own ``part:{i}`` substream so identical model
    kinds do not alias.  The merged stream must keep per-node fail/recover
    alternation -- overlaying two node-lifetime models over the same nodes
    is a configuration error and raises via :func:`check_alternation`.
    """

    kind: ClassVar[str] = "composite"

    models: tuple[FailureModel, ...] = ()

    def generate(
        self, topology: ClusterTopology, rng: RngStreams, horizon: float
    ) -> FailureSchedule:
        streams = self._streams(rng)
        events: list[FaultEvent] = []
        for index, model in enumerate(self.models):
            part = model.generate(topology, streams.spawn(f"part:{index}"), horizon)
            events.extend(part.events)
        merged = FailureSchedule(tuple(events))
        check_alternation(merged, topology)
        return merged

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "models": [model.to_dict() for model in self.models],
        }

    @classmethod
    def _from_fields(cls, fields: dict) -> "CompositeModel":
        return cls(models=tuple(model_from_dict(m) for m in fields["models"]))


def check_alternation(schedule: FailureSchedule, topology: ClusterTopology) -> None:
    """Raise if any node fails while down or the schedule double-recovers it.

    Generators guarantee this by construction; the check exists for merged
    (composite) and trace-loaded schedules, where it is easy to violate.
    """
    down: set[int] = set()
    for index, event in enumerate(schedule.events):
        if isinstance(event, FailEvent):
            for node in schedule.fail_targets(event, topology):
                if node in down:
                    raise ValueError(
                        f"events[{index}] fails node {node} at t={event.at} "
                        "while it is already down (overlapping failure models?)"
                    )
                down.add(node)
        elif isinstance(event, RecoverEvent):
            down.discard(event.node)


def slice_window(
    schedule: FailureSchedule,
    topology: ClusterTopology,
    start: float,
    duration: float,
) -> FailureSchedule:
    """Extract ``[start, start + duration)`` as a standalone schedule.

    Nodes that are down when the window opens become ``t == 0`` fail events
    (the simulator's down-before-start convention); their recoveries -- and
    every event strictly inside the window -- are shifted by ``-start``.
    Recoveries landing past the window end are dropped (the node simply
    stays down for the whole window).
    """
    down_at_start: set[int] = set()
    for event in schedule.events:
        if event.at > start:
            break
        if isinstance(event, FailEvent):
            down_at_start.update(schedule.fail_targets(event, topology))
        elif isinstance(event, RecoverEvent):
            down_at_start.discard(event.node)
    events: list[FaultEvent] = [
        FailEvent(at=0.0, node=node) for node in sorted(down_at_start)
    ]
    carried = set(down_at_start)  # awaiting their first in-window recovery
    for event in schedule.events:
        if event.at <= start:
            continue
        offset = event.at - start
        if isinstance(event, RecoverEvent) and event.node in carried:
            carried.remove(event.node)
            if offset < duration:
                events.append(RecoverEvent(at=offset, node=event.node))
            continue
        if offset >= duration:
            continue
        events.append(type(event)(**{**asdict(event), "at": offset}))
    return FailureSchedule(tuple(events))
