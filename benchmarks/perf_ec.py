"""Fixed workloads for the erasure-coding performance suite.

Every workload is a same-process before/after comparison in the
``recompute_indexed_vs_reference`` idiom: the "before" side re-runs the
seed implementation (the retained ``*_reference`` oracles, including the
per-call sub-matrix inversion the seed decode performed), the "after" side
runs the batched packed-table kernels through the public coder API with
warm decode-plan caches.  Both sides run on identical payloads in the same
process, so runner speed cancels out and the reported speedups are
machine-independent.

Workloads (all at 1 MiB blocks by default, the testbed's block size):

* :func:`encode_workload` -- parity generation, RS(9,6) and RS(16,12).
* :func:`decode_workload` -- full decode after the maximum tolerable
  native loss (the degraded-read storm case).
* :func:`reconstruct_workload` -- repeated same-pattern single-block
  repair of a parity block, the seed's O(k^2 L) worst case (full decode
  plus re-encode) against the cached one-row plan.

``benchmarks/test_perf_ec.py`` runs them, writes ``BENCH_ec.json`` and
enforces the floors; ``python benchmarks/perf_ec.py`` prints one sample
per workload.
"""

from __future__ import annotations

import time

import numpy as np

from repro.ec import matrix as gfm
from repro.ec.reed_solomon import ReedSolomon

MIB = 1 << 20


def _blocks(count: int, length: int, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=length, dtype=np.uint8) for _ in range(count)]


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Minimum wall time of ``repeats`` runs (robust to scheduler jitter)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _mb_per_s(byte_count: int, seconds: float) -> float:
    return byte_count / MIB / seconds


def encode_workload(n: int, k: int, block_len: int = MIB, repeats: int = 5) -> dict:
    """Parity generation throughput: reference matvec vs batched coder."""
    coder = ReedSolomon(n, k)
    natives = _blocks(k, block_len, seed=n * 1000 + k)
    parity_rows = coder.generator_matrix[k:]
    coder.encode(natives)  # warm the compiled encoder plan + tables

    after_seconds, after_parity = _best_of(lambda: coder.encode(natives), repeats)
    before_seconds, before_parity = _best_of(
        lambda: [
            row.tobytes() for row in gfm.matvec_blocks_reference(parity_rows, natives)
        ],
        repeats,
    )

    assert after_parity == before_parity, "kernel and reference parity diverge"
    processed = k * block_len
    return {
        "code": f"RS({n},{k})",
        "block_len": block_len,
        "repeats": repeats,
        "before_seconds": before_seconds,
        "after_seconds": after_seconds,
        "before_mb_per_s": round(_mb_per_s(processed, before_seconds), 1),
        "after_mb_per_s": round(_mb_per_s(processed, after_seconds), 1),
        "speedup": round(before_seconds / after_seconds, 2),
    }


def decode_workload(n: int, k: int, block_len: int = MIB, repeats: int = 5) -> dict:
    """Max-native-loss decode: seed path (per-call reference inversion +
    scalar matvec) vs the warm plan-cached coder."""
    coder = ReedSolomon(n, k)
    natives = _blocks(k, block_len, seed=n * 2000 + k)
    stripe = [native.tobytes() for native in natives] + coder.encode(natives)
    lost = min(n - k, k)  # lose as many natives as the code tolerates
    available = {index: stripe[index] for index in range(lost, n)}
    indices = sorted(available)[:k]
    sub_matrix = coder.generator_matrix[indices, :]
    arrays = [np.frombuffer(available[index], dtype=np.uint8) for index in indices]
    coder.decode(available)  # warm the decode plan + tables

    after_seconds, after_natives = _best_of(lambda: coder.decode(available), repeats)

    def seed_decode():
        decode_matrix = gfm.invert_reference(sub_matrix)
        return [
            row.tobytes() for row in gfm.matvec_blocks_reference(decode_matrix, arrays)
        ]

    before_seconds, before_natives = _best_of(seed_decode, repeats)

    assert after_natives == before_natives, "kernel and reference decode diverge"
    processed = k * block_len
    return {
        "code": f"RS({n},{k})",
        "block_len": block_len,
        "lost_natives": lost,
        "repeats": repeats,
        "before_seconds": before_seconds,
        "after_seconds": after_seconds,
        "before_mb_per_s": round(_mb_per_s(processed, before_seconds), 1),
        "after_mb_per_s": round(_mb_per_s(processed, after_seconds), 1),
        "speedup": round(before_seconds / after_seconds, 2),
    }


def reconstruct_workload(n: int, k: int, block_len: int = MIB, repeats: int = 5) -> dict:
    """Repeated same-pattern repair of one parity block.

    The seed rebuilt a parity block by fully decoding the natives and then
    re-encoding every parity row -- ``(k + (n-k)) * k`` reference column
    operations per block, repeated for *every* stripe of a failed node.
    The after side is the cached single-row plan: one k-term matvec per
    stripe, with the inversion amortised across the pattern.
    """
    coder = ReedSolomon(n, k)
    natives = _blocks(k, block_len, seed=n * 3000 + k)
    parity = coder.encode(natives)
    stripe = [native.tobytes() for native in natives] + parity
    lost = n - 1  # a parity block: the seed's full decode + re-encode case
    available = {index: stripe[index] for index in range(n) if index != lost}
    indices = sorted(available)[:k]
    sub_matrix = coder.generator_matrix[indices, :]
    parity_rows = coder.generator_matrix[k:]
    arrays = [np.frombuffer(available[index], dtype=np.uint8) for index in indices]
    coder.reconstruct_block(lost, available)  # warm the row plan + tables

    after_seconds, after_block = _best_of(
        lambda: coder.reconstruct_block(lost, available), repeats
    )

    def seed_reconstruct():
        decode_matrix = gfm.invert_reference(sub_matrix)
        decoded = gfm.matvec_blocks_reference(decode_matrix, arrays)
        return gfm.matvec_blocks_reference(parity_rows, decoded)[lost - k].tobytes()

    before_seconds, before_block = _best_of(seed_reconstruct, repeats)

    assert after_block == before_block == stripe[lost], "reconstruction diverges"
    processed = k * block_len
    return {
        "code": f"RS({n},{k})",
        "block_len": block_len,
        "lost_position": lost,
        "repeats": repeats,
        "before_seconds": before_seconds,
        "after_seconds": after_seconds,
        "before_mb_per_s": round(_mb_per_s(processed, before_seconds), 1),
        "after_mb_per_s": round(_mb_per_s(processed, after_seconds), 1),
        "speedup": round(before_seconds / after_seconds, 2),
    }


def main() -> None:
    for name, fn in (
        ("encode_rs9_6", lambda: encode_workload(9, 6)),
        ("encode_rs16_12", lambda: encode_workload(16, 12)),
        ("decode_rs9_6", lambda: decode_workload(9, 6)),
        ("decode_rs16_12", lambda: decode_workload(16, 12)),
        ("reconstruct_rs9_6", lambda: reconstruct_workload(9, 6)),
        ("reconstruct_rs16_12", lambda: reconstruct_workload(16, 12)),
    ):
        print(name, fn())


if __name__ == "__main__":
    main()
