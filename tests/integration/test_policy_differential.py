"""Differential tests between policies, plus the STEAL decision-trace golden.

Three layers of cross-policy checks on pinned seeds:

1. **Paper ordering** -- on the paper's Figure-7 default scenario the
   makespans order ``EDF <= BDF <= LF``: each refinement of
   degraded-first scheduling pays for itself.
2. **Baseline sanity** -- the RANDOM baseline destroys map locality
   relative to LF, which is the whole reason locality-aware scheduling
   exists.  (If RANDOM ever matches LF here, the LF implementation has
   stopped preferring local tasks.)
3. **Golden decision trace** -- STEAL's full ``sched.decision`` stream on
   a small fixed-seed scenario matches the committed golden
   (``tests/golden/steal-decisions.json``), the same regression idiom as
   the trajectory goldens; ``tests/golden/regenerate.py`` rewrites it
   after an intentional semantic change.

Plus the tournament determinism contract: one spec run serial and
parallel emits byte-identical report JSON.
"""

from __future__ import annotations

import functools
import json
import os

import pytest

from repro.ec import CodeParams
from repro.experiments.campaign import CampaignPolicy
from repro.experiments.tournament import TournamentSpec, report_to_json, run_tournament
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.job import MapTaskCategory
from repro.mapreduce.metrics import TaskKind
from repro.mapreduce.simulation import run_simulation
from repro.obs.analyze import traced_decisions

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")

#: Pinned seeds for the differential assertions.  The orderings below are
#: stable properties of the fig-7 scenario, but any single seed is one
#: sample -- three keep the test honest without slowing the suite.
FIG7_SEEDS = (0, 1, 2)


@functools.lru_cache(maxsize=None)
def fig7_result(scheduler: str, seed: int):
    """One fig-7 default trial (the paper's cluster, single node failure)."""
    return run_simulation(SimulationConfig(scheduler=scheduler, seed=seed))


def makespan(scheduler: str, seed: int) -> float:
    return fig7_result(scheduler, seed).jobs[0].runtime


def node_local_maps(scheduler: str, seed: int) -> int:
    return sum(
        1
        for task in fig7_result(scheduler, seed).jobs[0].tasks
        if task.kind is TaskKind.MAP
        and task.category is MapTaskCategory.NODE_LOCAL
    )


@pytest.mark.parametrize("seed", FIG7_SEEDS)
def test_fig7_makespan_ordering_edf_bdf_lf(seed):
    edf, bdf, lf = (makespan(name, seed) for name in ("EDF", "BDF", "LF"))
    assert edf <= bdf <= lf, (
        f"seed {seed}: expected EDF <= BDF <= LF, got "
        f"EDF={edf:.1f}s BDF={bdf:.1f}s LF={lf:.1f}s"
    )


@pytest.mark.parametrize("seed", FIG7_SEEDS)
def test_random_baseline_destroys_locality(seed):
    random_local = node_local_maps("RANDOM", seed)
    lf_local = node_local_maps("LF", seed)
    assert random_local < lf_local, (
        f"seed {seed}: RANDOM matched LF on node-local maps "
        f"({random_local} vs {lf_local}) -- is LF still locality-aware?"
    )


# -- STEAL decision-trace golden ----------------------------------------------


def steal_trace_config() -> SimulationConfig:
    """The fixed-seed scenario behind ``tests/golden/steal-decisions.json``."""
    return SimulationConfig(
        scheduler="STEAL", seed=5, num_nodes=12, num_racks=3,
        code=CodeParams(6, 4),
        jobs=(JobConfig(num_blocks=48, num_reduce_tasks=4),),
    )


def capture_steal_trace() -> dict:
    """The golden payload: the full decision stream of one STEAL trial."""
    return {"decisions": traced_decisions(steal_trace_config())}


def test_steal_decision_trace_matches_golden():
    path = os.path.join(GOLDEN_DIR, "steal-decisions.json")
    assert os.path.exists(path), (
        f"golden file {path} missing -- run tests/golden/regenerate.py"
    )
    with open(path) as handle:
        golden = json.load(handle)
    actual = json.loads(json.dumps(capture_steal_trace(), allow_nan=False))
    assert len(actual["decisions"]) == len(golden["decisions"]), (
        f"STEAL made {len(actual['decisions'])} decisions, golden recorded "
        f"{len(golden['decisions'])} -- the decision stream moved"
    )
    assert actual["decisions"] == golden["decisions"]


# -- tournament determinism ---------------------------------------------------


def test_tournament_report_identical_serial_vs_parallel():
    base = SimulationConfig(
        num_nodes=12, num_racks=3, code=CodeParams(6, 4),
        jobs=(JobConfig(num_blocks=48),),
    )
    spec = TournamentSpec(
        scenarios=(("fig7-small", base),),
        policies=("LF", "EDF", "STEAL"),
        seeds=(0,),
    )
    serial, _ = run_tournament(spec, CampaignPolicy(workers=1, on_error="collect"))
    parallel, _ = run_tournament(spec, CampaignPolicy(workers=2, on_error="collect"))
    assert report_to_json(serial) == report_to_json(parallel)
