"""Benchmarks: Figure 7, simulated LF vs EDF over six parameter sweeps.

Assertions target the paper's *shapes*: EDF's median normalized runtime is
below LF's in every setting; the EDF-over-LF reduction grows with the
coding parameters; single-node failures benefit more than rack failures.

Sample counts follow ``REPRO_SEEDS`` (abbreviated by default; 30 = paper).
"""

from __future__ import annotations

from conftest import one_shot
from repro.experiments.fig7_simulation import (
    run_fig7a,
    run_fig7b,
    run_fig7c,
    run_fig7d,
    run_fig7e,
    run_fig7f,
)


def _assert_edf_wins(table, rows=None):
    print("\n" + table.format())
    for label, columns in table.rows.items():
        if rows is not None and label not in rows:
            continue
        assert columns["EDF"].median <= columns["LF"].median, (
            f"EDF should beat LF at {label}"
        )


def test_fig7a(benchmark):
    table = one_shot(benchmark, run_fig7a)
    _assert_edf_wins(table)
    # Reduction grows with (n, k): compare the extremes.
    small = table.reduction("(8,6)", "LF", "EDF")
    large = table.reduction("(20,15)", "LF", "EDF")
    assert large > small, "larger codes should benefit more (paper: 17% -> 33%)"


def test_fig7b(benchmark):
    table = one_shot(benchmark, run_fig7b)
    _assert_edf_wins(table)
    for label in table.rows:
        assert table.reduction(label, "LF", "EDF") > 0.15  # paper: ~35-40%


def test_fig7c(benchmark):
    table = one_shot(benchmark, run_fig7c)
    _assert_edf_wins(table)
    # Both schedulers slow down as bandwidth shrinks.
    lf_medians = [columns["LF"].median for columns in table.rows.values()]
    assert lf_medians == sorted(lf_medians, reverse=True)


def test_fig7d(benchmark):
    table = one_shot(benchmark, run_fig7d)
    _assert_edf_wins(table, rows=("single-node", "double-node"))
    single = table.reduction("single-node", "LF", "EDF")
    rack = table.reduction("rack", "LF", "EDF")
    assert single > rack, "rack failures leave less room to win (paper: 33% vs 6%)"
    # Severity ordering: more failures, higher normalized runtime.
    lf = {label: columns["LF"].median for label, columns in table.rows.items()}
    assert lf["single-node"] < lf["double-node"] < lf["rack"]


def test_fig7e(benchmark):
    table = one_shot(benchmark, run_fig7e)
    _assert_edf_wins(table)
    # EDF's normalized runtime creeps up with shuffle volume (its degraded
    # reads now compete with live shuffle traffic).
    edf = [columns["EDF"].median for columns in table.rows.values()]
    assert edf[-1] >= edf[0]


def test_fig7f(benchmark):
    table = one_shot(benchmark, run_fig7f)
    print("\n" + table.format())
    wins = sum(
        1
        for columns in table.rows.values()
        if columns["EDF"].median <= columns["LF"].median
    )
    assert wins >= 8, f"EDF should win for nearly every job, won {wins}/10"
