"""Declarative failure schedules: a reproducible timeline of cluster churn.

A :class:`FailureSchedule` is an ordered list of timed events -- nodes (or
whole racks) failing, failed nodes recovering, nodes slowing down -- that a
driver process replays against the running simulation.  Because the schedule
is plain data and the simulator is deterministic, trials with mid-run churn
are exactly reproducible from a seed.

Schedules are built three ways:

* programmatically::

      FailureSchedule((FailEvent(at=30.0, node=5), RecoverEvent(at=120.0, node=5)))

* from a small dict / JSON trace (``kind`` selects the event type)::

      {"events": [{"kind": "fail", "at": 30.0, "node": 5},
                  {"kind": "recover", "at": 120.0, "node": 5},
                  {"kind": "slowdown", "at": 60.0, "node": 7,
                   "factor": 4.0, "duration": 50.0},
                  {"kind": "corrupt", "at": 15.0, "stripe": 2, "position": 0}]}

* from the paper's at-start patterns via
  :meth:`repro.cluster.failures.FailureInjector.to_schedule`, which makes
  the existing experiments the degenerate ``at=0`` case.

Events at ``at == 0`` model nodes that are *down before the trial starts*
(the paper's setting): the master knows about them from the outset, exactly
as the pre-existing ``failed_nodes`` plumbing behaved.  Events at ``at > 0``
are genuine crashes: the node's processes die silently and the master only
learns of the death once heartbeats stop arriving (see
:mod:`repro.faults.driver`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Union

from repro.cluster.topology import ClusterTopology


@dataclass(frozen=True)
class FailEvent:
    """A node (or a whole rack) crashes at ``at``.

    Exactly one of ``node`` / ``rack`` must be given; a rack event expands
    to simultaneous crashes of every node in the rack.
    """

    at: float
    node: int | None = None
    rack: int | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"negative event time {self.at}")
        if (self.node is None) == (self.rack is None):
            raise ValueError("a FailEvent needs exactly one of node= or rack=")


@dataclass(frozen=True)
class RecoverEvent:
    """A previously failed node rejoins the cluster at ``at``."""

    at: float
    node: int

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"negative event time {self.at}")


@dataclass(frozen=True)
class SlowdownEvent:
    """A node runs ``factor`` times slower between ``at`` and ``at + duration``.

    Only task processing speed is affected (slow CPU / contended disk); the
    node keeps heartbeating, so the master never declares it dead -- this is
    the straggler scenario speculative execution exists for.
    """

    at: float
    node: int
    factor: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"negative event time {self.at}")
        if self.factor <= 1.0:
            raise ValueError(f"slowdown factor must exceed 1, got {self.factor}")
        if self.duration <= 0:
            raise ValueError(f"slowdown duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class CorruptEvent:
    """One stored block goes checksum-bad at ``at`` while its node stays up.

    ``stripe`` / ``position`` name the block (position ``>= k`` is a parity
    block).  The master is *not* told: corruption is discovered lazily when
    a reader checksums the block, or proactively by the scrubber process if
    one is configured (see :mod:`repro.storage.repair_driver`).
    """

    at: float
    stripe: int
    position: int

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"negative event time {self.at}")
        if self.stripe < 0:
            raise ValueError(f"negative stripe id {self.stripe}")
        if self.position < 0:
            raise ValueError(f"negative block position {self.position}")


FaultEvent = Union[FailEvent, RecoverEvent, SlowdownEvent, CorruptEvent]

#: ``kind`` tag used in dict/JSON traces, per event class.
_KIND_OF = {
    FailEvent: "fail",
    RecoverEvent: "recover",
    SlowdownEvent: "slowdown",
    CorruptEvent: "corrupt",
}
_CLASS_OF = {kind: cls for cls, kind in _KIND_OF.items()}


@dataclass(frozen=True)
class FailureSchedule:
    """An immutable, time-ordered list of fault events for one trial."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda event: event.at))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: dict) -> "FailureSchedule":
        """Build a schedule from a ``{"events": [...]}`` trace dict."""
        entries = payload.get("events", [])
        events = []
        for entry in entries:
            fields = dict(entry)
            kind = fields.pop("kind", None)
            if kind not in _CLASS_OF:
                raise ValueError(
                    f"event kind must be one of {sorted(_CLASS_OF)}, got {kind!r}"
                )
            events.append(_CLASS_OF[kind](**fields))
        return cls(tuple(events))

    @classmethod
    def from_json(cls, text: str) -> "FailureSchedule":
        """Parse a schedule from a JSON trace string."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FailureSchedule":
        """Load a schedule from a JSON trace file."""
        with open(path) as handle:
            return cls.from_json(handle.read())

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict:
        """The dict trace this schedule round-trips through."""
        events = []
        for event in self.events:
            entry = {"kind": _KIND_OF[type(event)]}
            entry.update(
                {key: value for key, value in asdict(event).items() if value is not None}
            )
            events.append(entry)
        return {"events": events}

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to a JSON trace string."""
        return json.dumps(self.to_dict(), indent=indent)

    # -- queries the simulation driver makes ----------------------------------

    def validate(
        self,
        topology: ClusterTopology,
        num_stripes: int | None = None,
        stripe_width: int | None = None,
    ) -> None:
        """Raise if any event targets a node, rack, or block that never exists.

        The topology is static for the lifetime of a trial, so a node id
        outside it can never become valid ("recovers later" is not a thing
        the cluster model allows) -- every event is checked, not just the
        initial-failure set.  Error messages carry the offending event's
        index into :attr:`events` so a bad entry in a long generated or
        trace-loaded schedule can be found directly.

        ``num_stripes`` / ``stripe_width`` optionally bound
        :class:`CorruptEvent` block coordinates; without them corrupt events
        are deferred to install time, when the BlockMap shape is known.
        """
        node_ids = set(topology.node_ids())
        rack_ids = {rack.rack_id for rack in topology.racks}
        for index, event in enumerate(self.events):
            where = f"events[{index}] ({_KIND_OF[type(event)]} at t={event.at})"
            if isinstance(event, CorruptEvent):
                if num_stripes is not None and event.stripe >= num_stripes:
                    raise ValueError(
                        f"{where} references unknown stripe {event.stripe} "
                        f"(file has {num_stripes} stripes)"
                    )
                if stripe_width is not None and event.position >= stripe_width:
                    raise ValueError(
                        f"{where} references unknown block position "
                        f"{event.position} (stripes are n={stripe_width} wide)"
                    )
            elif isinstance(event, FailEvent) and event.rack is not None:
                if event.rack not in rack_ids:
                    raise ValueError(f"{where} references unknown rack {event.rack}")
            elif event.node not in node_ids:
                raise ValueError(f"{where} references unknown node {event.node}")

    def fail_targets(self, event: FailEvent, topology: ClusterTopology) -> list[int]:
        """The concrete node ids one fail event takes down."""
        if event.node is not None:
            return [event.node]
        return sorted(topology.nodes_in_rack(event.rack))

    def initial_failures(self, topology: ClusterTopology) -> frozenset[int]:
        """Nodes dead before the trial starts (``FailEvent`` at ``t == 0``)."""
        dead: set[int] = set()
        for event in self.events:
            if isinstance(event, FailEvent) and event.at == 0.0:
                dead.update(self.fail_targets(event, topology))
        return frozenset(dead)

    def deferred_events(self) -> list[FaultEvent]:
        """Events the driver must replay mid-run (everything but t=0 fails)."""
        return [
            event
            for event in self.events
            if not (isinstance(event, FailEvent) and event.at == 0.0)
        ]
