"""Unit tests for failure injection."""

from __future__ import annotations

import pytest

from repro.cluster.failures import FailureInjector, FailurePattern
from repro.sim.rng import RngStreams


class TestChooseFailedNodes:
    def test_none(self, small_topology, rng):
        injector = FailureInjector(FailurePattern.NONE)
        assert injector.choose_failed_nodes(small_topology, rng) == frozenset()

    def test_single_node(self, small_topology, rng):
        injector = FailureInjector(FailurePattern.SINGLE_NODE)
        failed = injector.choose_failed_nodes(small_topology, rng)
        assert len(failed) == 1
        assert failed <= set(small_topology.node_ids())

    def test_double_node(self, small_topology, rng):
        injector = FailureInjector(FailurePattern.DOUBLE_NODE)
        failed = injector.choose_failed_nodes(small_topology, rng)
        assert len(failed) == 2

    def test_rack(self, small_topology, rng):
        injector = FailureInjector(FailurePattern.RACK)
        failed = injector.choose_failed_nodes(small_topology, rng)
        racks = {small_topology.rack_of(node) for node in failed}
        assert len(racks) == 1
        assert failed == set(small_topology.nodes_in_rack(racks.pop()))

    def test_eligible_restricts(self, small_topology, rng):
        injector = FailureInjector(FailurePattern.SINGLE_NODE)
        failed = injector.choose_failed_nodes(small_topology, rng, eligible=[5])
        assert failed == frozenset({5})

    def test_eligible_empty_raises(self, small_topology, rng):
        injector = FailureInjector(FailurePattern.SINGLE_NODE)
        with pytest.raises(ValueError):
            injector.choose_failed_nodes(small_topology, rng, eligible=[])

    def test_double_needs_two(self, small_topology, rng):
        injector = FailureInjector(FailurePattern.DOUBLE_NODE)
        with pytest.raises(ValueError):
            injector.choose_failed_nodes(small_topology, rng, eligible=[1])

    def test_deterministic_per_seed(self, small_topology):
        injector = FailureInjector(FailurePattern.SINGLE_NODE)
        first = injector.choose_failed_nodes(small_topology, RngStreams(9))
        second = injector.choose_failed_nodes(small_topology, RngStreams(9))
        assert first == second


class TestMaxLost:
    def test_values(self, small_topology):
        assert FailureInjector(FailurePattern.NONE).max_lost_per_stripe(small_topology) == 0
        assert (
            FailureInjector(FailurePattern.SINGLE_NODE).max_lost_per_stripe(small_topology) == 1
        )
        assert (
            FailureInjector(FailurePattern.DOUBLE_NODE).max_lost_per_stripe(small_topology) == 2
        )
        assert FailureInjector(FailurePattern.RACK).max_lost_per_stripe(small_topology) == 3
