"""The heartbeat-driven scheduler interface.

Every scheduling decision in the paper happens inside the master's response
to a slave heartbeat: the slave reports how many map and reduce slots it has
free, and the scheduler hands back assignments.  The three algorithms differ
only in how they fill *map* slots; reduce slots are filled identically
(FIFO over jobs, subject to the slow-start rule), so that logic lives in the
base class.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology
from repro.core.tasks import JobTaskState
from repro.mapreduce.job import (
    MapAssignment,
    MapTaskCategory,
    ReduceAssignment,
)
from repro.storage.block import BlockId


@dataclass
class SchedulerContext:
    """Cluster-level facts schedulers need beyond per-job state.

    Parameters
    ----------
    topology:
        The cluster layout.
    live_nodes:
        Node ids that are up (failed nodes never heartbeat).
    expected_degraded_read_time:
        The analysis estimate ``(R-1) k S / (R W)`` used as the
        rack-awareness threshold in EDF.
    map_time_mean:
        Mean map processing time, used to estimate local backlogs.
    reduce_slowstart:
        Fraction of maps that must complete before reducers launch.
    """

    topology: ClusterTopology
    live_nodes: frozenset[int]
    expected_degraded_read_time: float
    map_time_mean: float
    reduce_slowstart: float


class Scheduler(ABC):
    """Base class: reduce-slot filling plus the map-assignment hook.

    Decision tracing: when :attr:`bus` is set (an
    :class:`~repro.obs.events.EventBus`, attached by ``run_simulation`` for
    instrumented trials), every assignment decision -- including rejected
    degraded launches and the guard/pacing values behind them -- is emitted
    as a ``sched.decision`` event.  With ``bus is None`` (the default)
    tracing costs nothing.
    """

    #: Registry name, overridden by subclasses.
    name = "abstract"

    def __init__(self, context: SchedulerContext) -> None:
        self.context = context
        #: Optional event bus for decision tracing (None = tracing off).
        self.bus = None
        #: Guard values of the most recent ``_degraded_guards`` evaluation,
        #: populated only while tracing (see EnhancedDegradedFirstScheduler).
        self.last_guard_trace: dict | None = None

    def assign(
        self,
        slave_id: int,
        free_map_slots: int,
        free_reduce_slots: int,
        jobs: list[JobTaskState],
        now: float,
    ) -> tuple[list[MapAssignment], list[ReduceAssignment]]:
        """Respond to one heartbeat with map and reduce assignments."""
        maps = self.assign_maps(slave_id, free_map_slots, jobs, now)
        reduces = self._assign_reduces(slave_id, free_reduce_slots, jobs)
        return maps, reduces

    @abstractmethod
    def assign_maps(
        self,
        slave_id: int,
        free_map_slots: int,
        jobs: list[JobTaskState],
        now: float,
    ) -> list[MapAssignment]:
        """Fill up to ``free_map_slots`` map slots of ``slave_id``."""

    def _assign_reduces(
        self, slave_id: int, free_reduce_slots: int, jobs: list[JobTaskState]
    ) -> list[ReduceAssignment]:
        assignments: list[ReduceAssignment] = []
        for job in jobs:
            while free_reduce_slots > 0 and job.reduce_ready(self.context.reduce_slowstart):
                index = job.pop_reduce()
                if index is None:
                    break
                assignments.append(
                    ReduceAssignment(job_id=job.job_id, reduce_index=index, slave_id=slave_id)
                )
                free_reduce_slots -= 1
            if free_reduce_slots == 0:
                break
        return assignments

    # -- decision tracing -------------------------------------------------------

    def trace_decision(self, now: float, slave_id: int, **fields) -> None:
        """Emit one ``sched.decision`` event (no-op unless tracing is on)."""
        if self.bus is None:
            return
        self.bus.emit(
            "sched.decision", now, scheduler=self.name, node=slave_id, **fields
        )

    @staticmethod
    def pacing_fields(job: JobTaskState) -> dict:
        """The paper's pacing state ``m/M`` vs ``m_d/M_d`` at decision time."""
        return {
            "m": job.m,
            "M": job.M,
            "m_d": job.m_d,
            "M_d": job.M_d,
            "launched_fraction": job.m / job.M if job.M else None,
            "degraded_fraction": job.m_d / job.M_d if job.M_d else None,
        }

    # -- shared helpers for subclasses ----------------------------------------

    def _make_map_assignment(
        self, job: JobTaskState, slave_id: int, block: BlockId, category: MapTaskCategory
    ) -> MapAssignment:
        return MapAssignment(
            job_id=job.job_id, block=block, category=category, slave_id=slave_id
        )

    def _try_local(self, job: JobTaskState, slave_id: int) -> MapAssignment | None:
        """Pop a local (node- or rack-local) task of ``job`` for ``slave_id``."""
        picked = job.pop_local(slave_id)
        if picked is None:
            return None
        block, node_local = picked
        category = MapTaskCategory.NODE_LOCAL if node_local else MapTaskCategory.RACK_LOCAL
        return self._make_map_assignment(job, slave_id, block, category)

    def _try_remote(self, job: JobTaskState, slave_id: int) -> MapAssignment | None:
        """Pop a remote task of ``job`` for ``slave_id``."""
        block = job.pop_remote(slave_id)
        if block is None:
            return None
        return self._make_map_assignment(job, slave_id, block, MapTaskCategory.REMOTE)

    def _try_degraded(self, job: JobTaskState, slave_id: int) -> MapAssignment | None:
        """Pop a degraded task of ``job``."""
        block = job.pop_degraded()
        if block is None:
            return None
        return self._make_map_assignment(job, slave_id, block, MapTaskCategory.DEGRADED)


#: Populated by _ensure_builtins on first use to avoid import cycles.
_REGISTRY: dict[str, type[Scheduler]] = {}


def _ensure_builtins() -> None:
    if "LF" in _REGISTRY:
        return
    from repro.core.degraded_first import BasicDegradedFirstScheduler
    from repro.core.enhanced import EnhancedDegradedFirstScheduler
    from repro.core.extras import ABLATION_SCHEDULERS
    from repro.core.locality_first import LocalityFirstScheduler

    for scheduler_cls in (
        LocalityFirstScheduler,
        BasicDegradedFirstScheduler,
        EnhancedDegradedFirstScheduler,
        *ABLATION_SCHEDULERS,
    ):
        _REGISTRY.setdefault(scheduler_cls.name, scheduler_cls)


def register_scheduler(scheduler_cls: type[Scheduler]) -> None:
    """Add a custom scheduler class to the registry under its ``name``.

    Once registered, the name is accepted anywhere a scheduler name is
    (``SimulationConfig.scheduler``, the testbed, the CLI).
    """
    _ensure_builtins()
    if not scheduler_cls.name or scheduler_cls.name == Scheduler.name:
        raise ValueError("custom schedulers must set a distinct `name` attribute")
    existing = _REGISTRY.get(scheduler_cls.name)
    if existing is not None and existing is not scheduler_cls:
        raise ValueError(f"scheduler name {scheduler_cls.name!r} is already taken")
    _REGISTRY[scheduler_cls.name] = scheduler_cls


def registered_schedulers() -> list[str]:
    """Names currently accepted by :func:`make_scheduler`."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def make_scheduler(name: str, context: SchedulerContext) -> Scheduler:
    """Instantiate a scheduler by registry name (``LF``, ``BDF``, ``EDF``)."""
    _ensure_builtins()
    try:
        scheduler_cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}; choose from {sorted(_REGISTRY)}")
    return scheduler_cls(context)
