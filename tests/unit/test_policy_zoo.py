"""Unit tests for the scheduler zoo (policy-specific behaviour).

The universal contract (slot discipline, no double assignment, no
starvation, determinism) lives in
``tests/property/test_policy_conformance.py``; these tests pin what makes
each zoo policy *itself*.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.scheduler import SchedulerContext, make_scheduler
from repro.core.tasks import JobTaskState
from repro.core.zoo import CriticalPathScheduler
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import MapTaskCategory
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster


def build(seed=11, num_blocks=24, fail_node=0, speed_factors=None,
          map_slots=2, job_id=0):
    topology = ClusterTopology.from_rack_sizes(
        [3, 3], map_slots=map_slots, speed_factors=speed_factors
    )
    cluster = HdfsRaidCluster(
        topology, CodeParams(4, 2), num_native_blocks=num_blocks,
        placement="random", rng=RngStreams(seed),
    )
    failed = frozenset({fail_node})
    config = JobConfig(num_blocks=num_blocks, num_reduce_tasks=2)
    state = JobTaskState(
        job_id, config, cluster.failure_view(failed), cluster.block_map, topology
    )
    context = SchedulerContext(
        topology=topology,
        live_nodes=frozenset(topology.node_ids()) - failed,
        expected_degraded_read_time=4.0,
        map_time_mean=config.map_time_mean,
        reduce_slowstart=0.05,
    )
    return state, context, cluster


def drain(scheduler, states, context, slots=2):
    stream = []
    now = 0.0
    rounds = 0
    while any(state.has_unassigned_maps() for state in states):
        for slave in sorted(context.live_nodes):
            stream.extend(scheduler.assign_maps(slave, slots, states, now))
        now += 3.0
        rounds += 1
        assert rounds < 2000
    return stream


class TestRandomScheduler:
    def test_fresh_instances_replay_identically(self):
        streams = []
        for _ in range(2):
            state, context, _ = build()
            scheduler = make_scheduler("RANDOM", context)
            streams.append(
                [(a.block, a.slave_id, a.category) for a in drain(scheduler, [state], context)]
            )
        assert streams[0] == streams[1]

    def test_is_locality_blind(self):
        """RANDOM picks sources without regard to the heartbeating slave."""
        state, context, _ = build(num_blocks=48)
        scheduler = make_scheduler("RANDOM", context)
        stream = drain(scheduler, [state], context)
        categories = {assignment.category for assignment in stream}
        # A locality-blind draw lands remote tasks essentially always.
        assert MapTaskCategory.REMOTE in categories


class TestFifoScheduler:
    def test_strict_job_order(self):
        first, context, _ = build(num_blocks=16, job_id=0)
        second, _, _ = build(num_blocks=16, job_id=1)
        scheduler = make_scheduler("FIFO", context)
        stream = drain(scheduler, [first, second], context)
        job_ids = [assignment.job_id for assignment in stream]
        assert job_ids == sorted(job_ids), "FIFO interleaved jobs"


class TestWorkStealingScheduler:
    def test_own_queue_first(self):
        state, context, _ = build(num_blocks=48)
        scheduler = make_scheduler("STEAL", context)
        slave = next(iter(sorted(context.live_nodes)))
        while state.pending_node_local_count(slave) > 0:
            assignments = scheduler.assign_maps(slave, 1, [state], 0.0)
            assert assignments[0].category is MapTaskCategory.NODE_LOCAL
            assert assignments[0].slave_id == slave

    def test_victim_is_most_backlogged_live_node(self):
        state, context, _ = build(num_blocks=48)
        scheduler = make_scheduler("STEAL", context)
        slave = next(iter(sorted(context.live_nodes)))
        backlogs = {
            node_id: state.pending_node_local_count(node_id)
            for node_id in sorted(context.live_nodes)
            if node_id != slave
        }
        expected = max(
            (node for node, depth in backlogs.items() if depth > 0),
            key=lambda node: (backlogs[node], -node),
            default=None,
        )
        assert scheduler._pick_victim(state, slave) == expected


class TestCriticalPathScheduler:
    def test_b_level_formula(self):
        state, context, _ = build(num_blocks=24)
        scheduler = CriticalPathScheduler(context)
        degraded = state.pending_degraded_count()
        normal = (state.M - state.m) - degraded
        reduces = len(state.pending_reduce_tasks)
        expected = (
            normal * context.map_time_mean
            + degraded * (context.map_time_mean + context.expected_degraded_read_time)
            + reduces * context.map_time_mean
        )
        assert scheduler._b_level(state) == pytest.approx(expected)

    def test_longest_job_served_first(self):
        small, context, _ = build(num_blocks=8, job_id=0)
        large, _, _ = build(num_blocks=48, job_id=1)
        scheduler = make_scheduler("CPATH", context)
        slave = next(iter(sorted(context.live_nodes)))
        assignments = scheduler.assign_maps(slave, 1, [small, large], 0.0)
        assert assignments, "no assignment despite pending work"
        assert assignments[0].job_id == 1, "CPATH ignored the b-level order"


class TestTaskCloningScheduler:
    def test_caps_assignments_in_the_tail(self):
        # 6 nodes x 2 slots = capacity 10 live; 8 pending maps => tail.
        state, context, _ = build(num_blocks=8)
        scheduler = make_scheduler("CLONE", context)
        slave = next(iter(sorted(context.live_nodes)))
        assignments = scheduler.assign_maps(slave, 4, [state], 0.0)
        assert len(assignments) == 1, "tail heartbeat must hold slots back"

    def test_fills_slots_outside_the_tail(self):
        # 48 pending maps >> capacity 10 => normal LF-order filling.
        state, context, _ = build(num_blocks=48)
        scheduler = make_scheduler("CLONE", context)
        slave = next(iter(sorted(context.live_nodes)))
        assignments = scheduler.assign_maps(slave, 4, [state], 0.0)
        assert len(assignments) == 4


class TestHeterogeneityAwareScheduler:
    SPEEDS = (0.5, 1.5, 1.0, 1.0, 1.0, 1.0)

    def test_slow_nodes_get_fewer_slots(self):
        state, context, _ = build(
            num_blocks=48, fail_node=5, speed_factors=self.SPEEDS, map_slots=4
        )
        scheduler = make_scheduler("HETERO", context)
        slow = scheduler.assign_maps(0, 4, [state], 0.0)  # speed 0.5 vs mean 1.0
        assert len(slow) <= 2

    def test_degraded_admission_requires_at_least_mean_speed(self):
        state, context, _ = build(
            num_blocks=48, fail_node=5, speed_factors=self.SPEEDS
        )
        scheduler = make_scheduler("HETERO", context)
        assert state.has_unassigned_normal()
        assert not scheduler._degraded_guards(state, 0, 0.0)  # slow node
        assert scheduler._degraded_guards(state, 1, 0.0)  # fast node

    def test_speed_gate_lifts_when_only_degraded_work_remains(self):
        state, context, _ = build(
            num_blocks=24, fail_node=5, speed_factors=self.SPEEDS
        )
        while state.has_unassigned_normal():
            assert state.pop_local(1) or state.pop_remote(1)
        scheduler = make_scheduler("HETERO", context)
        assert scheduler._degraded_guards(state, 0, 0.0), (
            "slow node must still take degraded work when nothing else remains"
        )
