"""The threaded mini-MapReduce engine of the testbed.

Architecture mirrors Hadoop 0.22 as the paper describes it: a master
(scheduler) thread polls every live slave on a heartbeat interval and fills
free map/reduce slots using one of the three scheduling policies
(:mod:`repro.core`); worker threads execute tasks for real -- block reads
(including genuine Reed-Solomon degraded reads) cross the emulated network,
map functions tokenise real text, intermediate data is partitioned by key
hash, and reducers fetch their partitions over the network before reducing.

Time is wall-clock (optionally compressed through the network's
``time_scale``); runtimes are reported in simulated seconds.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cluster.topology import ClusterTopology
from repro.cluster.network import NetworkSpec
from repro.core.scheduler import SchedulerContext, make_scheduler
from repro.core.tasks import JobTaskState
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import MapAssignment, MapTaskCategory, ReduceAssignment, TaskKind
from repro.mapreduce.metrics import TaskRecord
from repro.sim.rng import RngStreams
from repro.storage.degraded import SourceSelection
from repro.storage.hdfs import FailureView
from repro.testbed.jobs import MapReduceJob
from repro.testbed.localfs import HdfsRaidFilesystem
from repro.testbed.netem import EmulatedNetwork
from repro.testbed.textgen import generate_corpus


@dataclass(frozen=True)
class TestbedConfig:
    """Configuration of the testbed cluster.

    Defaults scale the paper's testbed down by 512x in block size (128 KB
    instead of 64 MB) so a run takes seconds instead of hours, keeping the
    paper's proportions: 12 slaves in 3 racks, 4 map + 1 reduce slot each, a
    (12, 10) code, 8 reduce tasks, round-robin placement, and 240 blocks of
    synthetic Gutenberg-like text.

    Because Python's GIL would serialise real per-task CPU across the 44
    worker threads (destroying the parallel-compute dynamics the paper
    studies), the bulk of each task's cost is modelled as a *processing
    rate* -- an emulated disk-scan/framework delay proportional to the data
    handled, which sleeps and therefore parallelises -- on top of the real
    (cheap) tokenisation.  ``map_processing_rate`` is chosen so a map task
    takes ~0.25 s, and the emulated network bandwidth so an uncontended
    block transfer is a small fraction of that, as 64 MB at 1 Gbps is of
    the paper's ~31 s map tasks.  Degraded reads then hurt mainly through
    end-of-phase link contention -- the paper's central mechanism.
    """

    num_racks: int = 3
    nodes_per_rack: int = 4
    map_slots: int = 4
    reduce_slots: int = 1
    code: CodeParams = field(default_factory=lambda: CodeParams(12, 10))
    block_size: int = 128 * 1024
    num_blocks: int = 240
    num_reduce_tasks: int = 8
    placement: str = "round-robin"
    source_selection: SourceSelection = SourceSelection.RACK_LOCAL_FIRST
    rack_bandwidth: float = 5 * 1024 * 1024
    map_processing_rate: float = 512 * 1024
    vocabulary_size: int = 400
    reduce_processing_rate: float = 4 * 1024 * 1024
    time_scale: float = 1.0
    heartbeat_interval: float = 0.025
    reduce_slowstart: float = 0.05
    seed: int = 0

    @property
    def num_nodes(self) -> int:
        """Total slave count."""
        return self.num_racks * self.nodes_per_rack

    @property
    def corpus_bytes(self) -> int:
        """Size of the stored input file."""
        return self.num_blocks * self.block_size


@dataclass
class TestbedJobResult:
    """Outcome of one testbed job run."""

    job_name: str
    scheduler: str
    runtime: float
    tasks: list[TaskRecord]
    output: dict[str, object]

    def mean_runtime(self, kind: TaskKind, *categories: MapTaskCategory) -> float:
        """Average task runtime, as in the paper's Table I."""
        if kind is TaskKind.REDUCE:
            chosen = [task for task in self.tasks if task.kind is TaskKind.REDUCE]
        elif categories:
            chosen = [task for task in self.tasks if task.category in categories]
        else:
            chosen = [task for task in self.tasks if task.kind is TaskKind.MAP]
        if not chosen:
            return float("nan")
        return sum(task.runtime for task in chosen) / len(chosen)


class _JobRun:
    """Mutable execution state of one job inside the engine."""

    def __init__(
        self,
        job_id: int,
        job: MapReduceJob,
        state: JobTaskState,
        num_reduce_tasks: int,
    ) -> None:
        self.job_id = job_id
        self.job = job
        self.state = state
        self.tasks: list[TaskRecord] = []
        self.first_launch: float | None = None
        self.finish: float | None = None
        # Per-reducer intermediate queues: (src_node, size_bytes, pairs).
        self.partitions: list[list[tuple[int, int, list]]] = [
            [] for _ in range(num_reduce_tasks)
        ]
        self.fetched_counts: list[int] = [0] * num_reduce_tasks
        self.output: dict[str, object] = {}
        self.done = threading.Event()


class TestbedCluster:
    """A ready-to-run testbed: topology, network, filesystem and corpus.

    Parameters
    ----------
    config:
        The cluster configuration.
    corpus:
        Input bytes; generated from the seed when omitted.
    """

    def __init__(self, config: TestbedConfig, corpus: bytes | None = None) -> None:
        self.config = config
        self.topology = ClusterTopology.from_rack_sizes(
            [config.nodes_per_rack] * config.num_racks,
            map_slots=config.map_slots,
            reduce_slots=config.reduce_slots,
        )
        self.network = NetworkSpec(rack_download_bw=config.rack_bandwidth)
        self.netem = EmulatedNetwork(self.topology, self.network, config.time_scale)
        self.rng = RngStreams(config.seed)
        self.fs = HdfsRaidFilesystem(
            self.topology,
            config.code,
            config.block_size,
            self.netem,
            placement=config.placement,
            rng=self.rng,
            source_selection=config.source_selection,
        )
        if corpus is None:
            corpus = generate_corpus(
                config.corpus_bytes,
                seed=config.seed,
                vocabulary_size=config.vocabulary_size,
            )
        self.corpus = corpus
        self.fs.write_file(corpus)

    # -- public API ----------------------------------------------------------

    def run_job(
        self,
        job: MapReduceJob,
        scheduler: str = "EDF",
        failed_nodes: frozenset[int] = frozenset(),
    ) -> TestbedJobResult:
        """Run a single job to completion and return its result."""
        return self.run_jobs([job], scheduler, failed_nodes)[0]

    def run_jobs(
        self,
        jobs: list[MapReduceJob],
        scheduler: str = "EDF",
        failed_nodes: frozenset[int] = frozenset(),
    ) -> list[TestbedJobResult]:
        """Run several jobs submitted together, FIFO-scheduled.

        This is the paper's multi-job scenario: all jobs enter the queue in
        order at once and compete for slots under the chosen policy.
        """
        engine = _Engine(self, jobs, scheduler, failed_nodes)
        return engine.run()

    def kill_node(self, rng_name: str = "testbed-failure") -> frozenset[int]:
        """Pick one slave at random to fail (the paper kills one datanode)."""
        victim = self.rng.choice(rng_name, sorted(self.topology.node_ids()))
        return frozenset({victim})


class _Engine:
    """One FIFO batch execution over a testbed cluster."""

    def __init__(
        self,
        cluster: TestbedCluster,
        jobs: list[MapReduceJob],
        scheduler_name: str,
        failed_nodes: frozenset[int],
    ) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        if cluster.fs.block_map is None:
            raise RuntimeError("testbed filesystem holds no file")
        self.cluster = cluster
        self.config = cluster.config
        self.failed_nodes = failed_nodes
        self.scheduler_name = scheduler_name
        self._lock = threading.Lock()
        self._start = time.monotonic()
        self._live_nodes = [
            node_id
            for node_id in sorted(cluster.topology.node_ids())
            if node_id not in failed_nodes
        ]
        self._free_map_slots = {
            node_id: cluster.topology.node(node_id).map_slots for node_id in self._live_nodes
        }
        self._free_reduce_slots = {
            node_id: cluster.topology.node(node_id).reduce_slots
            for node_id in self._live_nodes
        }

        block_map = cluster.fs.block_map
        lost = tuple(block_map.lost_native_blocks(failed_nodes))
        lost_set = set(lost)
        available = tuple(
            block for block in block_map.native_blocks() if block not in lost_set
        )
        view = FailureView(
            failed_nodes=failed_nodes, lost_blocks=lost, available_blocks=available
        )

        self.runs: list[_JobRun] = []
        for job_id, job in enumerate(jobs):
            job_config = JobConfig(
                num_blocks=block_map.num_native_blocks,
                map_time_mean=1.0,
                map_time_std=0.0,
                reduce_time_mean=1.0,
                reduce_time_std=0.0,
                num_reduce_tasks=self.config.num_reduce_tasks,
                shuffle_ratio=0.0,
            )
            state = JobTaskState(
                job_id=job_id,
                config=job_config,
                view=view,
                block_map=block_map,
                topology=cluster.topology,
            )
            self.runs.append(_JobRun(job_id, job, state, self.config.num_reduce_tasks))

        R = cluster.config.num_racks  # noqa: N806 - paper notation
        threshold = (
            (R - 1)
            * cluster.config.code.k
            * cluster.config.block_size
            / (R * cluster.config.rack_bandwidth)
        )
        self.scheduler = make_scheduler(
            scheduler_name,
            SchedulerContext(
                topology=cluster.topology,
                live_nodes=frozenset(self._live_nodes),
                expected_degraded_read_time=threshold,
                map_time_mean=1.0,
                reduce_slowstart=self.config.reduce_slowstart,
            ),
        )
        total_slots = sum(self._free_map_slots.values()) + sum(
            self._free_reduce_slots.values()
        )
        self._pool = ThreadPoolExecutor(max_workers=total_slots, thread_name_prefix="slot")

    # -- time ------------------------------------------------------------------

    def _now(self) -> float:
        """Simulated seconds since the batch started."""
        return (time.monotonic() - self._start) / self.config.time_scale

    # -- main loop ----------------------------------------------------------------

    def run(self) -> list[TestbedJobResult]:
        """Drive heartbeats until every job completes."""
        try:
            while not all(run.done.is_set() for run in self.runs):
                self._heartbeat_round()
                time.sleep(self.config.heartbeat_interval * self.config.time_scale)
        finally:
            self._pool.shutdown(wait=True)
        results = []
        for run in self.runs:
            assert run.first_launch is not None and run.finish is not None
            results.append(
                TestbedJobResult(
                    job_name=run.job.name,
                    scheduler=self.scheduler_name,
                    runtime=run.finish - run.first_launch,
                    tasks=run.tasks,
                    output=run.output,
                )
            )
        return results

    def _heartbeat_round(self) -> None:
        """One poll of every live slave, in shuffled order."""
        order = list(self._live_nodes)
        self.cluster.rng.shuffle("testbed-heartbeat", order)
        for node_id in order:
            with self._lock:
                active = [run.state for run in self.runs if not run.done.is_set()]
                if not active:
                    return
                maps, reduces = self.scheduler.assign(
                    node_id,
                    self._free_map_slots[node_id],
                    self._free_reduce_slots[node_id],
                    active,
                    self._now(),
                )
                for assignment in maps:
                    self._free_map_slots[node_id] -= 1
                    self._note_launch(assignment.job_id)
                for assignment in reduces:
                    self._free_reduce_slots[node_id] -= 1
                    self._note_launch(assignment.job_id)
            for assignment in maps:
                self._pool.submit(self._run_map, assignment)
            for assignment in reduces:
                self._pool.submit(self._run_reduce, assignment)

    def _note_launch(self, job_id: int) -> None:
        run = self.runs[job_id]
        if run.first_launch is None:
            run.first_launch = self._now()

    # -- task bodies ---------------------------------------------------------------

    def _run_map(self, assignment: MapAssignment) -> None:
        run = self.runs[assignment.job_id]
        record = TaskRecord(
            job_id=assignment.job_id,
            kind=TaskKind.MAP,
            category=assignment.category,
            slave_id=assignment.slave_id,
            launch_time=self._now(),
        )
        try:
            payload, transfer_time = self.cluster.fs.read_block(
                assignment.block, assignment.slave_id, self.failed_nodes
            )
            record.download_time = transfer_time
            # Emulated scan/processing cost (see TestbedConfig docstring).
            time.sleep(
                len(payload) / self.config.map_processing_rate * self.config.time_scale
            )
            pairs = run.job.combine(run.job.map_fn(payload))
            buckets: dict[int, list] = {}
            for key, value in pairs:
                index = hash(key) % self.config.num_reduce_tasks if self.config.num_reduce_tasks else 0
                buckets.setdefault(index, []).append((key, value))
            record.finish_time = self._now()
            with self._lock:
                for index, bucket in buckets.items():
                    size = sum(len(key) + 8 for key, _value in bucket)
                    run.partitions[index].append((assignment.slave_id, size, bucket))
                run.state.on_map_complete()
                run.tasks.append(record)
                self._free_map_slots[assignment.slave_id] += 1
                self._check_completion(run)
        except Exception:
            run.done.set()
            raise

    def _run_reduce(self, assignment: ReduceAssignment) -> None:
        run = self.runs[assignment.job_id]
        index = assignment.reduce_index
        record = TaskRecord(
            job_id=assignment.job_id,
            kind=TaskKind.REDUCE,
            category=None,
            slave_id=assignment.slave_id,
            launch_time=self._now(),
        )
        merged: dict[str, list] = {}
        shuffle_time = 0.0
        try:
            while True:
                with self._lock:
                    queue = run.partitions[index]
                    pending = queue[run.fetched_counts[index]:]
                    run.fetched_counts[index] = len(queue)
                    maps_done = run.state.maps_all_completed()
                for src_node, size, bucket in pending:
                    shuffle_time += self.cluster.netem.transfer(
                        src_node, assignment.slave_id, size
                    )
                    for key, value in bucket:
                        merged.setdefault(key, []).append(value)
                if maps_done and not pending:
                    with self._lock:
                        if run.fetched_counts[index] == len(run.partitions[index]):
                            break
                    continue
                if not pending:
                    time.sleep(self.config.heartbeat_interval * self.config.time_scale)
            record.download_time = shuffle_time
            # Emulated merge/processing cost over everything shuffled in.
            fetched_bytes = sum(
                size for _src, size, _bucket in run.partitions[index]
            )
            time.sleep(
                fetched_bytes / self.config.reduce_processing_rate * self.config.time_scale
            )
            output: dict[str, object] = {}
            for key, values in merged.items():
                for out_key, out_value in run.job.reduce_fn(key, values):
                    output[out_key] = out_value
            record.finish_time = self._now()
            with self._lock:
                run.output.update(output)
                run.state.on_reduce_complete()
                run.tasks.append(record)
                self._free_reduce_slots[assignment.slave_id] += 1
                self._check_completion(run)
        except Exception:
            run.done.set()
            raise

    def _check_completion(self, run: _JobRun) -> None:
        """Mark a job finished once maps and reduces are all complete."""
        if run.state.job_completed() and not run.done.is_set():
            run.finish = self._now()
            run.done.set()
