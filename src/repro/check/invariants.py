"""The invariant monitor: a zero-perturbation runtime sanitizer.

:class:`InvariantMonitor` plugs into a trial exactly where an
:class:`~repro.obs.ObservabilityCollector` does -- it *wraps* one, shares
its :class:`~repro.obs.events.EventBus`, and forwards every observer-protocol
call -- and checks, continuously, that the simulation obeys its own rules:

``slot-accounting``
    Semaphore occupancy stays within ``[0, capacity]``, queues never go
    negative, waiters only queue when the semaphore is full, and the
    launch/termination ledger never holds more running attempts on a node
    than the node has slots.
``link-capacity``
    Every :class:`~repro.sim.resources.FluidNetwork` reallocation keeps the
    summed flow rate on each link within its capacity (up to float
    epsilon), and flows only cross registered links.
``task-lifecycle``
    No task is launched twice on one node without terminating in between,
    a second concurrent attempt of a task must be speculative, every
    ``task.finish`` / ``task.kill`` matches a running attempt, and -- when
    the trial completes -- every launched attempt has terminated exactly
    once (attempts of abandoned jobs are exempt: the master tears them
    down wholesale).
``bdf-pacing``
    Every degraded-first launch satisfies the paper's pacing inequality
    ``m/M >= m_d/M_d`` (Algorithm 2), and every pacing skip really was
    forced by it.
``edf-guard``
    A degraded launch under EDF passed both ``ASSIGNTOSLAVE`` and
    ``ASSIGNTORACK``, the traced guard verdicts are consistent with the
    traced quantities, and guard skips name the guard that rejected.
``stripe-conservation``
    Degraded reads and repairs always work from at least ``k`` readable
    same-stripe sources; a parked task's stripe really is undecodable
    (otherwise the correct outcome is progress, not a typed
    :class:`~repro.faults.errors.DataUnavailableError`); and a finished
    repair never leaves two units of one stripe on the same node.
``backlog-boundedness``
    The repair driver's published backlog depth is internally consistent
    (``depth == queued + in_flight``), never negative, and never exceeds
    the number of stored blocks -- the repair queue holds at most one entry
    per block, so anything larger means double-queued work.
``event-monotonicity``
    Dispatched heap entries and emitted bus events never move backwards in
    virtual time.

The monitor never schedules simulator callbacks, never draws randomness,
and never mutates simulation state, so a checked trial is bit-identical to
an unchecked one -- asserted against the PR-4 goldens by
``tests/integration/test_sanitizer.py``.

For fuzzing, ``max_dispatch`` / ``max_sim_time`` turn the monitor into a
runaway guard: exceeding either bound aborts the trial with an
:class:`InvariantViolationError` instead of spinning forever.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.obs.collector import ObservabilityCollector
from repro.obs.events import WILDCARD, ObsEvent
from repro.storage.block import BlockId

#: Tolerances for link-capacity feasibility: progressive filling assigns
#: ``capacity / flows`` shares whose sum can exceed capacity by a few ulps.
_REL_EPS = 1e-9
_ABS_EPS = 1e-6

#: Float slack mirrored from ``EnhancedDegradedFirstScheduler.assign_to_slave``.
_GUARD_EPS = 1e-12

#: ``str(BlockId)`` as printed by the paper's notation, e.g. ``B_{2,0}``.
_BLOCK_NAME = re.compile(r"^([BP])_\{(\d+),(\d+)\}$")


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough context to chase it down."""

    time: float
    invariant: str
    message: str
    details: dict = field(default_factory=dict)

    def format(self) -> str:
        """One-line rendering for reports and error messages."""
        text = f"[{self.invariant}] t={self.time:.3f}: {self.message}"
        if self.details:
            extras = " ".join(f"{key}={value}" for key, value in sorted(self.details.items()))
            text = f"{text} ({extras})"
        return text


class InvariantViolationError(RuntimeError):
    """A checked trial broke at least one invariant.

    Carries the full violation list and -- when the trial got far enough to
    build one -- the :class:`~repro.mapreduce.metrics.SimulationResult`.
    """

    def __init__(self, violations: list[InvariantViolation], result: Any = None) -> None:
        self.violations = list(violations)
        self.result = result
        head = self.violations[0].format() if self.violations else "invariant violation"
        super().__init__(f"{len(self.violations)} invariant violation(s); first: {head}")

    def __reduce__(self):
        # RuntimeError's default reduce would re-init with the message
        # string; keep the violation list intact across process pools.
        return (self.__class__, (self.violations, self.result))

    def report(self) -> str:
        """The multi-line violation report."""
        return render_report(self.violations)


def render_report(violations: list[InvariantViolation], limit_per_kind: int = 5) -> str:
    """Render violations grouped by invariant, most instances first."""
    if not violations:
        return "== sanitizer report: no violations =="
    by_kind: dict[str, list[InvariantViolation]] = {}
    for violation in violations:
        by_kind.setdefault(violation.invariant, []).append(violation)
    lines = [f"== sanitizer report: {len(violations)} violation(s) =="]
    for kind in sorted(by_kind, key=lambda name: (-len(by_kind[name]), name)):
        instances = by_kind[kind]
        lines.append(f"{kind}: {len(instances)} violation(s)")
        for violation in instances[:limit_per_kind]:
            lines.append(f"  {violation.format()}")
        if len(instances) > limit_per_kind:
            lines.append(f"  ... and {len(instances) - limit_per_kind} more")
    return "\n".join(lines)


def _parse_block(name: str, k: int) -> BlockId | None:
    """Reconstruct a :class:`BlockId` from its event-field string form."""
    match = _BLOCK_NAME.match(name)
    if match is None:
        return None
    kind, stripe, index = match.groups()
    position = int(index) if kind == "B" else int(index) + k
    return BlockId(stripe_id=int(stripe), position=position, k=k)


class InvariantMonitor:
    """Checks a trial's invariants without perturbing it.

    Pass an instance as ``observer=`` to
    :func:`~repro.mapreduce.simulation.run_simulation`; a clean trial
    behaves exactly as with a plain collector, a dirty one raises
    :class:`InvariantViolationError` once the run ends (or immediately, if
    a runaway bound trips mid-run).

    Parameters
    ----------
    collector:
        An existing :class:`ObservabilityCollector` to wrap (so ``--check``
        composes with the export flags); a private, event-discarding one is
        created when omitted.
    max_violations:
        Recording cap; beyond it violations are only counted
        (:attr:`dropped_violations`), bounding memory on badly broken runs.
    max_dispatch, max_sim_time:
        Optional runaway bounds for fuzzing: exceeding either aborts the
        trial by raising from inside the event loop.
    """

    def __init__(
        self,
        collector: ObservabilityCollector | None = None,
        max_violations: int = 200,
        max_dispatch: int | None = None,
        max_sim_time: float | None = None,
    ) -> None:
        self.collector = (
            collector if collector is not None else ObservabilityCollector(keep_events=False)
        )
        self.bus = self.collector.bus
        self.profiler = self.collector.profiler
        self.violations: list[InvariantViolation] = []
        self.dropped_violations = 0
        self.max_violations = max_violations
        self.max_dispatch = max_dispatch
        self.max_sim_time = max_sim_time
        # Trial wiring, filled in by on_trial_built.
        self._tracker = None
        self._runtime = None
        self._block_map = None
        self._map_capacity: dict[int, int] = {}
        self._reduce_capacity: dict[int, int] = {}
        # Checker state.
        self._link_caps: dict[str, float] = {}
        #: (job_id, task, ident, node) -> {"attempt": n, "speculative": bool}
        self._running: dict[tuple, dict] = {}
        #: (job_id, task, ident) -> set of nodes with a running attempt
        self._running_by_task: dict[tuple, set] = {}
        #: (node, task) -> running attempt count, for the slot cross-check
        self._node_running: dict[tuple, int] = {}
        self._failed_jobs: set[int] = set()
        #: Block names whose repair was forced to double up (no live node
        #: without a same-stripe unit existed at plan time) -- exempt from
        #: the distinct-node check at repair.end.
        self._forced_doubleup: set[str] = set()
        #: Repairs currently in flight: block name -> (stripe, destination).
        #: Their destinations are not in the BlockMap yet but already count
        #: against the distinct-node rule for sibling rebuilds.
        self._repairing: dict[str, tuple[int, int]] = {}
        self._last_event_time = 0.0
        self._last_dispatch_time = 0.0
        self._dispatch_count = 0
        self.bus.subscribe(WILDCARD, self._on_event)

    # -- recording -----------------------------------------------------------

    def _record(self, time: float, invariant: str, message: str, **details: Any) -> None:
        if len(self.violations) >= self.max_violations:
            self.dropped_violations += 1
            return
        self.violations.append(InvariantViolation(time, invariant, message, dict(details)))

    def raise_if_violations(self, result: Any = None) -> None:
        """Raise :class:`InvariantViolationError` if anything was recorded."""
        if self.violations:
            raise InvariantViolationError(self.violations, result)

    def report(self) -> str:
        """The multi-line violation report for this trial."""
        return render_report(self.violations)

    # -- trial wiring (called by run_simulation) -----------------------------

    def on_trial_built(self, *, sim, tracker, runtime, hdfs, config) -> None:
        """Receive the assembled trial before any event runs.

        This is the hook :func:`run_simulation` threads through for state
        the bus does not carry: the block map (stripe conservation), the
        tracker/runtime failure views (spurious-park detection), the slot
        capacities, and the engine itself (dispatch monotonicity).
        """
        del config
        self._tracker = tracker
        self._runtime = runtime
        self._block_map = hdfs.block_map
        for node in tracker.topology.nodes:
            self._map_capacity[node.node_id] = node.map_slots
            self._reduce_capacity[node.node_id] = node.reduce_slots
        sim.monitor = self

    def on_dispatch(self, time: float) -> None:
        """Engine hook: one heap entry dispatched at ``time``."""
        if time < self._last_dispatch_time:
            self._record(
                time,
                "event-monotonicity",
                f"heap dispatched t={time!r} after t={self._last_dispatch_time!r}",
            )
        self._last_dispatch_time = time
        self._dispatch_count += 1
        if self.max_dispatch is not None and self._dispatch_count > self.max_dispatch:
            self._record(
                time,
                "runaway",
                f"trial exceeded {self.max_dispatch} dispatched events",
            )
            raise InvariantViolationError(self.violations)
        if self.max_sim_time is not None and time > self.max_sim_time:
            self._record(
                time,
                "runaway",
                f"trial exceeded simulated time bound {self.max_sim_time}",
            )
            raise InvariantViolationError(self.violations)

    # -- slot observer protocol ----------------------------------------------

    def slot_changed(
        self, now: float, name: str, in_use: int, capacity: int, queued: int
    ) -> None:
        if in_use < 0 or in_use > capacity:
            self._record(
                now,
                "slot-accounting",
                f"semaphore {name} occupancy {in_use} outside [0, {capacity}]",
                semaphore=name,
            )
        if queued < 0:
            self._record(
                now, "slot-accounting", f"semaphore {name} queue depth {queued} negative",
                semaphore=name,
            )
        elif queued > 0 and in_use < capacity:
            self._record(
                now,
                "slot-accounting",
                f"semaphore {name} has {queued} queued waiter(s) with free slots"
                f" ({in_use}/{capacity} in use)",
                semaphore=name,
            )
        self.collector.slot_changed(now, name, in_use, capacity, queued)

    # -- network observer protocol -------------------------------------------

    def register_links(self, capacities: dict[str, float]) -> None:
        self._link_caps.update(capacities)
        self.collector.register_links(capacities)

    def flow_started(self, now: float, links: tuple[str, ...], size: float) -> None:
        for link in links:
            if link not in self._link_caps:
                self._record(
                    now, "link-capacity", f"flow crosses unregistered link {link}",
                    link=link,
                )
        self.collector.flow_started(now, links, size)

    def flow_finished(
        self, now: float, links: tuple[str, ...], size: float, duration: float
    ) -> None:
        self.collector.flow_finished(now, links, size, duration)

    def flow_cancelled(
        self, now: float, links: tuple[str, ...], size: float, moved: float
    ) -> None:
        self.collector.flow_cancelled(now, links, size, moved)

    def rates_updated(self, now: float, link_rates: dict[str, float]) -> None:
        for link, allocated in link_rates.items():
            capacity = self._link_caps.get(link)
            if capacity is None:
                self._record(
                    now, "link-capacity", f"rate allocated on unregistered link {link}",
                    link=link,
                )
            elif allocated > capacity * (1.0 + _REL_EPS) + _ABS_EPS:
                self._record(
                    now,
                    "link-capacity",
                    f"link {link} oversubscribed: {allocated!r} B/s allocated"
                    f" against capacity {capacity!r}",
                    link=link,
                    allocated=allocated,
                    capacity=capacity,
                )
        self.collector.rates_updated(now, link_rates)

    # -- lifecycle -----------------------------------------------------------

    def finalize(self, now: float) -> None:
        """Close the trial; flag attempts that never terminated.

        The leftover-attempt check only applies to trials whose jobs all
        retired: an aborted trial legitimately strands parked attempts.
        """
        self.collector.finalize(now)
        if self._tracker is None or not self._tracker.finished:
            return
        for key in sorted(self._running, key=repr):
            job_id, task, ident, node = key
            if job_id in self._failed_jobs:
                continue
            info = self._running[key]
            self._record(
                now,
                "task-lifecycle",
                f"{task} attempt {info.get('attempt')} of task {ident!r}"
                f" (job {job_id}) on node {node} never terminated",
                node=node,
            )

    # -- bus subscriber --------------------------------------------------------

    def _on_event(self, event: ObsEvent) -> None:
        if event.time < self._last_event_time:
            self._record(
                event.time,
                "event-monotonicity",
                f"event {event.kind} at t={event.time!r} after"
                f" t={self._last_event_time!r}",
                kind=event.kind,
            )
        else:
            self._last_event_time = event.time
        handler = _HANDLERS.get(event.kind)
        if handler is not None:
            handler(self, event)

    # -- task lifecycle ---------------------------------------------------------

    @staticmethod
    def _task_ident(fields: dict) -> Any:
        if fields.get("task") == "map":
            return fields.get("block")
        return fields.get("reduce_index")

    def _on_task_launch(self, event: ObsEvent) -> None:
        fields = event.fields
        job_id = fields.get("job_id")
        if job_id in self._failed_jobs:
            return
        node = fields.get("node")
        task = fields.get("task")
        ident = self._task_ident(fields)
        task_key = (job_id, task, ident)
        slot_key = (job_id, task, ident, node)
        speculative = bool(fields.get("speculative"))
        if slot_key in self._running:
            self._record(
                event.time,
                "task-lifecycle",
                f"double assignment: {task} task {ident!r} of job {job_id}"
                f" launched on node {node} while already running there",
                node=node,
            )
        elif self._running_by_task.get(task_key) and not speculative:
            others = sorted(self._running_by_task[task_key])
            self._record(
                event.time,
                "task-lifecycle",
                f"non-speculative {task} attempt of task {ident!r} (job {job_id})"
                f" launched on node {node} while running on node(s) {others}",
                node=node,
            )
        if self._tracker is not None and (
            node in self._tracker.failed_nodes
            or (self._runtime is not None and node in self._runtime.crash_times)
        ):
            self._record(
                event.time,
                "task-lifecycle",
                f"task launched on dead node {node}",
                node=node,
            )
        self._running[slot_key] = {"attempt": fields.get("attempt"), "speculative": speculative}
        self._running_by_task.setdefault(task_key, set()).add(node)
        counter_key = (node, task)
        count = self._node_running.get(counter_key, 0) + 1
        self._node_running[counter_key] = count
        capacity = (
            self._map_capacity.get(node) if task == "map" else self._reduce_capacity.get(node)
        )
        if capacity is not None and count > capacity:
            self._record(
                event.time,
                "slot-accounting",
                f"node {node} runs {count} {task} attempts with only"
                f" {capacity} {task} slot(s)",
                node=node,
            )

    def _forget_attempt(self, slot_key: tuple) -> dict | None:
        info = self._running.pop(slot_key, None)
        if info is None:
            return None
        job_id, task, ident, node = slot_key
        nodes = self._running_by_task.get((job_id, task, ident))
        if nodes is not None:
            nodes.discard(node)
            if not nodes:
                self._running_by_task.pop((job_id, task, ident), None)
        counter_key = (node, task)
        self._node_running[counter_key] = self._node_running.get(counter_key, 1) - 1
        return info

    def _on_task_terminal(self, event: ObsEvent, lenient: bool) -> None:
        fields = event.fields
        job_id = fields.get("job_id")
        node = fields.get("node")
        task = fields.get("task")
        ident = self._task_ident(fields)
        info = self._forget_attempt((job_id, task, ident, node))
        if info is None and not lenient and job_id not in self._failed_jobs:
            self._record(
                event.time,
                "task-lifecycle",
                f"{event.kind} for {task} task {ident!r} (job {job_id}) on node"
                f" {node} that has no running attempt -- terminated twice?",
                node=node,
            )

    def _on_task_finish(self, event: ObsEvent) -> None:
        self._on_task_terminal(event, lenient=False)

    def _on_task_kill(self, event: ObsEvent) -> None:
        self._on_task_terminal(event, lenient=False)

    def _on_task_requeue(self, event: ObsEvent) -> None:
        # A requeue is terminal only when the attempt is still running (the
        # degraded-fetch give-up path); after a kill or a crash the master
        # requeues an attempt the monitor already retired -- that is fine.
        self._on_task_terminal(event, lenient=True)

    def _on_job_fail(self, event: ObsEvent) -> None:
        job_id = event.fields.get("job_id")
        self._failed_jobs.add(job_id)
        # The master interrupts the job's attempts wholesale; the kills land
        # after this event, so retire them here and exempt stragglers.
        for slot_key in [key for key in self._running if key[0] == job_id]:
            self._forget_attempt(slot_key)

    # -- scheduler postconditions ----------------------------------------------

    def _on_sched_decision(self, event: ObsEvent) -> None:
        fields = event.fields
        action = fields.get("action")
        reason = fields.get("reason")
        if action == "assign" and reason == "degraded-first":
            self._check_pacing_assign(event)
            if "slave_ok" in fields:
                self._check_guard_assign(event)
        elif action == "skip-degraded" and reason == "pacing":
            self._check_pacing_skip(event)
        elif action == "skip-degraded" and reason in ("slave-guard", "rack-guard"):
            self._check_guard_skip(event)

    @staticmethod
    def _pacing_values(fields: dict):
        values = tuple(fields.get(name) for name in ("m", "M", "m_d", "M_d"))
        return None if any(value is None for value in values) else values

    def _check_pacing_assign(self, event: ObsEvent) -> None:
        values = self._pacing_values(event.fields)
        if values is None:
            return
        m, M, m_d, M_d = values  # noqa: N806 - paper notation
        if M_d == 0 or m * M_d < m_d * M:
            self._record(
                event.time,
                "bdf-pacing",
                f"degraded launch violates m/M >= m_d/M_d:"
                f" m={m} M={M} m_d={m_d} M_d={M_d}",
                node=event.fields.get("node"),
                job_id=event.fields.get("job_id"),
            )

    def _check_pacing_skip(self, event: ObsEvent) -> None:
        values = self._pacing_values(event.fields)
        if values is None:
            return
        m, M, m_d, M_d = values  # noqa: N806 - paper notation
        if M_d != 0 and m * M_d >= m_d * M:
            self._record(
                event.time,
                "bdf-pacing",
                f"degraded launch skipped as 'pacing' although m/M >= m_d/M_d"
                f" holds: m={m} M={M} m_d={m_d} M_d={M_d}",
                node=event.fields.get("node"),
                job_id=event.fields.get("job_id"),
            )

    def _check_guard_assign(self, event: ObsEvent) -> None:
        fields = event.fields
        if not fields.get("slave_ok") or not fields.get("rack_ok"):
            self._record(
                event.time,
                "edf-guard",
                "degraded task assigned although a guard rejected"
                f" (slave_ok={fields.get('slave_ok')} rack_ok={fields.get('rack_ok')})",
                node=fields.get("node"),
            )
        self._check_guard_consistency(event)

    def _check_guard_skip(self, event: ObsEvent) -> None:
        fields = event.fields
        reason = fields.get("reason")
        rejected_by = fields.get("rejected_by")
        if reason == "slave-guard" and (rejected_by != "slave" or fields.get("slave_ok")):
            self._record(
                event.time,
                "edf-guard",
                f"skip blamed on the slave guard but slave_ok="
                f"{fields.get('slave_ok')} rejected_by={rejected_by!r}",
                node=fields.get("node"),
            )
        if reason == "rack-guard" and (
            rejected_by != "rack" or fields.get("rack_ok") or not fields.get("slave_ok")
        ):
            self._record(
                event.time,
                "edf-guard",
                f"skip blamed on the rack guard but slave_ok={fields.get('slave_ok')}"
                f" rack_ok={fields.get('rack_ok')} rejected_by={rejected_by!r}",
                node=fields.get("node"),
            )
        self._check_guard_consistency(event)

    def _check_guard_consistency(self, event: ObsEvent) -> None:
        """The traced guard verdicts must match the traced quantities.

        Each guard is checked independently, and only when its quantities
        are present: the ablation variants (``EDF-SLAVE`` / ``EDF-RACK``)
        disable one guard and omit its quantities from the trace -- a
        verdict with no quantities behind it is "guard disabled", not an
        inconsistency.
        """
        fields = event.fields
        if all(name in fields for name in ("t_s", "mean_t_s", "slave_ok")):
            expected_slave = fields["t_s"] <= fields["mean_t_s"] + _GUARD_EPS
            if bool(fields["slave_ok"]) != expected_slave:
                self._record(
                    event.time,
                    "edf-guard",
                    f"ASSIGNTOSLAVE verdict {fields['slave_ok']} inconsistent with"
                    f" t_s={fields['t_s']!r} E[t_s]={fields['mean_t_s']!r}",
                    node=fields.get("node"),
                )
        if all(name in fields for name in ("t_r", "mean_t_r", "rack_threshold", "rack_ok")):
            expected_rack = fields["t_r"] >= min(fields["mean_t_r"], fields["rack_threshold"])
            if bool(fields["rack_ok"]) != expected_rack:
                self._record(
                    event.time,
                    "edf-guard",
                    f"ASSIGNTORACK verdict {fields['rack_ok']} inconsistent with"
                    f" t_r={fields['t_r']!r} E[t_r]={fields['mean_t_r']!r}"
                    f" threshold={fields['rack_threshold']!r}",
                    node=fields.get("node"),
                )

    # -- stripe conservation -----------------------------------------------------

    def _stripe_of(self, fields: dict) -> BlockId | None:
        if self._block_map is None:
            return None
        name = fields.get("block")
        if not isinstance(name, str):
            return None
        return _parse_block(name, self._block_map.params.k)

    def _on_degraded_start(self, event: ObsEvent) -> None:
        if self._block_map is None:
            return
        surviving = event.fields.get("surviving_blocks")
        k = self._block_map.params.k
        if surviving is not None and surviving < k:
            self._record(
                event.time,
                "stripe-conservation",
                f"degraded read planned with {surviving} sources, fewer than k={k}",
                block=event.fields.get("block"),
                node=event.fields.get("node"),
            )

    def _on_degraded_park(self, event: ObsEvent) -> None:
        block = self._stripe_of(event.fields)
        if block is None or self._tracker is None:
            return
        dead = set(self._tracker.failed_nodes)
        if self._runtime is not None:
            dead |= set(self._runtime.crash_times)
        if self._block_map.is_decodable(block.stripe_id, dead):
            self._record(
                event.time,
                "stripe-conservation",
                f"task parked on stripe {block.stripe_id} although it is still"
                f" decodable under the dead set {sorted(dead)}",
                block=event.fields.get("block"),
                node=event.fields.get("node"),
            )

    def _dead_and_blacklisted(self) -> set[int]:
        dead = set(self._tracker.failed_nodes) | set(self._tracker.blacklisted)
        if self._runtime is not None:
            dead |= set(self._runtime.crash_times)
        return dead

    def _on_repair_start(self, event: ObsEvent) -> None:
        fields = event.fields
        block = self._stripe_of(fields)
        if block is None or self._tracker is None:
            return
        sources = fields.get("sources") or []
        destination = fields.get("destination")
        k = self._block_map.params.k
        # The emitted sources are the network transfers only; readable
        # same-stripe units already on the destination are fetched locally
        # and still count toward the k the decode needs.
        local = sum(
            1
            for stored in self._block_map.readable_stripe_blocks(
                block.stripe_id, self._tracker.failed_nodes
            )
            if stored.node_id == destination and stored.block != block
        )
        if len(sources) + local < k:
            self._record(
                event.time,
                "stripe-conservation",
                f"repair launched with {len(sources)} remote + {local} local"
                f" source(s), fewer than k={k}",
                block=fields.get("block"),
            )
        # The planner only doubles up (destination already inside the
        # stripe) when every live, non-blacklisted node holds a same-stripe
        # unit; remember that so repair.end can exempt it.
        stripe_nodes = {
            stored.node_id
            for stored in self._block_map.stripe_blocks(block.stripe_id)
            if stored.block != block
        }
        stripe_nodes |= {
            other_destination
            for name, (stripe, other_destination) in self._repairing.items()
            if stripe == block.stripe_id and name != str(block)
        }
        self._repairing[str(block)] = (block.stripe_id, destination)
        unavailable = self._dead_and_blacklisted()
        live = {
            node.node_id
            for node in self._tracker.topology.nodes
            if node.node_id not in unavailable
        }
        if live and live <= stripe_nodes:
            self._forced_doubleup.add(str(block))
        # Sources are per-block transfers, so a node may repeat — but only
        # as many times as it actually holds distinct readable same-stripe
        # units (it can after a forced double-up on an earlier repair).
        held: dict[int, int] = {}
        for stored in self._block_map.readable_stripe_blocks(
            block.stripe_id, self._tracker.failed_nodes
        ):
            if stored.block != block:
                held[stored.node_id] = held.get(stored.node_id, 0) + 1
        drawn: dict[int, int] = {}
        for source in sources:
            drawn[source] = drawn.get(source, 0) + 1
        for source, count in drawn.items():
            if count > held.get(source, 0):
                self._record(
                    event.time,
                    "stripe-conservation",
                    f"repair draws {count} source unit(s) from node {source},"
                    f" which holds only {held.get(source, 0)} readable"
                    f" same-stripe unit(s)",
                    block=fields.get("block"),
                )
        if fields.get("destination") in sources:
            self._record(
                event.time,
                "stripe-conservation",
                f"repair destination {fields.get('destination')} is also a source",
                block=fields.get("block"),
            )

    def _on_repair_end(self, event: ObsEvent) -> None:
        block = self._stripe_of(event.fields)
        if block is None:
            return
        destination = event.fields.get("destination")
        forced = str(block) in self._forced_doubleup
        self._forced_doubleup.discard(str(block))
        self._repairing.pop(str(block), None)
        for stored in self._block_map.stripe_blocks(block.stripe_id):
            if stored.block == block:
                if stored.node_id != destination:
                    self._record(
                        event.time,
                        "stripe-conservation",
                        f"repaired block {block} recorded on node {stored.node_id},"
                        f" not the repair destination {destination}",
                        block=str(block),
                    )
            elif stored.node_id == destination and not forced:
                self._record(
                    event.time,
                    "stripe-conservation",
                    f"repair landed {block} on node {destination} which already"
                    f" holds same-stripe unit {stored.block} although another"
                    f" live node held none of this stripe",
                    block=str(block),
                    node=destination,
                )
        if self._block_map.is_corrupt(block):
            self._record(
                event.time,
                "stripe-conservation",
                f"block {block} still marked corrupt after repair",
                block=str(block),
            )

    def _on_repair_backlog(self, event: ObsEvent) -> None:
        fields = event.fields
        depth = fields.get("depth")
        if depth is None:
            return
        queued, in_flight = fields.get("queued"), fields.get("in_flight")
        if depth < 0:
            self._record(
                event.time,
                "backlog-boundedness",
                f"repair backlog depth {depth} is negative",
            )
        if queued is not None and in_flight is not None and depth != queued + in_flight:
            self._record(
                event.time,
                "backlog-boundedness",
                f"repair backlog depth {depth} != queued {queued}"
                f" + in-flight {in_flight}",
            )
        if self._block_map is not None:
            total = self._block_map.num_stripes * self._block_map.params.n
            if depth > total:
                self._record(
                    event.time,
                    "backlog-boundedness",
                    f"repair backlog depth {depth} exceeds the {total} stored"
                    " blocks -- a block is queued more than once",
                )

    def _on_block_corrupt(self, event: ObsEvent) -> None:
        block = self._stripe_of(event.fields)
        if block is None:
            return
        if not self._block_map.is_corrupt(block):
            self._record(
                event.time,
                "stripe-conservation",
                f"corruption reported for {block} but the block map holds it clean",
                block=str(block),
            )

    def _on_heartbeat(self, event: ObsEvent) -> None:
        if self._tracker is None:
            return
        node = event.fields.get("node")
        if node in self._tracker.failed_nodes or (
            self._runtime is not None and node in self._runtime.crash_times
        ):
            self._record(
                event.time,
                "task-lifecycle",
                f"heartbeat received from dead node {node}",
                node=node,
            )


_HANDLERS = {
    "task.launch": InvariantMonitor._on_task_launch,
    "task.finish": InvariantMonitor._on_task_finish,
    "task.kill": InvariantMonitor._on_task_kill,
    "task.requeue": InvariantMonitor._on_task_requeue,
    "job.fail": InvariantMonitor._on_job_fail,
    "sched.decision": InvariantMonitor._on_sched_decision,
    "degraded.start": InvariantMonitor._on_degraded_start,
    "degraded.park": InvariantMonitor._on_degraded_park,
    "repair.start": InvariantMonitor._on_repair_start,
    "repair.end": InvariantMonitor._on_repair_end,
    "repair.backlog": InvariantMonitor._on_repair_backlog,
    "block.corrupt": InvariantMonitor._on_block_corrupt,
    "heartbeat": InvariantMonitor._on_heartbeat,
}
