"""Discrete-event simulation substrate.

A small, deterministic, generator-based discrete-event engine in the spirit
of the CSIM20 library the paper's simulator was built on:

* :mod:`repro.sim.engine` -- the event heap, virtual clock and
  generator-based processes.
* :mod:`repro.sim.resources` -- counting semaphores (slots), fluid max-min
  fair links, and exclusive-hold links.
* :mod:`repro.sim.rng` -- named, independently seeded random streams so that
  experiments are reproducible and insensitive to the order in which
  components draw randomness.
"""

from repro.sim.engine import Event, Interrupt, Process, Simulator, Timeout
from repro.sim.resources import ExclusivePathNetwork, FluidNetwork, Semaphore
from repro.sim.rng import RngStreams

__all__ = [
    "Event",
    "ExclusivePathNetwork",
    "FluidNetwork",
    "Interrupt",
    "Process",
    "RngStreams",
    "Semaphore",
    "Simulator",
    "Timeout",
]
