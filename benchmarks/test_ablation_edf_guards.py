"""Ablation: EDF's two admission guards, separately and together.

Compares BDF (no guards), EDF-SLAVE (locality preservation only), EDF-RACK
(rack awareness only) and EDF (both) on the heterogeneous cluster, where
the guards matter most (Figure 8's analysis).

Expected: every guarded variant is at least as good as BDF on average, and
full EDF is the best or statistically tied for best.
"""

from __future__ import annotations

import statistics

from conftest import one_shot
from repro.experiments.common import default_seeds, run_many
from repro.experiments.fig8_bdf_edf import heterogeneous_config

SCHEDULERS = ("BDF", "EDF-SLAVE", "EDF-RACK", "EDF")


def run_ablation() -> dict[str, float]:
    seeds = default_seeds()
    base = heterogeneous_config()
    configs = [
        base.with_scheduler(name).with_seed(seed)
        for seed in seeds
        for name in SCHEDULERS
    ]
    results = run_many(configs)
    means: dict[str, list[float]] = {name: [] for name in SCHEDULERS}
    for config, result in zip(configs, results):
        means[config.scheduler].append(result.job(0).runtime)
    return {name: statistics.mean(samples) for name, samples in means.items()}


def test_ablation_edf_guards(benchmark):
    means = one_shot(benchmark, run_ablation)
    print("\nAblation: EDF guards on the heterogeneous cluster (mean runtime, s)")
    for name in SCHEDULERS:
        print(f"  {name:>10}: {means[name]:8.1f}")
    # Each guard alone should not hurt materially; both together should not
    # lose to no-guards by more than noise.
    assert means["EDF"] <= means["BDF"] * 1.05
    assert means["EDF-SLAVE"] <= means["BDF"] * 1.08
    assert means["EDF-RACK"] <= means["BDF"] * 1.08
