"""Unit tests for the shared experiment plumbing."""

from __future__ import annotations


import pytest

from repro.cluster.network import MB
from repro.ec.codec import CodeParams
from repro.experiments.common import (
    ExperimentTable,
    NormalizationError,
    default_seeds,
    max_workers,
    normalized_runtimes,
    run_failure_and_normal,
)
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.metrics import JobMetrics


def tiny_config() -> SimulationConfig:
    return SimulationConfig(
        num_nodes=6,
        num_racks=2,
        map_slots=2,
        code=CodeParams(4, 2),
        block_size=16 * MB,
        jobs=(JobConfig(num_blocks=24, num_reduce_tasks=2),),
        seed=0,
    )


class TestEnvKnobs:
    def test_default_seeds_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "7")
        assert default_seeds() == list(range(7))

    def test_default_seeds_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "0")
        with pytest.raises(ValueError):
            default_seeds()

    def test_default_seeds_paper(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEEDS", raising=False)
        assert len(default_seeds()) == 30

    def test_max_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert max_workers() == 3

    def test_max_workers_zero_raises(self, monkeypatch):
        # Consistency with REPRO_SEEDS: a nonsensical override is an error
        # naming the variable, not a silent clamp to one worker.
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_WORKERS must be positive"):
            max_workers()

    def test_max_workers_negative_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ValueError, match="REPRO_WORKERS must be positive"):
            max_workers()

    def test_malformed_seeds_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "thirty")
        with pytest.raises(ValueError, match="REPRO_SEEDS.*'thirty'"):
            default_seeds()

    def test_malformed_workers_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2.5")
        with pytest.raises(ValueError, match="REPRO_WORKERS.*'2.5'"):
            max_workers()


class TestRunFailureAndNormal:
    def test_grouping(self):
        grouped = run_failure_and_normal(tiny_config(), ("LF", "EDF"), seeds=[0, 1])
        assert set(grouped) == {"LF", "EDF", "normal"}
        for results in grouped.values():
            assert len(results) == 2

    def test_normal_runs_have_no_failures(self):
        grouped = run_failure_and_normal(tiny_config(), ("LF",), seeds=[0])
        assert grouped["normal"][0].failed_nodes == frozenset()
        assert grouped["LF"][0].failed_nodes != frozenset()

    def test_normalized_runtimes_above_one(self):
        grouped = run_failure_and_normal(tiny_config(), ("LF",), seeds=[0, 1])
        normalized = normalized_runtimes(grouped)
        assert set(normalized) == {"LF"}
        for value in normalized["LF"]:
            assert value > 1.0


class _FakeResult:
    """Just enough of a SimulationResult for normalized_runtimes."""

    def __init__(self, runtime: float, failed: bool = False) -> None:
        self._job = JobMetrics(
            job_id=0,
            submit_time=0.0,
            first_launch_time=0.0,
            finish_time=runtime,
            failed=failed,
        )

    def job(self, job_id: int) -> JobMetrics:
        return self._job


class TestNormalizationGuard:
    def test_zero_reference_raises_named_error(self):
        grouped = {
            "LF": [_FakeResult(10.0), _FakeResult(12.0)],
            "normal": [_FakeResult(8.0), _FakeResult(0.0)],
        }
        with pytest.raises(NormalizationError, match="sample 1"):
            normalized_runtimes(grouped)

    def test_seed_named_when_seeds_given(self):
        grouped = {
            "LF": [_FakeResult(10.0), _FakeResult(12.0)],
            "normal": [_FakeResult(8.0), _FakeResult(0.0)],
        }
        with pytest.raises(NormalizationError, match="seed 11"):
            normalized_runtimes(grouped, seeds=[7, 11])

    def test_failed_reference_raises(self):
        grouped = {
            "LF": [_FakeResult(10.0)],
            "normal": [_FakeResult(8.0, failed=True)],
        }
        with pytest.raises(NormalizationError, match="failed job"):
            normalized_runtimes(grouped)

    def test_nan_reference_raises(self):
        grouped = {
            "LF": [_FakeResult(10.0)],
            "normal": [_FakeResult(float("nan"))],
        }
        with pytest.raises(NormalizationError):
            normalized_runtimes(grouped)

    def test_healthy_references_pass(self):
        grouped = {
            "LF": [_FakeResult(10.0), _FakeResult(12.0)],
            "normal": [_FakeResult(8.0), _FakeResult(6.0)],
        }
        normalized = normalized_runtimes(grouped)
        assert normalized["LF"] == [pytest.approx(1.25), pytest.approx(2.0)]


class TestExperimentTable:
    def test_add_row_and_format(self):
        table = ExperimentTable("demo")
        table.add_row("x", {"LF": [1.0, 2.0, 3.0], "EDF": [0.5, 1.0, 1.5]})
        text = table.format()
        assert "demo" in text
        assert "LF: median=2.000" in text
        assert "EDF: median=1.000" in text

    def test_reduction(self):
        table = ExperimentTable("demo")
        table.add_row("x", {"LF": [2.0, 2.0], "EDF": [1.0, 1.0]})
        assert table.reduction("x", "LF", "EDF") == pytest.approx(0.5)

    def test_notes_rendered(self):
        table = ExperimentTable("demo", notes=["caveat"])
        assert "note: caveat" in table.format()
