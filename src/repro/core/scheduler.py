"""The heartbeat-driven scheduler interface.

Every scheduling decision in the paper happens inside the master's response
to a slave heartbeat: the slave reports how many map and reduce slots it has
free, and the scheduler hands back assignments.  The three algorithms differ
only in how they fill *map* slots; reduce slots are filled identically
(FIFO over jobs, subject to the slow-start rule), so that logic lives in the
base class.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology
from repro.core.tasks import JobTaskState
from repro.mapreduce.job import (
    MapAssignment,
    MapTaskCategory,
    ReduceAssignment,
)
from repro.storage.block import BlockId


@dataclass
class SchedulerContext:
    """Cluster-level facts schedulers need beyond per-job state.

    Parameters
    ----------
    topology:
        The cluster layout.
    live_nodes:
        Node ids that are up (failed nodes never heartbeat).  The master
        mutates this set in place on failure/recovery, so policies always
        see the current membership.
    expected_degraded_read_time:
        The analysis estimate ``(R-1) k S / (R W)`` used as the
        rack-awareness threshold in EDF.  Computed once at trial start and
        *intentionally* never recomputed when the live-node count changes
        mid-trial: every term -- rack count ``R``, stripe width ``k``,
        block size ``S``, cross-rack bandwidth ``W`` -- is a static
        property of the cluster and the code, not of which nodes happen to
        be up, so there is nothing to recompute (a surviving node doing a
        degraded read still fans in over ``k`` surviving-rack sources and
        still shares the same rack downlink).  A regression test pins this
        (``tests/unit/test_context_view.py``).
    map_time_mean:
        Mean map processing time, used to estimate local backlogs.
    reduce_slowstart:
        Fraction of maps that must complete before reducers launch.

    Beyond the raw fields, the context offers the *cluster view* helpers a
    policy needs to make global decisions: per-node backlog estimates
    (:meth:`node_backlog`, :meth:`node_backlog_time`), rack occupancy
    (:meth:`rack_occupancy`), a degraded-task census
    (:meth:`degraded_census`), and node-capability lookups
    (:meth:`speed_factor`, :meth:`map_slots_of`, :meth:`mean_speed_factor`).
    All of them are pure queries over ``topology`` and the jobs passed in --
    they never mutate scheduling state, so calling them cannot perturb a
    trial.
    """

    topology: ClusterTopology
    live_nodes: frozenset[int]
    expected_degraded_read_time: float
    map_time_mean: float
    reduce_slowstart: float

    # -- cluster-view helpers ---------------------------------------------------

    def speed_factor(self, node_id: int) -> float:
        """Relative processing speed of ``node_id`` (1.0 = baseline)."""
        return self.topology.node(node_id).speed_factor

    def map_slots_of(self, node_id: int) -> int:
        """Configured map slots of ``node_id`` (at least 1 for estimates)."""
        return max(self.topology.node(node_id).map_slots, 1)

    def mean_speed_factor(self) -> float:
        """Mean speed factor over live nodes (1.0 on an empty cluster)."""
        live = self.live_nodes
        if not live:
            return 1.0
        return sum(self.speed_factor(node_id) for node_id in live) / len(live)

    def node_backlog(self, jobs: list[JobTaskState], node_id: int) -> int:
        """Pending node-local map tasks stored on ``node_id``, over all jobs."""
        return sum(job.pending_node_local_count(node_id) for job in jobs)

    def node_backlog_time(self, jobs: list[JobTaskState], node_id: int) -> float:
        """Estimated seconds for ``node_id`` to drain its local backlog.

        ``backlog * T / (slots * speed)`` -- the same estimate EDF's
        locality-preservation guard uses, summed across jobs.
        """
        backlog = self.node_backlog(jobs, node_id)
        node = self.topology.node(node_id)
        slots = max(node.map_slots, 1)
        return backlog * self.map_time_mean / (slots * node.speed_factor)

    def rack_occupancy(self, jobs: list[JobTaskState]) -> dict[int, int]:
        """Pending normal (non-degraded) map tasks per rack, over all jobs."""
        occupancy: dict[int, int] = {
            rack.rack_id: 0 for rack in self.topology.racks
        }
        for job in jobs:
            for rack_id in occupancy:
                occupancy[rack_id] += job.pending_rack_count(rack_id)
        return occupancy

    def degraded_census(self, jobs: list[JobTaskState]) -> dict[int, int]:
        """Pending (unassigned) degraded map tasks per job id."""
        return {job.job_id: job.pending_degraded_count() for job in jobs}


class Scheduler(ABC):
    """Base class: reduce-slot filling plus the map-assignment hook.

    Decision tracing: when :attr:`bus` is set (an
    :class:`~repro.obs.events.EventBus`, attached by ``run_simulation`` for
    instrumented trials), every assignment decision -- including rejected
    degraded launches and the guard/pacing values behind them -- is emitted
    as a ``sched.decision`` event.  With ``bus is None`` (the default)
    tracing costs nothing.
    """

    #: Registry name, overridden by subclasses.
    name = "abstract"

    def __init__(self, context: SchedulerContext) -> None:
        self.context = context
        #: Optional event bus for decision tracing (None = tracing off).
        self.bus = None
        #: Guard values of the most recent ``_degraded_guards`` evaluation,
        #: populated only while tracing (see EnhancedDegradedFirstScheduler).
        self.last_guard_trace: dict | None = None

    def assign(
        self,
        slave_id: int,
        free_map_slots: int,
        free_reduce_slots: int,
        jobs: list[JobTaskState],
        now: float,
    ) -> tuple[list[MapAssignment], list[ReduceAssignment]]:
        """Respond to one heartbeat with map and reduce assignments."""
        maps = self.assign_maps(slave_id, free_map_slots, jobs, now)
        reduces = self._assign_reduces(slave_id, free_reduce_slots, jobs)
        return maps, reduces

    @abstractmethod
    def assign_maps(
        self,
        slave_id: int,
        free_map_slots: int,
        jobs: list[JobTaskState],
        now: float,
    ) -> list[MapAssignment]:
        """Fill up to ``free_map_slots`` map slots of ``slave_id``."""

    def _assign_reduces(
        self, slave_id: int, free_reduce_slots: int, jobs: list[JobTaskState]
    ) -> list[ReduceAssignment]:
        assignments: list[ReduceAssignment] = []
        for job in jobs:
            while free_reduce_slots > 0 and job.reduce_ready(self.context.reduce_slowstart):
                index = job.pop_reduce()
                if index is None:
                    break
                assignments.append(
                    ReduceAssignment(job_id=job.job_id, reduce_index=index, slave_id=slave_id)
                )
                free_reduce_slots -= 1
            if free_reduce_slots == 0:
                break
        return assignments

    # -- decision tracing -------------------------------------------------------

    def trace_decision(self, now: float, slave_id: int, **fields) -> None:
        """Emit one ``sched.decision`` event (no-op unless tracing is on)."""
        if self.bus is None:
            return
        self.bus.emit(
            "sched.decision", now, scheduler=self.name, node=slave_id, **fields
        )

    @staticmethod
    def pacing_fields(job: JobTaskState) -> dict:
        """The paper's pacing state ``m/M`` vs ``m_d/M_d`` at decision time."""
        return {
            "m": job.m,
            "M": job.M,
            "m_d": job.m_d,
            "M_d": job.M_d,
            "launched_fraction": job.m / job.M if job.M else None,
            "degraded_fraction": job.m_d / job.M_d if job.M_d else None,
        }

    # -- shared helpers for subclasses ----------------------------------------

    def _make_map_assignment(
        self, job: JobTaskState, slave_id: int, block: BlockId, category: MapTaskCategory
    ) -> MapAssignment:
        return MapAssignment(
            job_id=job.job_id, block=block, category=category, slave_id=slave_id
        )

    def _try_local(self, job: JobTaskState, slave_id: int) -> MapAssignment | None:
        """Pop a local (node- or rack-local) task of ``job`` for ``slave_id``."""
        picked = job.pop_local(slave_id)
        if picked is None:
            return None
        block, node_local = picked
        category = MapTaskCategory.NODE_LOCAL if node_local else MapTaskCategory.RACK_LOCAL
        return self._make_map_assignment(job, slave_id, block, category)

    def _try_remote(self, job: JobTaskState, slave_id: int) -> MapAssignment | None:
        """Pop a remote task of ``job`` for ``slave_id``."""
        block = job.pop_remote(slave_id)
        if block is None:
            return None
        return self._make_map_assignment(job, slave_id, block, MapTaskCategory.REMOTE)

    def _try_degraded(self, job: JobTaskState, slave_id: int) -> MapAssignment | None:
        """Pop a degraded task of ``job``."""
        block = job.pop_degraded()
        if block is None:
            return None
        return self._make_map_assignment(job, slave_id, block, MapTaskCategory.DEGRADED)


class PolicyRegistry:
    """Name → scheduler-class registry behind every policy lookup.

    One shared instance (:data:`POLICIES`) backs ``SimulationConfig``
    validation, the CLI (``--policy`` / ``repro policies list``), the
    testbed, the fuzzer's policy axis and the tournament harness.  Built-in
    policies load lazily on first use (avoiding import cycles); third-party
    policies join via :meth:`register` and are then accepted everywhere a
    policy name is -- and covered by the conformance suite for free.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, type[Scheduler]] = {}
        self._builtins_loaded = False

    # -- population -------------------------------------------------------------

    def _ensure_builtins(self) -> None:
        if self._builtins_loaded:
            return
        from repro.core.degraded_first import BasicDegradedFirstScheduler
        from repro.core.enhanced import EnhancedDegradedFirstScheduler
        from repro.core.extras import ABLATION_SCHEDULERS
        from repro.core.locality_first import LocalityFirstScheduler
        from repro.core.zoo import ZOO_SCHEDULERS

        for scheduler_cls in (
            LocalityFirstScheduler,
            BasicDegradedFirstScheduler,
            EnhancedDegradedFirstScheduler,
            *ABLATION_SCHEDULERS,
            *ZOO_SCHEDULERS,
        ):
            self._by_name.setdefault(scheduler_cls.name, scheduler_cls)
        self._builtins_loaded = True

    def register(self, scheduler_cls: type[Scheduler]) -> None:
        """Add a scheduler class under its ``name`` attribute.

        Rejects the abstract/empty name and name collisions with a
        different class; re-registering the same class is a no-op.
        """
        self._ensure_builtins()
        if not scheduler_cls.name or scheduler_cls.name == Scheduler.name:
            raise ValueError("custom schedulers must set a distinct `name` attribute")
        existing = self._by_name.get(scheduler_cls.name)
        if existing is not None and existing is not scheduler_cls:
            raise ValueError(f"scheduler name {scheduler_cls.name!r} is already taken")
        self._by_name[scheduler_cls.name] = scheduler_cls

    # -- lookup -----------------------------------------------------------------

    def names(self) -> list[str]:
        """Registered policy names, sorted."""
        self._ensure_builtins()
        return sorted(self._by_name)

    def resolve(self, name: str) -> str:
        """Canonical registered name for ``name``, matched case-insensitively.

        Raises ``ValueError`` for unknown names, listing the alternatives.
        """
        self._ensure_builtins()
        if name in self._by_name:
            return name
        folded = name.casefold()
        for registered in self._by_name:
            if registered.casefold() == folded:
                return registered
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(self._by_name)}"
        )

    def get(self, name: str) -> type[Scheduler]:
        """The scheduler class registered under ``name`` (exact match)."""
        self._ensure_builtins()
        try:
            return self._by_name[name]
        except KeyError:
            raise ValueError(
                f"unknown scheduler {name!r}; choose from {sorted(self._by_name)}"
            ) from None

    def create(self, name: str, context: SchedulerContext) -> Scheduler:
        """Instantiate the policy registered under ``name``."""
        return self.get(name)(context)

    def describe(self, name: str) -> str:
        """One-line summary of a policy (first line of its class docstring)."""
        doc = self.get(name).__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""

    def catalog(self) -> list[tuple[str, str]]:
        """``(name, summary)`` pairs for every registered policy, sorted."""
        return [(name, self.describe(name)) for name in self.names()]


#: The process-wide policy registry.
POLICIES = PolicyRegistry()


def register_scheduler(scheduler_cls: type[Scheduler]) -> None:
    """Add a custom scheduler class to the registry under its ``name``.

    Once registered, the name is accepted anywhere a scheduler name is
    (``SimulationConfig.scheduler``, the testbed, the CLI) and the policy
    is automatically exercised by the conformance suite and tournament.
    """
    POLICIES.register(scheduler_cls)


def registered_schedulers() -> list[str]:
    """Names currently accepted by :func:`make_scheduler`."""
    return POLICIES.names()


def make_scheduler(name: str, context: SchedulerContext) -> Scheduler:
    """Instantiate a scheduler by registry name (``LF``, ``BDF``, ``EDF``, ...)."""
    return POLICIES.create(name, context)
