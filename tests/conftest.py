"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def sim() -> Simulator:
    """A fresh discrete-event engine."""
    return Simulator()


@pytest.fixture
def rng() -> RngStreams:
    """Deterministic random streams."""
    return RngStreams(1234)


@pytest.fixture
def small_topology() -> ClusterTopology:
    """Two racks of three nodes, two map slots each."""
    return ClusterTopology.from_rack_sizes([3, 3], map_slots=2, reduce_slots=1)


@pytest.fixture
def paper_example_topology() -> ClusterTopology:
    """The motivating example's five-node, two-rack cluster."""
    return ClusterTopology.from_rack_sizes([3, 2], map_slots=2, reduce_slots=0)


@pytest.fixture
def code_4_2() -> CodeParams:
    """The (4, 2) code of the paper's examples."""
    return CodeParams(4, 2)


@pytest.fixture
def code_6_4() -> CodeParams:
    """A (6, 4) code: two parity blocks, wider stripes."""
    return CodeParams(6, 4)
