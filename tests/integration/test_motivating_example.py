"""The paper's motivating example, asserted event by event (Figure 3)."""

from __future__ import annotations

import pytest

from repro.experiments.fig3_motivating import (
    degraded_first_schedule,
    locality_first_schedule,
    map_phase_duration,
    run_schedule,
)


class TestLocalityFirstTimeline:
    @pytest.fixture(scope="class")
    def timings(self):
        return run_schedule(locality_first_schedule())

    def test_map_phase_is_40s(self, timings):
        assert map_phase_duration(timings) == pytest.approx(40.0)

    def test_locals_finish_by_10s(self, timings):
        locals_ = [t for t in timings if t.download_done == t.launch]
        assert len(locals_) == 8
        assert all(t.finish == pytest.approx(10.0) for t in locals_)

    def test_degraded_start_after_locals(self, timings):
        degraded = [t for t in timings if t.download_done > t.launch]
        assert len(degraded) == 4
        assert all(t.launch == pytest.approx(10.0) for t in degraded)

    def test_rack0_downloads_contend(self, timings):
        """Nodes 2 and 3 (ids 1, 2) halve each other's bandwidth: 20 s."""
        for node_id in (1, 2):
            (task,) = [t for t in timings if t.node == node_id and t.download_done > t.launch]
            assert task.download_done - task.launch == pytest.approx(20.0)

    def test_rack1_downloads_uncontended(self, timings):
        for node_id in (3, 4):
            (task,) = [t for t in timings if t.node == node_id and t.download_done > t.launch]
            assert task.download_done - task.launch == pytest.approx(10.0)


class TestDegradedFirstTimeline:
    @pytest.fixture(scope="class")
    def timings(self):
        return run_schedule(degraded_first_schedule())

    def test_map_phase_is_30s(self, timings):
        assert map_phase_duration(timings) == pytest.approx(30.0)

    def test_no_download_contention(self, timings):
        degraded = [t for t in timings if t.download_done > t.launch]
        assert len(degraded) == 4
        for task in degraded:
            assert task.download_done - task.launch == pytest.approx(10.0)

    def test_early_degraded_tasks_start_at_zero(self, timings):
        early = [t for t in timings if t.download_done > t.launch and t.launch == 0.0]
        assert len(early) == 2

    def test_saving_is_25_percent(self):
        lf = map_phase_duration(run_schedule(locality_first_schedule()))
        df = map_phase_duration(run_schedule(degraded_first_schedule()))
        assert (lf - df) / lf == pytest.approx(0.25)
