"""Unit tests for semaphores, fluid links, and exclusive links."""

from __future__ import annotations

import pytest

from repro.sim.engine import Timeout
from repro.sim.resources import ExclusivePathNetwork, FluidNetwork, Semaphore


def record_transfer(sim, network, links, size, log, label):
    def process():
        yield network.transfer(links, size)
        log.append((label, sim.now))

    sim.spawn(process())


class TestSemaphore:
    def test_grants_up_to_capacity(self, sim):
        sem = Semaphore(sim, 2)
        assert sem.acquire().fired
        assert sem.acquire().fired
        third = sem.acquire()
        assert not third.fired
        assert sem.queue_length == 1
        sem.release()
        assert third.fired

    def test_release_above_capacity(self, sim):
        sem = Semaphore(sim, 1)
        with pytest.raises(ValueError):
            sem.release()

    def test_try_acquire(self, sim):
        sem = Semaphore(sim, 1)
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.try_acquire()

    def test_negative_capacity(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, -1)

    def test_fifo_order(self, sim):
        sem = Semaphore(sim, 0)
        first = sem.acquire()
        second = sem.acquire()
        sem.release()
        assert first.fired and not second.fired


class TestFluidNetwork:
    def test_single_flow_full_rate(self, sim):
        network = FluidNetwork(sim)
        network.add_link("l", 10.0)
        log = []
        record_transfer(sim, network, ["l"], 100.0, log, "a")
        sim.run()
        assert log == [("a", 10.0)]

    def test_two_flows_share_fairly(self, sim):
        network = FluidNetwork(sim)
        network.add_link("l", 10.0)
        log = []
        record_transfer(sim, network, ["l"], 100.0, log, "a")
        record_transfer(sim, network, ["l"], 100.0, log, "b")
        sim.run()
        # Both share 10/2 = 5 units/s -> both finish at 20 s.
        assert sorted(log) == [("a", 20.0), ("b", 20.0)]

    def test_rate_recomputed_on_departure(self, sim):
        network = FluidNetwork(sim)
        network.add_link("l", 10.0)
        log = []
        record_transfer(sim, network, ["l"], 50.0, log, "short")
        record_transfer(sim, network, ["l"], 150.0, log, "long")
        sim.run()
        # Share until 10s (50 each done); short finishes; long's remaining
        # 100 units then flow at 10/s -> done at 20 s.
        assert dict(log) == {"short": 10.0, "long": 20.0}

    def test_disjoint_links_independent(self, sim):
        network = FluidNetwork(sim)
        network.add_link("a", 10.0)
        network.add_link("b", 10.0)
        log = []
        record_transfer(sim, network, ["a"], 100.0, log, "x")
        record_transfer(sim, network, ["b"], 100.0, log, "y")
        sim.run()
        assert sorted(log) == [("x", 10.0), ("y", 10.0)]

    def test_multi_link_path_bottleneck(self, sim):
        network = FluidNetwork(sim)
        network.add_link("fast", 100.0)
        network.add_link("slow", 10.0)
        log = []
        record_transfer(sim, network, ["fast", "slow"], 100.0, log, "x")
        sim.run()
        assert log == [("x", 10.0)]

    def test_max_min_fairness(self, sim):
        """One flow on a private link + one sharing: max-min allocation."""
        network = FluidNetwork(sim)
        network.add_link("shared", 10.0)
        network.add_link("private", 4.0)
        log = []
        # Flow A crosses private+shared (bottleneck private: rate 4);
        # flow B crosses shared only and picks up the slack (rate 6).
        record_transfer(sim, network, ["private", "shared"], 40.0, log, "a")
        record_transfer(sim, network, ["shared"], 60.0, log, "b")
        sim.run()
        assert dict(log) == {"a": pytest.approx(10.0), "b": pytest.approx(10.0)}

    def test_zero_size_completes_instantly(self, sim):
        network = FluidNetwork(sim)
        network.add_link("l", 10.0)
        done = network.transfer(["l"], 0.0)
        assert done.fired

    def test_empty_path_completes_instantly(self, sim):
        network = FluidNetwork(sim)
        done = network.transfer([], 100.0)
        assert done.fired

    def test_unknown_link(self, sim):
        network = FluidNetwork(sim)
        with pytest.raises(KeyError):
            network.transfer(["nope"], 1.0)

    def test_duplicate_link(self, sim):
        network = FluidNetwork(sim)
        network.add_link("l", 1.0)
        with pytest.raises(ValueError):
            network.add_link("l", 2.0)

    def test_bad_capacity(self, sim):
        network = FluidNetwork(sim)
        with pytest.raises(ValueError):
            network.add_link("l", 0.0)

    def test_active_flow_count(self, sim):
        network = FluidNetwork(sim)
        network.add_link("l", 1.0)
        network.transfer(["l"], 10.0)
        network.transfer(["l"], 10.0)
        assert network.active_flow_count("l") == 2
        assert network.active_flow_count() == 2
        sim.run()
        assert network.active_flow_count() == 0

    def test_large_byte_flow_completes(self, sim):
        """Float residue on ~10^8-byte flows must not livelock completion."""
        network = FluidNetwork(sim)
        network.add_link("l", 125_000_000.0)
        log = []
        record_transfer(sim, network, ["l"], 134_217_728.0, log, "big")
        record_transfer(sim, network, ["l"], 134_217_728.0, log, "big2")
        sim.run(until=1e6)
        assert len(log) == 2

    def test_staggered_arrival(self, sim):
        network = FluidNetwork(sim)
        network.add_link("l", 10.0)
        log = []

        def late_start():
            yield Timeout(5.0)
            yield network.transfer(["l"], 30.0)
            log.append(("late", sim.now))

        record_transfer(sim, network, ["l"], 100.0, log, "early")
        sim.spawn(late_start())
        sim.run()
        # early: 50 units done by t=5, then shares at 5/s.
        # late: 30 units at 5/s -> done at t=11; early then has
        # 100 - 50 - 30 = 20 units left at 10/s -> done at t=13.
        assert dict(log) == {"late": pytest.approx(11.0), "early": pytest.approx(13.0)}


class TestExclusivePathNetwork:
    def test_serialises_shared_link(self, sim):
        network = ExclusivePathNetwork(sim)
        network.add_link("l", 10.0)
        log = []
        record_transfer(sim, network, ["l"], 100.0, log, "a")
        record_transfer(sim, network, ["l"], 100.0, log, "b")
        sim.run()
        assert dict(log) == {"a": 10.0, "b": 20.0}

    def test_disjoint_links_parallel(self, sim):
        network = ExclusivePathNetwork(sim)
        network.add_link("a", 10.0)
        network.add_link("b", 10.0)
        log = []
        record_transfer(sim, network, ["a"], 100.0, log, "x")
        record_transfer(sim, network, ["b"], 100.0, log, "y")
        sim.run()
        assert sorted(log) == [("x", 10.0), ("y", 10.0)]

    def test_first_fit_skips_blocked_request(self, sim):
        network = ExclusivePathNetwork(sim)
        network.add_link("a", 10.0)
        network.add_link("b", 10.0)
        log = []
        record_transfer(sim, network, ["a"], 100.0, log, "holder")
        record_transfer(sim, network, ["a", "b"], 100.0, log, "wide")
        record_transfer(sim, network, ["b"], 100.0, log, "narrow")
        sim.run()
        # narrow is not stuck behind the blocked wide request.
        assert dict(log)["narrow"] == 10.0

    def test_duration_uses_bottleneck(self, sim):
        network = ExclusivePathNetwork(sim)
        network.add_link("fast", 100.0)
        network.add_link("slow", 10.0)
        log = []
        record_transfer(sim, network, ["fast", "slow"], 100.0, log, "x")
        sim.run()
        assert log == [("x", 10.0)]

    def test_unknown_link(self, sim):
        network = ExclusivePathNetwork(sim)
        with pytest.raises(KeyError):
            network.transfer(["nope"], 1.0)

    def test_zero_size_instant(self, sim):
        network = ExclusivePathNetwork(sim)
        network.add_link("l", 1.0)
        assert network.transfer(["l"], 0.0).fired
