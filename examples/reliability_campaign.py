#!/usr/bin/env python
"""Reliability campaign: months of simulated churn under open-loop traffic.

The paper evaluates one failure at a time.  This example asks the
longer-horizon question: under a *stochastic* failure process sustained
for months of simulated time -- with repair running continuously and
jobs arriving whether or not the cluster keeps up -- how durable is the
data, and does each scheduling policy keep degraded-read latency
bounded?

A campaign is two-phase (DESIGN.md section 12): a block-granularity
availability replay covers the whole horizon (MTTDL, durability, repair
backlog), then short full-fidelity MapReduce windows are cut from the
same failure stream -- anchored at failure events so degraded reads are
actually exercised -- and run under LF, BDF, and EDF.  Fixed seed, so
rerunning this script is bit-identical.

Run:  python examples/reliability_campaign.py
"""

from repro.experiments.reliability import (
    CampaignConfig,
    render_report,
    run_campaign,
)
from repro.faults.models import (
    DAY,
    HOUR,
    YEAR,
    CompositeModel,
    ExponentialLifetimes,
    LatentSectorErrors,
)
from repro.mapreduce.config import JobConfig
from repro.mapreduce.workload import PoissonArrivals


def main() -> None:
    # Exponential node lifetimes (MTTF 10 days, MTTR 4 hours) with a
    # latent-sector-error overlay that silently corrupts blocks -- the
    # repair path gets exercised even while every node is up.
    config = CampaignConfig(
        model=CompositeModel(
            models=(
                ExponentialLifetimes(mttf=10.0 * DAY, mttr=4.0 * HOUR),
                LatentSectorErrors(
                    num_stripes=4, stripe_width=20, block_mtbc=2.0 * YEAR
                ),
            )
        ),
        arrivals=PoissonArrivals(
            mean_interarrival=300.0,
            templates=(JobConfig(num_blocks=60, num_reduce_tasks=8),),
        ),
        horizon=0.1 * YEAR,
        iterations=1,
        num_windows=2,
        seed=42,
    )

    print("Running a fixed-seed reliability campaign (~0.1 simulated years)...")
    print("This runs 6 full MapReduce window trials and takes a minute.\n")
    report = run_campaign(config, check=True)
    print(render_report(report))


if __name__ == "__main__":
    main()
