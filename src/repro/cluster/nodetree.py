"""The NodeTree: routing transfers through the two-level switch hierarchy.

The paper's simulator exposes a *NodeTree* structure that "simulates a
storage cluster with two levels of switches ... and handles all intra-rack
and inter-rack transmission requests".  This module reproduces it: given a
:class:`~repro.cluster.topology.ClusterTopology` and a
:class:`~repro.cluster.network.NetworkSpec`, it creates

* one **uplink** and one **downlink** per rack (capacity ``W``, the paper's
  rack download bandwidth), crossed by inter-rack traffic, and
* one **NIC ingress** and **NIC egress** link per node (capacity defaults
  to ``W``), so that top-of-rack switching is non-blocking: distinct
  intra-rack node pairs transfer in parallel at full port speed, matching
  the paper's premise that "rack-local tasks can run as fast as node-local
  tasks if the network speed within the same rack is sufficiently high".

Two contention models are supported (see :mod:`repro.sim.resources`):
``"fluid"`` max-min fair sharing (default) and ``"exclusive"``
hold-the-link semantics (CSIM style).
"""

from __future__ import annotations

from repro.cluster.network import NetworkSpec
from repro.cluster.topology import ClusterTopology
from repro.sim.engine import Event, Simulator
from repro.sim.resources import ExclusivePathNetwork, FluidNetwork

#: Supported contention models.
CONTENTION_MODELS = ("fluid", "exclusive")


class NodeTree:
    """Routes node-to-node transfers over rack links and node NICs.

    Parameters
    ----------
    sim:
        The simulation engine.
    topology:
        The cluster layout.
    network:
        Link capacities.
    model:
        ``"fluid"`` (max-min fair sharing) or ``"exclusive"`` (each transfer
        holds its links, CSIM style).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: ClusterTopology,
        network: NetworkSpec,
        model: str = "fluid",
    ) -> None:
        if model not in CONTENTION_MODELS:
            raise ValueError(
                f"unknown contention model {model!r}; use one of {CONTENTION_MODELS}"
            )
        self.sim = sim
        self.topology = topology
        self.network = network
        self.model = model
        if model == "fluid":
            self._links: FluidNetwork | ExclusivePathNetwork = FluidNetwork(sim)
        else:
            self._links = ExclusivePathNetwork(sim)
        for rack in topology.racks:
            self._links.add_link(self._downlink(rack.rack_id), network.rack_download_bw)
            self._links.add_link(self._uplink(rack.rack_id), network.rack_upload_bw)
        for node in topology.nodes:
            self._links.add_link(self._nic_in(node.node_id), network.node_bandwidth)
            self._links.add_link(self._nic_out(node.node_id), network.node_bandwidth)

    def set_observer(self, observer) -> None:
        """Attach a network observer (see :mod:`repro.obs`) to the links.

        The observer learns every link's capacity up front, then receives
        ``flow_started`` / ``flow_finished`` / ``rates_updated`` callbacks
        synchronously as transfers come and go.  Pass ``None`` to detach.
        """
        if observer is not None and hasattr(observer, "register_links"):
            observer.register_links(self._links.capacities)
        self._links.observer = observer

    @staticmethod
    def _downlink(rack_id: int) -> str:
        return f"rack{rack_id}:down"

    @staticmethod
    def _uplink(rack_id: int) -> str:
        return f"rack{rack_id}:up"

    @staticmethod
    def _nic_in(node_id: int) -> str:
        return f"node{node_id}:in"

    @staticmethod
    def _nic_out(node_id: int) -> str:
        return f"node{node_id}:out"

    def path(self, src_node: int, dst_node: int) -> list[str]:
        """Links crossed by a transfer from ``src_node`` to ``dst_node``.

        Same node: no links.  Same rack: both NICs (the top-of-rack switch
        is non-blocking).  Cross rack: both NICs plus the source rack's
        uplink and the destination rack's downlink.
        """
        if src_node == dst_node:
            return []
        src_rack = self.topology.rack_of(src_node)
        dst_rack = self.topology.rack_of(dst_node)
        links = [self._nic_out(src_node)]
        if src_rack != dst_rack:
            links.append(self._uplink(src_rack))
            links.append(self._downlink(dst_rack))
        links.append(self._nic_in(dst_node))
        return links

    def rack_path(self, src_rack: int, dst_node: int) -> list[str]:
        """Links for an aggregate flow from many nodes of one rack.

        The individual source NICs are omitted (each source contributes only
        a slice of the aggregate); the flow still crosses the rack uplink,
        the reader rack's downlink and the reader's NIC.
        """
        dst_rack = self.topology.rack_of(dst_node)
        if src_rack == dst_rack:
            return [self._nic_in(dst_node)]
        return [
            self._uplink(src_rack),
            self._downlink(dst_rack),
            self._nic_in(dst_node),
        ]

    def add_throttle(self, name: str, capacity: float) -> None:
        """Register a virtual throttle link (e.g. the repair bandwidth cap).

        A throttle link is not part of any node-to-node path; callers add it
        to a transfer via :meth:`transfer_throttled`, so the combined rate
        of all flows sharing the throttle never exceeds ``capacity`` while
        each flow still competes max-min fairly on the real links it
        crosses.  Must be called before :meth:`set_observer` for the link to
        appear in utilization reports.
        """
        self._links.add_link(name, capacity)

    def has_throttle(self, name: str) -> bool:
        """Whether a throttle link with this name is registered."""
        return self._links.has_link(name)

    def transfer(self, src_node: int, dst_node: int, size: float) -> Event:
        """Move ``size`` bytes; the returned event fires on completion."""
        return self._links.transfer(self.path(src_node, dst_node), size)

    def transfer_throttled(
        self, src_node: int, dst_node: int, size: float, throttle: str
    ) -> Event:
        """Move ``size`` bytes with the flow also crossing a throttle link."""
        return self._links.transfer(
            self.path(src_node, dst_node) + [throttle], size
        )

    def cancel(self, done: Event) -> bool:
        """Abort an in-flight transfer by its completion event (source died).

        True if the flow was found and removed; its event never fires.
        """
        return self._links.cancel(done)

    def transfer_from_rack(self, src_rack: int, dst_node: int, size: float) -> Event:
        """Move ``size`` bytes aggregated from several nodes of one rack.

        Degraded reads and shuffle fetches pull from many sources at once;
        modelling the sources of one rack as a single aggregate flow keeps
        the event count manageable while preserving which links carry the
        bytes.
        """
        return self._links.transfer(self.rack_path(src_rack, dst_node), size)

    def downlink_load(self, rack_id: int) -> int:
        """Active flows on (or holding) a rack's downlink — a congestion probe."""
        return self._links.active_flow_count(self._downlink(rack_id))

    def is_cross_rack(self, src_node: int, dst_node: int) -> bool:
        """Whether a transfer between the nodes crosses the core switch."""
        return self.topology.rack_of(src_node) != self.topology.rack_of(dst_node)
