"""Unit tests for task records, job metrics and boxplot statistics."""

from __future__ import annotations

import math

import pytest

from repro.mapreduce.job import MapTaskCategory, TaskKind
from repro.mapreduce.metrics import (
    BoxplotStats,
    JobMetrics,
    SimulationResult,
    TaskRecord,
)


def record(kind=TaskKind.MAP, category=MapTaskCategory.NODE_LOCAL, launch=0.0,
           finish=10.0, download=0.0, slave=0, job=0):
    return TaskRecord(
        job_id=job, kind=kind, category=category, slave_id=slave,
        launch_time=launch, download_time=download, finish_time=finish,
    )


class TestTaskRecord:
    def test_runtime(self):
        assert record(launch=5.0, finish=25.0).runtime == 20.0


class TestJobMetrics:
    def make_job(self):
        job = JobMetrics(job_id=0, submit_time=0.0, first_launch_time=0.0, finish_time=100.0)
        job.tasks = [
            record(category=MapTaskCategory.NODE_LOCAL, finish=10.0),
            record(category=MapTaskCategory.RACK_LOCAL, finish=12.0),
            record(category=MapTaskCategory.REMOTE, finish=14.0),
            record(category=MapTaskCategory.DEGRADED, finish=30.0, download=18.0),
            record(category=MapTaskCategory.DEGRADED, finish=40.0, download=22.0),
            record(kind=TaskKind.REDUCE, category=None, finish=90.0),
        ]
        return job

    def test_runtime_and_makespan(self):
        job = JobMetrics(job_id=0, submit_time=5.0, first_launch_time=10.0, finish_time=110.0)
        assert job.runtime == 100.0
        assert job.makespan == 105.0

    def test_counts(self):
        job = self.make_job()
        assert job.remote_task_count == 1
        assert job.stolen_task_count == 2
        assert job.degraded_task_count == 2

    def test_mean_runtime_by_category(self):
        job = self.make_job()
        assert job.mean_runtime(TaskKind.MAP, MapTaskCategory.DEGRADED) == pytest.approx(35.0)
        assert job.mean_runtime(TaskKind.REDUCE) == pytest.approx(90.0)
        normal = job.mean_runtime(
            TaskKind.MAP,
            MapTaskCategory.NODE_LOCAL, MapTaskCategory.RACK_LOCAL, MapTaskCategory.REMOTE,
        )
        assert normal == pytest.approx(12.0)

    def test_mean_runtime_empty_is_nan(self):
        job = JobMetrics(job_id=0, submit_time=0.0)
        assert math.isnan(job.mean_runtime(TaskKind.REDUCE))
        assert math.isnan(job.mean_degraded_read_time())

    def test_mean_degraded_read_time(self):
        job = self.make_job()
        assert job.mean_degraded_read_time() == pytest.approx(20.0)


class TestSimulationResult:
    def test_total_runtime(self):
        jobs = {
            0: JobMetrics(0, submit_time=0.0, first_launch_time=0.0, finish_time=50.0),
            1: JobMetrics(1, submit_time=10.0, first_launch_time=12.0, finish_time=80.0),
        }
        result = SimulationResult(jobs=jobs, failed_nodes=frozenset(), scheduler="LF", seed=0)
        assert result.total_runtime == 80.0
        assert result.job(1).finish_time == 80.0


class TestBoxplotStats:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxplotStats.from_samples([])

    def test_single_sample(self):
        stats = BoxplotStats.from_samples([5.0])
        assert stats.median == 5.0
        assert stats.minimum == stats.maximum == 5.0

    def test_quartiles(self):
        stats = BoxplotStats.from_samples([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.lower_quartile == 2
        assert stats.upper_quartile == 4
        assert stats.mean == 3

    def test_outliers_detected(self):
        samples = [10.0] * 10 + [100.0]
        stats = BoxplotStats.from_samples(samples)
        assert stats.outliers == (100.0,)
        assert stats.maximum == 10.0  # whisker excludes the outlier

    def test_interpolated_percentile(self):
        stats = BoxplotStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.median == pytest.approx(2.5)
