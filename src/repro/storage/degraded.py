"""Degraded-read planning: which ``k`` survivors to download.

A degraded task must fetch ``k`` surviving blocks of the lost block's stripe
and decode.  The paper's convention (and its analysis) is that the task
"randomly picks k out of n-1 blocks to download"; an alternative heuristic
that prefers survivors in the reader's own rack is also provided, since the
choice only affects inter-rack traffic volume and is a natural ablation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology
from repro.faults.errors import DataUnavailableError
from repro.sim.rng import RngStreams
from repro.storage.block import BlockId, StoredBlock
from repro.storage.namenode import BlockMap


class SourceSelection(enum.Enum):
    """How a degraded read picks its ``k`` source blocks."""

    RANDOM = "random"
    RACK_LOCAL_FIRST = "rack-local-first"


@dataclass(frozen=True)
class DegradedReadPlan:
    """The concrete download set for one degraded read.

    ``sources`` lists the ``k`` surviving blocks to fetch; helpers classify
    them relative to the reading node for traffic accounting.
    """

    lost_block: BlockId
    reader_node: int
    sources: tuple[StoredBlock, ...]

    def cross_rack_sources(self, topology: ClusterTopology) -> list[StoredBlock]:
        """Sources whose download crosses the core switch."""
        reader_rack = topology.rack_of(self.reader_node)
        return [
            source
            for source in self.sources
            if topology.rack_of(source.node_id) != reader_rack
        ]

    def same_rack_sources(self, topology: ClusterTopology) -> list[StoredBlock]:
        """Sources served from within the reader's rack (including same node)."""
        reader_rack = topology.rack_of(self.reader_node)
        return [
            source
            for source in self.sources
            if topology.rack_of(source.node_id) == reader_rack
        ]


class DegradedReadPlanner:
    """Builds :class:`DegradedReadPlan` objects for lost blocks.

    Parameters
    ----------
    block_map:
        The file's placement metadata.
    topology:
        Cluster layout, used by the rack-local-first selection.
    selection:
        Source-selection policy.
    """

    def __init__(
        self,
        block_map: BlockMap,
        topology: ClusterTopology,
        selection: SourceSelection = SourceSelection.RANDOM,
    ) -> None:
        self.block_map = block_map
        self.topology = topology
        self.selection = selection

    def plan(
        self,
        lost_block: BlockId,
        reader_node: int,
        failed_nodes: frozenset[int],
        rng: RngStreams,
        avoid: frozenset[int] = frozenset(),
    ) -> DegradedReadPlan:
        """Choose ``k`` surviving source blocks for reconstructing ``lost_block``.

        Sources are drawn only from the *readable* live view: nodes in
        ``failed_nodes`` (the master's view) or ``avoid`` (nodes a reader
        observed dead before the master declared them, during re-planning)
        never appear, and neither do checksum-bad blocks.  Fewer than ``k``
        such sources raises :class:`DataUnavailableError`.
        """
        k = self.block_map.params.k
        survivors = self.block_map.readable_stripe_blocks(lost_block.stripe_id, failed_nodes)
        survivors = [
            stored
            for stored in survivors
            if stored.block != lost_block and stored.node_id not in avoid
        ]
        if len(survivors) < k:
            raise DataUnavailableError(
                f"stripe {lost_block.stripe_id} has only {len(survivors)} readable "
                f"survivors, need k={k}",
                stripe_id=lost_block.stripe_id,
            )
        draws = rng.spawn("degraded")
        if self.selection is SourceSelection.RANDOM:
            chosen = draws.sample(str(lost_block), survivors, k)
        elif self.selection is SourceSelection.RACK_LOCAL_FIRST:
            reader_rack = self.topology.rack_of(reader_node)
            local = [s for s in survivors if self.topology.rack_of(s.node_id) == reader_rack]
            remote = [s for s in survivors if self.topology.rack_of(s.node_id) != reader_rack]
            draws.shuffle(str(lost_block), local)
            draws.shuffle(str(lost_block), remote)
            chosen = (local + remote)[:k]
        else:
            raise AssertionError(f"unhandled selection {self.selection}")
        ordered = tuple(sorted(chosen, key=lambda stored: stored.block))
        return DegradedReadPlan(lost_block=lost_block, reader_node=reader_node, sources=ordered)
