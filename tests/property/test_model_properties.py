"""Property tests: every generated stream is valid, alternating, deterministic."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cluster.topology import ClusterTopology
from repro.faults.models import (
    CompositeModel,
    CorrelatedBursts,
    ExponentialLifetimes,
    LatentSectorErrors,
    WeibullLifetimes,
    check_alternation,
    slice_window,
)
from repro.faults.schedule import RecoverEvent
from repro.mapreduce.workload import PoissonArrivals
from repro.sim.rng import RngStreams

HOUR = 3600.0


@st.composite
def models(draw):
    mttf = draw(st.floats(min_value=2.0 * HOUR, max_value=50.0 * HOUR))
    mttr = draw(st.floats(min_value=0.1 * HOUR, max_value=5.0 * HOUR))
    family = draw(st.sampled_from(["exponential", "weibull", "bursts", "composite"]))
    if family == "weibull":
        return WeibullLifetimes(
            mttf=mttf,
            shape=draw(st.floats(min_value=0.4, max_value=2.0)),
            mttr=mttr,
        )
    if family == "bursts":
        return CorrelatedBursts(
            mtbe=mttf,
            burst_size_mean=draw(st.floats(min_value=1.0, max_value=4.0)),
            rack_bias=draw(st.floats(min_value=0.0, max_value=1.0)),
            mttr=mttr,
            spread=draw(st.floats(min_value=1.0, max_value=120.0)),
        )
    if family == "composite":
        return CompositeModel(
            models=(
                ExponentialLifetimes(mttf=mttf, mttr=mttr),
                LatentSectorErrors(
                    num_stripes=draw(st.integers(min_value=1, max_value=8)),
                    stripe_width=6,
                    block_mtbc=draw(
                        st.floats(min_value=10.0 * HOUR, max_value=200.0 * HOUR)
                    ),
                ),
            )
        )
    return ExponentialLifetimes(mttf=mttf, mttr=mttr)


TOPOLOGY = ClusterTopology.from_rack_sizes([3, 3, 3])


@settings(max_examples=40, deadline=None)
@given(model=models(), seed=st.integers(min_value=0, max_value=2**31))
def test_generated_streams_validate_and_alternate(model, seed):
    schedule = model.generate(TOPOLOGY, RngStreams(seed), 100.0 * HOUR)
    schedule.validate(TOPOLOGY, num_stripes=8, stripe_width=6)
    check_alternation(schedule, TOPOLOGY)


@settings(max_examples=25, deadline=None)
@given(model=models(), seed=st.integers(min_value=0, max_value=2**31))
def test_regeneration_is_bit_identical(model, seed):
    first = model.generate(TOPOLOGY, RngStreams(seed), 50.0 * HOUR)
    second = model.generate(TOPOLOGY, RngStreams(seed), 50.0 * HOUR)
    assert first.to_dict() == second.to_dict()


@settings(max_examples=25, deadline=None)
@given(
    model=models(),
    seed=st.integers(min_value=0, max_value=2**31),
    start=st.floats(min_value=0.0, max_value=90.0 * HOUR),
    duration=st.floats(min_value=0.5 * HOUR, max_value=10.0 * HOUR),
)
def test_windows_of_generated_streams_stay_consistent(model, seed, start, duration):
    schedule = model.generate(TOPOLOGY, RngStreams(seed), 100.0 * HOUR)
    window = slice_window(schedule, TOPOLOGY, start, duration)
    window.validate(TOPOLOGY, num_stripes=8, stripe_width=6)
    check_alternation(window, TOPOLOGY)
    for event in window.events:
        if isinstance(event, RecoverEvent):
            assert event.at < duration


@settings(max_examples=30, deadline=None)
@given(
    mean=st.floats(min_value=5.0, max_value=600.0),
    seed=st.integers(min_value=0, max_value=2**31),
    horizon=st.floats(min_value=10.0, max_value=4.0 * HOUR),
)
def test_poisson_arrivals_sorted_in_horizon_and_deterministic(mean, seed, horizon):
    process = PoissonArrivals(mean_interarrival=mean)
    jobs = process.generate(RngStreams(seed), horizon)
    times = [job.submit_time for job in jobs]
    assert times == sorted(times)
    assert all(0.0 < at < horizon for at in times)
    assert jobs == process.generate(RngStreams(seed), horizon)
