"""Unit tests for matrices over GF(2^8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec import matrix as gfm


class TestIdentityAndMatmul:
    def test_identity(self):
        eye = gfm.identity(3)
        assert eye.tolist() == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_matmul_identity(self):
        a = np.array([[3, 5], [7, 11]], dtype=np.uint8)
        assert np.array_equal(gfm.matmul(a, gfm.identity(2)), a)
        assert np.array_equal(gfm.matmul(gfm.identity(2), a), a)

    def test_matmul_shape_mismatch(self):
        a = np.zeros((2, 3), dtype=np.uint8)
        b = np.zeros((2, 3), dtype=np.uint8)
        with pytest.raises(ValueError):
            gfm.matmul(a, b)

    def test_matmul_known(self):
        # Over GF(2^8): [[1,1],[0,1]] * [[1,0],[1,1]] = [[0,1],[1,1]]
        a = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        b = np.array([[1, 0], [1, 1]], dtype=np.uint8)
        assert gfm.matmul(a, b).tolist() == [[0, 1], [1, 1]]


class TestInvert:
    def test_invert_identity(self):
        assert np.array_equal(gfm.invert(gfm.identity(4)), gfm.identity(4))

    def test_invert_roundtrip(self):
        a = gfm.vandermonde(8, 8)[1:5, 1:5]  # a 4x4 slice, invertible
        inverse = gfm.invert(a)
        assert np.array_equal(gfm.matmul(a, inverse), gfm.identity(4))
        assert np.array_equal(gfm.matmul(inverse, a), gfm.identity(4))

    def test_singular_raises(self):
        singular = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(gfm.SingularMatrixError):
            gfm.invert(singular)

    def test_zero_matrix_raises(self):
        with pytest.raises(gfm.SingularMatrixError):
            gfm.invert(np.zeros((3, 3), dtype=np.uint8))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            gfm.invert(np.zeros((2, 3), dtype=np.uint8))

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_invertible_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        while True:
            candidate = rng.integers(0, 256, size=(3, 3), dtype=np.uint8)
            try:
                inverse = gfm.invert(candidate)
                break
            except gfm.SingularMatrixError:
                continue
        assert np.array_equal(gfm.matmul(candidate, inverse), gfm.identity(3))


class TestConstructions:
    def test_vandermonde_shape_and_first_rows(self):
        v = gfm.vandermonde(5, 3)
        assert v.shape == (5, 3)
        assert v[0].tolist() == [1, 0, 0]  # 0^0=1, 0^1=0, 0^2=0
        assert v[1].tolist() == [1, 1, 1]
        assert v[2].tolist() == [1, 2, 4]

    def test_cauchy_rejects_overlap(self):
        with pytest.raises(ValueError):
            gfm.cauchy([1, 2], [2, 3])

    def test_cauchy_entries(self):
        from repro.ec.galois import gf_inv

        c = gfm.cauchy([1, 2], [3, 4])
        assert c[0, 0] == gf_inv(1 ^ 3)
        assert c[1, 1] == gf_inv(2 ^ 4)

    def test_cauchy_square_invertible(self):
        c = gfm.cauchy([1, 2, 3], [4, 5, 6])
        inverse = gfm.invert(c)
        assert np.array_equal(gfm.matmul(c, inverse), gfm.identity(3))

    def test_systematic_top_is_identity(self):
        g = gfm.systematic_encoding_matrix(6, 4)
        assert np.array_equal(g[:4], gfm.identity(4))

    @pytest.mark.parametrize("n,k", [(4, 2), (6, 4), (9, 6), (14, 10), (20, 15)])
    def test_systematic_any_k_rows_invertible(self, n, k):
        """The MDS property: every k-row submatrix must be invertible."""
        import itertools

        g = gfm.systematic_encoding_matrix(n, k)
        # Exhaustive for small n, else sample the awkward combinations.
        combos = list(itertools.combinations(range(n), k))
        if len(combos) > 60:
            combos = combos[:30] + combos[-30:]
        for rows in combos:
            gfm.invert(g[list(rows), :])  # must not raise

    def test_systematic_bad_params(self):
        with pytest.raises(ValueError):
            gfm.systematic_encoding_matrix(2, 4)
        with pytest.raises(ValueError):
            gfm.systematic_encoding_matrix(300, 100)


class TestMatvecBlocks:
    def test_matvec_identity_passthrough(self):
        blocks = [np.array([1, 2], dtype=np.uint8), np.array([3, 4], dtype=np.uint8)]
        out = gfm.matvec_blocks(gfm.identity(2), blocks)
        assert [o.tolist() for o in out] == [[1, 2], [3, 4]]

    def test_matvec_rejects_unequal_lengths(self):
        blocks = [np.array([1], dtype=np.uint8), np.array([2, 3], dtype=np.uint8)]
        with pytest.raises(ValueError):
            gfm.matvec_blocks(gfm.identity(2), blocks)

    def test_matvec_rejects_wrong_count(self):
        with pytest.raises(ValueError):
            gfm.matvec_blocks(gfm.identity(2), [np.array([1], dtype=np.uint8)])

    def test_matvec_empty(self):
        assert gfm.matvec_blocks(np.zeros((0, 0), dtype=np.uint8), []) == []
