"""High-level erasure-codec facade used by the storage layer.

:class:`CodeParams` is the ``(n, k)`` pair that appears everywhere in the
paper; :class:`ErasureCodec` bundles those parameters with a concrete
Reed-Solomon coder and the stripe layout, and exposes whole-file encode /
degraded-read operations.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.ec.reed_solomon import ReedSolomon
from repro.ec.stripe import StripeLayout


@dataclass(frozen=True)
class CodeParams:
    """An ``(n, k)`` erasure-code parameterisation.

    ``k`` native blocks are encoded into ``n - k`` parity blocks; any ``k``
    of the ``n`` blocks recover the natives.  The paper's rack-failure
    tolerance requirement additionally demands ``n - k >= 2``; that rule is
    enforced by the placement policy, not here, so that unit tests can build
    degenerate codes.
    """

    n: int
    k: int

    def __post_init__(self) -> None:
        if not 0 < self.k <= self.n:
            raise ValueError(f"require 0 < k <= n, got n={self.n} k={self.k}")
        if self.n > 256:
            raise ValueError(f"n={self.n} exceeds GF(2^8) field size")

    @property
    def parity(self) -> int:
        """Parity blocks per stripe."""
        return self.n - self.k

    @property
    def storage_overhead(self) -> float:
        """Redundancy overhead as a fraction, e.g. 1/3 for (4, 3)."""
        return self.parity / self.k

    def __str__(self) -> str:
        return f"({self.n},{self.k})"


#: Supported coding constructions.
ALGORITHMS = ("vandermonde", "cauchy")


class ErasureCodec:
    """Encodes files into stripes and serves degraded reads.

    Parameters
    ----------
    params:
        The ``(n, k)`` code parameters.
    algorithm:
        ``"vandermonde"`` (the default systematic Reed-Solomon) or
        ``"cauchy"`` (Cauchy Reed-Solomon, the paper's reference [3]).
        Both are MDS; the choice changes parity bytes, never guarantees.
    """

    def __init__(self, params: CodeParams, algorithm: str = "vandermonde") -> None:
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
        self.params = params
        self.algorithm = algorithm
        self.layout = StripeLayout(n=params.n, k=params.k)
        if algorithm == "cauchy":
            from repro.ec.cauchy import CauchyReedSolomon

            self._coder: ReedSolomon = CauchyReedSolomon(params.n, params.k)
        else:
            self._coder = ReedSolomon(params.n, params.k)

    @property
    def coder(self) -> ReedSolomon:
        """The underlying coder (shared decode-plan caches live here)."""
        return self._coder

    def encode_stripe(self, native_blocks: Sequence[bytes]) -> list[bytes]:
        """Encode one stripe: returns the full ``n``-block stripe.

        Blocks may have unequal lengths (line-aligned splitting produces
        them); they are zero-padded to the longest block *transiently* for
        parity computation, and a short final stripe is padded to ``k``
        blocks with empty ones, as HDFS-RAID pads trailing groups.  The
        returned native blocks keep their exact original content; parity
        blocks carry the padded length.
        """
        return self.encode_stripes([native_blocks])[0]

    def encode_stripes(
        self, stripe_natives: Sequence[Sequence[bytes]]
    ) -> list[list[bytes]]:
        """Encode many stripes in one batched kernel pass.

        Semantically identical to calling :meth:`encode_stripe` per stripe
        (the coder-level batching zero-pads short stripes and the zero
        parity tail truncates away), but all parity for a whole file is
        produced by a single matvec over stacked blocks, which is what
        makes the fig9 testbed's ``write_file`` cheap.
        """
        padded_stripes: list[list[bytes]] = []
        for native_blocks in stripe_natives:
            if not 0 < len(native_blocks) <= self.params.k:
                raise ValueError(
                    f"stripe needs 1..{self.params.k} native blocks,"
                    f" got {len(native_blocks)}"
                )
            length = max(len(block) for block in native_blocks)
            padded = [block.ljust(length, b"\0") for block in native_blocks]
            while len(padded) < self.params.k:
                padded.append(b"\0" * length)
            padded_stripes.append(padded)
        parity_per_stripe = self._coder.encode_stripes(padded_stripes)
        stripes: list[list[bytes]] = []
        for native_blocks, parity in zip(stripe_natives, parity_per_stripe):
            placeholders = [b""] * (self.params.k - len(native_blocks))
            stripes.append(list(native_blocks) + placeholders + parity)
        return stripes

    def encode_file(self, data: bytes, block_size: int) -> list[list[bytes]]:
        """Split ``data`` into blocks and encode all stripes in one batch.

        Returns one full stripe (``n`` blocks) per group of ``k`` natives.
        """
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        blocks = [data[offset : offset + block_size] for offset in range(0, len(data), block_size)]
        if not blocks:
            blocks = [b""]
        return self.encode_stripes(
            [
                blocks[start : start + self.params.k]
                for start in range(0, len(blocks), self.params.k)
            ]
        )

    def degraded_read(
        self,
        lost_position: int,
        available: Mapping[int, bytes],
        lost_length: int | None = None,
    ) -> bytes:
        """Reconstruct the block at ``lost_position`` from ``k`` survivors.

        This is the operation a *degraded task* performs after downloading
        ``k`` surviving blocks of the stripe.  Survivors of unequal length
        (unpadded natives) are re-padded to the coding length first;
        ``lost_length`` truncates the reconstruction back to the lost
        block's true size.
        """
        padded = self._pad_to_coding_length(available)
        rebuilt = self._coder.reconstruct_block(lost_position, padded)
        if lost_length is not None:
            if lost_length > len(rebuilt):
                raise ValueError(
                    f"lost block length {lost_length} exceeds coding length {len(rebuilt)}"
                )
            rebuilt = rebuilt[:lost_length]
        return rebuilt

    def decode_natives(self, available: Mapping[int, bytes]) -> list[bytes]:
        """Recover all ``k`` native blocks of a stripe from any ``k`` blocks.

        Natives are returned at the coding length (zero-padded); callers
        tracking true block lengths should truncate.
        """
        return self._coder.decode(self._pad_to_coding_length(available))

    @staticmethod
    def _pad_to_coding_length(available: Mapping[int, bytes]) -> dict[int, bytes]:
        """Zero-pad survivors to their common (parity) length."""
        if not available:
            return {}
        length = max(len(block) for block in available.values())
        return {
            position: block.ljust(length, b"\0")
            for position, block in available.items()
        }
