"""Unit tests for the degraded-read planner."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.sim.rng import RngStreams
from repro.storage.degraded import SourceSelection
from repro.storage.hdfs import HdfsRaidCluster


@pytest.fixture
def cluster(rng):
    topology = ClusterTopology.from_rack_sizes([3, 3, 3])
    return HdfsRaidCluster(
        topology, CodeParams(6, 4), num_native_blocks=24, placement="random", rng=rng
    )


class TestPlan:
    def test_plan_has_k_sources(self, cluster, rng):
        failed = frozenset({0})
        lost = cluster.block_map.lost_native_blocks(failed)
        if not lost:
            pytest.skip("seeded placement put no natives on node 0")
        plan = cluster.planner.plan(lost[0], reader_node=1, failed_nodes=failed, rng=rng)
        assert len(plan.sources) == 4

    def test_sources_exclude_failed_and_lost(self, cluster, rng):
        failed = frozenset({0})
        lost = cluster.block_map.lost_native_blocks(failed)
        if not lost:
            pytest.skip("seeded placement put no natives on node 0")
        plan = cluster.planner.plan(lost[0], reader_node=1, failed_nodes=failed, rng=rng)
        for source in plan.sources:
            assert source.node_id != 0
            assert source.block != lost[0]

    def test_insufficient_survivors(self, rng):
        topology = ClusterTopology.from_rack_sizes([3, 3, 3])
        cluster = HdfsRaidCluster(
            topology, CodeParams(6, 4), num_native_blocks=8, placement="random", rng=rng
        )
        block = cluster.block_map.native_blocks()[0]
        stripe_nodes = {s.node_id for s in cluster.block_map.stripe_blocks(block.stripe_id)}
        # Fail 3 of the stripe's nodes: only 3 survivors < k=4.
        failed = frozenset(list(stripe_nodes)[:3])
        planner = cluster.planner
        with pytest.raises(RuntimeError):
            planner.plan(block, reader_node=7, failed_nodes=failed, rng=rng)


class TestSourceFiltering:
    """Regression: the planner must never select dead or unusable sources."""

    def _lost_and_failed(self, cluster):
        failed = frozenset({0})
        lost = cluster.block_map.lost_native_blocks(failed)
        if not lost:
            pytest.skip("seeded placement put no natives on node 0")
        return lost[0], failed

    def test_avoid_set_excluded_from_sources(self, cluster, rng):
        block, failed = self._lost_and_failed(cluster)
        survivors = cluster.block_map.readable_stripe_blocks(block.stripe_id, failed)
        avoidable = next(
            s.node_id for s in survivors if s.block != block
        )
        plan = cluster.planner.plan(
            block, reader_node=1, failed_nodes=failed, rng=rng,
            avoid=frozenset({avoidable}),
        )
        assert all(source.node_id != avoidable for source in plan.sources)

    def test_avoid_below_k_raises_typed_error(self, cluster, rng):
        from repro.faults.errors import DataUnavailableError

        block, failed = self._lost_and_failed(cluster)
        survivors = {
            s.node_id
            for s in cluster.block_map.readable_stripe_blocks(block.stripe_id, failed)
            if s.block != block
        }
        # Avoiding two of the five candidate sources leaves 3 < k=4.
        avoid = frozenset(sorted(survivors)[:2])
        with pytest.raises(DataUnavailableError) as excinfo:
            cluster.planner.plan(block, 1, failed, rng, avoid=avoid)
        assert excinfo.value.stripe_id == block.stripe_id

    def test_corrupt_survivor_never_selected(self, cluster, rng):
        block, failed = self._lost_and_failed(cluster)
        survivors = cluster.block_map.readable_stripe_blocks(block.stripe_id, failed)
        bad = next(s for s in survivors if s.block != block)
        cluster.block_map.mark_corrupt(bad.block)
        plan = cluster.planner.plan(block, 1, failed, rng)
        assert all(source.block != bad.block for source in plan.sources)

    def test_empty_avoid_matches_default_draw(self, cluster):
        block, failed = self._lost_and_failed(cluster)
        default = cluster.planner.plan(block, 1, failed, RngStreams(9))
        explicit = cluster.planner.plan(
            block, 1, failed, RngStreams(9), avoid=frozenset()
        )
        assert default == explicit


class TestSelectionPolicies:
    def test_rack_local_first_prefers_reader_rack(self, rng):
        topology = ClusterTopology.from_rack_sizes([3, 3, 3])
        cluster = HdfsRaidCluster(
            topology,
            CodeParams(6, 4),
            num_native_blocks=24,
            placement="random",
            rng=rng,
            source_selection=SourceSelection.RACK_LOCAL_FIRST,
        )
        failed = frozenset({0})
        lost = cluster.block_map.lost_native_blocks(failed)
        if not lost:
            pytest.skip("seeded placement put no natives on node 0")
        block = lost[0]
        reader = 1
        plan = cluster.planner.plan(block, reader, failed, rng)
        survivors = [
            s
            for s in cluster.block_map.surviving_stripe_blocks(block.stripe_id, failed)
            if s.block != block
        ]
        local_available = sum(
            1 for s in survivors if topology.rack_of(s.node_id) == topology.rack_of(reader)
        )
        chosen_local = len(plan.same_rack_sources(topology))
        assert chosen_local == min(local_available, 4)

    def test_random_selection_deterministic_per_stream(self, cluster):
        failed = frozenset({0})
        lost = cluster.block_map.lost_native_blocks(failed)
        if not lost:
            pytest.skip("seeded placement put no natives on node 0")
        first = cluster.planner.plan(lost[0], 1, failed, RngStreams(3))
        second = cluster.planner.plan(lost[0], 1, failed, RngStreams(3))
        assert first == second


class TestPlanQueries:
    def test_cross_and_same_rack_partition(self, cluster, rng):
        topology = cluster.topology
        failed = frozenset({0})
        lost = cluster.block_map.lost_native_blocks(failed)
        if not lost:
            pytest.skip("seeded placement put no natives on node 0")
        plan = cluster.planner.plan(lost[0], 1, failed, rng)
        cross = plan.cross_rack_sources(topology)
        same = plan.same_rack_sources(topology)
        assert len(cross) + len(same) == len(plan.sources)
