"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig5", "fig7", "fig8", "fig9", "table1"):
            assert name in out


class TestRun:
    def test_run_fig3(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "40 s" in out and "30 s" in out

    def test_run_fig5(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out

    def test_run_unknown(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])


class TestSimulate:
    def test_small_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "8", "--racks", "2", "--code", "4,2",
                "--blocks", "48", "--scheduler", "LF", "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime:" in out
        assert "degraded tasks:" in out

    def test_bad_code_argument(self, capsys):
        assert main(["simulate", "--code", "oops"]) == 2

    def test_timeline_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "6", "--racks", "2", "--code", "4,2",
                "--blocks", "24", "--seed", "2", "--timeline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline [" in out
        assert "node " in out

    def test_json_export(self, capsys, tmp_path):
        target = tmp_path / "trace.json"
        code = main(
            [
                "simulate",
                "--nodes", "6", "--racks", "2", "--code", "4,2",
                "--blocks", "24", "--seed", "2", "--json", str(target),
            ]
        )
        assert code == 0
        import json

        payload = json.loads(target.read_text())
        assert payload["scheduler"] == "EDF"
        assert len(payload["tasks"]) > 0

    def test_failure_time_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "6", "--racks", "2", "--code", "4,2",
                "--blocks", "24", "--seed", "2", "--failure-time", "1e9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded tasks: 0" in out  # strike after completion

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


_SMALL = [
    "simulate",
    "--nodes", "6", "--racks", "2", "--code", "4,2",
    "--blocks", "24", "--seed", "2",
]


class TestObservabilityExports:
    def test_scheduler_flag_is_case_insensitive(self, capsys):
        assert main(_SMALL + ["--scheduler", "edf"]) == 0
        assert "scheduler: EDF" in capsys.readouterr().out

    def test_events_export(self, capsys, tmp_path):
        import json

        target = tmp_path / "events.jsonl"
        assert main(_SMALL + ["--events", str(target)]) == 0
        lines = target.read_text().strip().split("\n")
        kinds = {json.loads(line)["kind"] for line in lines}
        assert {"job.submit", "heartbeat", "sched.decision", "task.launch",
                "task.finish", "job.finish"} <= kinds

    def test_chrome_trace_export(self, capsys, tmp_path):
        import json

        target = tmp_path / "trace.json"
        assert main(_SMALL + ["--chrome-trace", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert any(event["ph"] == "X" for event in payload["traceEvents"])

    def test_utilization_report_to_stdout(self, capsys):
        assert main(_SMALL + ["--utilization-report", "-"]) == 0
        out = capsys.readouterr().out
        assert "map slots" in out
        assert "links" in out

    def test_exports_create_parent_directories(self, capsys, tmp_path):
        target = tmp_path / "deep" / "nested" / "events.jsonl"
        assert main(_SMALL + ["--events", str(target)]) == 0
        assert target.exists()

    def test_json_export_creates_parent_directories(self, capsys, tmp_path):
        target = tmp_path / "deep" / "trace.json"
        assert main(_SMALL + ["--json", str(target)]) == 0
        assert target.exists()

    def test_unwritable_path_exits_2_without_traceback(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        target = blocker / "sub" / "events.jsonl"  # parent is a regular file
        assert main(_SMALL + ["--events", str(target)]) == 2
        assert "cannot write" in capsys.readouterr().err
