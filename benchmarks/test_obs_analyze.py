"""Benchmark: post-hoc analyzer wall-clock on a fig-7-style failure run.

The analysis pipeline is pure read-side code, so its cost rides on top of
every campaign that wants telemetry; this keeps its wall-clock visible in
``BENCH_obs.json`` (grouped as ``obs_analyze``) across commits.  The
simulation itself runs outside the timer -- only analysis is measured.
"""

from __future__ import annotations

from repro.cluster.failures import FailurePattern
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.simulation import run_simulation
from repro.obs import ObservabilityCollector, analyze_run, report_html
from repro.obs.analyze import Timeline

CONFIG = SimulationConfig(
    scheduler="EDF",
    failure=FailurePattern.SINGLE_NODE,
    jobs=(JobConfig(num_blocks=400, num_reduce_tasks=8),),
    seed=7,
)


def _analyze_pipeline(result, decisions):
    timeline = Timeline.from_result(result)
    timeline.decisions = decisions
    analysis = analyze_run(timeline)
    payload = analysis.to_dict()
    report_html(payload)
    return analysis


def test_analyze_failure_run(benchmark):
    collector = ObservabilityCollector()
    result = run_simulation(CONFIG, observer=collector)
    decisions = [decision.to_dict() for decision in collector.decisions]
    analysis = benchmark(_analyze_pipeline, result, decisions)
    assert analysis.chain
    assert analysis.breakdown["degraded"]["tasks"] > 0
    assert analysis.audit is not None and analysis.audit["assignments"] > 0
