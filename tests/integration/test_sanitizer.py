"""Integration tests for the sanitizer (``repro.check``).

Three contracts:

1. **Zero perturbation** -- running every golden scenario under
   :class:`InvariantMonitor` records no violations AND reproduces the
   committed golden trajectory bit for bit (the monitor is a pure
   observer).
2. **Detection power** -- a deliberately broken BDF pacing gate (the
   test-only ``_FORCE_PACING_BREAK`` switch) is caught and named by the
   sanitizer (mutation smoke test).
3. **Regression corpus** -- every shrunk repro under ``tests/corpus/``,
   each the fingerprint of a once-real bug, now replays clean.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.check import (
    InvariantMonitor,
    InvariantViolationError,
    load_repro,
    run_checked_trial,
)
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.serialization import result_to_dict
from repro.mapreduce.simulation import run_simulation

from tests.integration.test_golden_equivalence import GOLDEN_DIR, golden_cases

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")


@pytest.mark.parametrize("name", sorted(golden_cases()))
def test_goldens_run_clean_and_unperturbed_under_monitor(name: str) -> None:
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    with open(path) as handle:
        golden = json.load(handle)
    monitor = InvariantMonitor()
    result = run_simulation(golden_cases()[name], observer=monitor)
    assert monitor.violations == [], monitor.report()
    actual = json.loads(
        json.dumps(
            {
                "result": result_to_dict(result),
                "dispatched": monitor.profiler.events_dispatched,
            },
            allow_nan=False,
        )
    )
    assert actual["dispatched"] == golden["dispatched"], (
        f"{name}: the monitor perturbed the event schedule"
    )
    assert actual["result"] == golden["result"]


def test_check_env_var_enables_monitoring(monkeypatch):
    """``REPRO_CHECK=1`` wraps a plain run without changing its result."""
    from repro.cluster.network import MB
    from repro.ec.codec import CodeParams

    config = SimulationConfig(
        scheduler="BDF", seed=2, num_nodes=6, num_racks=2,
        code=CodeParams(4, 2), block_size=16 * MB,
        jobs=(JobConfig(num_blocks=24),),
    )
    plain = result_to_dict(run_simulation(config))
    monkeypatch.setenv("REPRO_CHECK", "1")
    checked = result_to_dict(run_simulation(config))
    assert checked == plain


class TestMutationSmoke:
    """Break the BDF pacing gate; the sanitizer must name the invariant."""

    CONFIG = SimulationConfig(
        scheduler="BDF", seed=7, jobs=(JobConfig(num_blocks=192),)
    )

    def test_broken_pacing_is_caught(self, monkeypatch):
        from repro.core import degraded_first

        monkeypatch.setattr(degraded_first, "_FORCE_PACING_BREAK", True)
        with pytest.raises(InvariantViolationError) as excinfo:
            run_simulation(self.CONFIG, check=True)
        assert any(
            violation.invariant == "bdf-pacing"
            for violation in excinfo.value.violations
        ), excinfo.value.report()
        assert "bdf-pacing" in excinfo.value.report()

    def test_intact_pacing_is_clean(self):
        run_simulation(self.CONFIG, check=True)  # must not raise


def corpus_entries() -> list[str]:
    return sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_seeded() -> None:
    assert corpus_entries(), "tests/corpus/ must hold at least one repro"


@pytest.mark.parametrize(
    "path", corpus_entries(), ids=[os.path.basename(p) for p in corpus_entries()]
)
def test_corpus_replays_clean(path: str) -> None:
    config, scheduler = load_repro(path)
    report = run_checked_trial(config, scheduler)
    assert not report.failed, (
        f"{os.path.basename(path)} regressed ({report.status}):\n{report.message}"
    )
