"""Unit tests for the placement policies."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.sim.rng import RngStreams
from repro.storage.placement import (
    ParityDeclusteredPlacement,
    PlacementError,
    RackConstrainedRandomPlacement,
    RoundRobinPlacement,
    make_placement_policy,
)


def rack_histogram(topology, nodes):
    histogram = {}
    for node in nodes:
        rack = topology.rack_of(node)
        histogram[rack] = histogram.get(rack, 0) + 1
    return histogram


@pytest.fixture
def topo_4x4():
    return ClusterTopology.from_rack_sizes([4, 4, 4, 4])


class TestFeasibility:
    def test_too_few_nodes(self, small_topology):
        with pytest.raises(PlacementError):
            RackConstrainedRandomPlacement(small_topology, CodeParams(8, 6))

    def test_rack_constraint_unsatisfiable(self, small_topology):
        # 2 racks x 3 nodes, (6,4): cap 2/rack allows only 4 < 6.
        with pytest.raises(PlacementError):
            RackConstrainedRandomPlacement(small_topology, CodeParams(6, 4))

    def test_relaxed_mode_allows_it(self, small_topology):
        policy = RackConstrainedRandomPlacement(
            small_topology, CodeParams(6, 4), rack_fault_tolerant=False
        )
        assert policy.rack_cap == 0


class TestRandomPlacement:
    def test_invariants(self, topo_4x4, rng):
        params = CodeParams(8, 6)
        policy = RackConstrainedRandomPlacement(topo_4x4, params)
        assignment = policy.place_file(10, rng)
        assert len(assignment) == 80
        for stripe_id in range(10):
            nodes = [
                assignment[block]
                for block in assignment
                if block.stripe_id == stripe_id
            ]
            assert len(set(nodes)) == params.n  # distinct nodes
            worst = max(rack_histogram(topo_4x4, nodes).values())
            assert worst <= params.parity

    def test_deterministic_for_seed(self, topo_4x4):
        params = CodeParams(8, 6)
        first = RackConstrainedRandomPlacement(topo_4x4, params).place_file(
            4, RngStreams(5)
        )
        second = RackConstrainedRandomPlacement(topo_4x4, params).place_file(
            4, RngStreams(5)
        )
        assert first == second


class TestRoundRobin:
    def test_rotation_spreads_natives(self):
        """On the paper's testbed layout every node gets equal natives."""
        topo = ClusterTopology.from_rack_sizes([4, 4, 4])
        policy = RoundRobinPlacement(topo, CodeParams(12, 10), rack_fault_tolerant=False)
        assignment = policy.place_file(24, RngStreams(0))
        natives_per_node: dict[int, int] = {}
        for block, node in assignment.items():
            if block.is_native and block.native_index < 240:
                natives_per_node[node] = natives_per_node.get(node, 0) + 1
        assert set(natives_per_node.values()) == {20}

    def test_respects_rack_cap(self, topo_4x4, rng):
        policy = RoundRobinPlacement(topo_4x4, CodeParams(8, 6))
        for stripe_id in range(6):
            nodes = policy.place_stripe(stripe_id, rng)
            worst = max(rack_histogram(topo_4x4, nodes).values())
            assert worst <= 2


class TestDeclustered:
    def test_balances_load(self, topo_4x4, rng):
        policy = ParityDeclusteredPlacement(topo_4x4, CodeParams(8, 6))
        assignment = policy.place_file(20, rng)
        per_node: dict[int, int] = {}
        for node in assignment.values():
            per_node[node] = per_node.get(node, 0) + 1
        assert max(per_node.values()) - min(per_node.values()) <= 1


class TestRegistry:
    def test_make_by_name(self, topo_4x4):
        for name in ("random", "round-robin", "declustered"):
            policy = make_placement_policy(name, topo_4x4, CodeParams(8, 6))
            assert policy is not None

    def test_unknown_name(self, topo_4x4):
        with pytest.raises(ValueError):
            make_placement_policy("striped", topo_4x4, CodeParams(8, 6))
