"""Performance suite for the erasure-coding kernels, with regression floors.

Runs the fixed workloads of :mod:`benchmarks.perf_ec` and writes
``BENCH_ec.json`` next to this file: before (reference oracles) and after
(batched kernels + plan caches) throughput at RS(9,6) and RS(16,12), plus
the implied speedups.

Environment knobs:

``REPRO_PERF_SMALL``
    Shrink the blocks to 256 KiB so the suite finishes in about a second.
    The speedups are ratios of same-process runs, so they remain
    meaningful at the small size (the packed kernel engages from 4 KiB).
``REPRO_PERF_ENFORCE``
    Turn the checked-in floors (``perf_floor.json``, the ``ec_*`` keys)
    into hard assertions.  The floors are before/after ratios measured in
    this very process, so -- like ``recompute_speedup_vs_reference`` --
    they are asserted at full strength, no slack.
``REPRO_BENCH_EC_OUT``
    Override the output path (empty string disables the write).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.perf_ec import decode_workload, encode_workload, reconstruct_workload

SMALL = bool(os.environ.get("REPRO_PERF_SMALL"))
ENFORCE = bool(os.environ.get("REPRO_PERF_ENFORCE"))
FLOOR_PATH = os.path.join(os.path.dirname(__file__), "perf_floor.json")

with open(FLOOR_PATH) as _handle:
    FLOORS = json.load(_handle)["floors"]

BLOCK_LEN = (256 << 10) if SMALL else (1 << 20)
REPEATS = 3 if SMALL else 5

#: Workload name -> measured metrics, filled as the module's tests run.
_results: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def write_bench_ec():
    """After the module's tests, persist BENCH_ec.json."""
    yield
    out = os.environ.get(
        "REPRO_BENCH_EC_OUT",
        os.path.join(os.path.dirname(__file__), "BENCH_ec.json"),
    )
    if not out or not _results:
        return
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "small": SMALL,
        "enforced": ENFORCE,
        "block_len": BLOCK_LEN,
        "floors": {name: FLOORS[name] for name in sorted(FLOORS) if name.startswith("ec_")},
        "workloads": _results,
    }
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def _check_floor(name: str, result: dict) -> None:
    _results[name] = result
    if not ENFORCE:
        return
    floor = FLOORS[f"ec_{name}_speedup"]
    assert result["speedup"] >= floor, (
        f"{name}: kernel is only {result['speedup']}x the reference, "
        f"expected at least {floor}x"
    )


@pytest.mark.parametrize("n,k", [(9, 6), (16, 12)])
def test_encode_speedup(n, k):
    """Batched parity generation vs the scalar reference matvec."""
    result = encode_workload(n, k, block_len=BLOCK_LEN, repeats=REPEATS)
    _check_floor(f"encode_rs{n}_{k}", result)


@pytest.mark.parametrize("n,k", [(9, 6), (16, 12)])
def test_decode_speedup(n, k):
    """Warm plan-cached decode vs the seed's per-call invert + matvec."""
    result = decode_workload(n, k, block_len=BLOCK_LEN, repeats=REPEATS)
    _check_floor(f"decode_rs{n}_{k}", result)


@pytest.mark.parametrize("n,k", [(9, 6), (16, 12)])
def test_reconstruct_speedup(n, k):
    """Cached single-row repair vs the seed's full decode + re-encode."""
    result = reconstruct_workload(n, k, block_len=BLOCK_LEN, repeats=REPEATS)
    _check_floor(f"reconstruct_rs{n}_{k}", result)
