"""Fault tolerance: scripted failure schedules, detection, retries, speculation.

This package is the simulator's fault-tolerance subsystem.  The paper's
experiments inject failures only at trial start; real erasure-coded clusters
fail *during* jobs, recover, and limp.  The pieces here close that gap:

* :mod:`repro.faults.schedule` -- a declarative, reproducible timeline of
  :class:`FailEvent` / :class:`RecoverEvent` / :class:`SlowdownEvent` /
  :class:`CorruptEvent` entries, buildable programmatically or from a JSON
  trace;
* :mod:`repro.faults.models` -- stochastic generators of such timelines
  (exponential/Weibull lifetimes, correlated bursts, latent sector errors,
  trace replay) for long-horizon reliability campaigns;
* :mod:`repro.faults.driver` -- the simulator processes that replay a
  schedule against a running cluster and detect dead trackers from
  heartbeat expiry (the master is *not* told about failures omnisciently);
* :mod:`repro.faults.records` -- what the fault machinery measured:
  detection latencies, blacklist events, recoveries, slowdowns, repairs,
  corruption discoveries;
* :mod:`repro.faults.errors` -- :class:`JobFailedError`, raised when a
  task exhausts its retry budget and the job is abandoned cleanly, and
  :class:`DataUnavailableError`, its subclass for stripes that dropped
  below ``k`` readable blocks.
"""

from repro.faults.errors import DataUnavailableError, JobFailedError
from repro.faults.models import (
    CompositeModel,
    CorrelatedBursts,
    ExponentialLifetimes,
    FailureModel,
    LatentSectorErrors,
    TraceReplay,
    WeibullLifetimes,
    check_alternation,
    model_from_dict,
    slice_window,
)
from repro.faults.records import (
    BlacklistRecord,
    CorruptionRecord,
    DetectionRecord,
    FaultTimeline,
    RecoveryRecord,
    RepairRecord,
    SlowdownRecord,
)
from repro.faults.schedule import (
    CorruptEvent,
    FailEvent,
    FailureSchedule,
    RecoverEvent,
    SlowdownEvent,
)

__all__ = [
    "BlacklistRecord",
    "CompositeModel",
    "CorrelatedBursts",
    "CorruptEvent",
    "CorruptionRecord",
    "DataUnavailableError",
    "DetectionRecord",
    "ExponentialLifetimes",
    "FailEvent",
    "FailureModel",
    "FailureSchedule",
    "FaultTimeline",
    "JobFailedError",
    "LatentSectorErrors",
    "RecoverEvent",
    "RecoveryRecord",
    "RepairRecord",
    "SlowdownEvent",
    "SlowdownRecord",
    "TraceReplay",
    "WeibullLifetimes",
    "check_alternation",
    "model_from_dict",
    "slice_window",
]
