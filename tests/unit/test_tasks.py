"""Unit tests for JobTaskState (per-job scheduling bookkeeping)."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster
from repro.core.tasks import JobTaskState


@pytest.fixture
def state():
    topology = ClusterTopology.from_rack_sizes([3, 3])
    cluster = HdfsRaidCluster(
        topology, CodeParams(4, 2), num_native_blocks=12, placement="declustered",
        rng=RngStreams(2),
    )
    view = cluster.failure_view(frozenset({0}))
    config = JobConfig(num_blocks=12, num_reduce_tasks=4)
    return (
        JobTaskState(0, config, view, cluster.block_map, topology),
        cluster,
        topology,
        view,
    )


class TestCounters:
    def test_initial_counts(self, state):
        task_state, _, _, view = state
        assert task_state.M == 12
        assert task_state.M_d == len(view.lost_blocks)
        assert task_state.m == 0
        assert task_state.m_d == 0

    def test_pop_degraded_increments_both(self, state):
        task_state, _, _, view = state
        if not task_state.has_unassigned_degraded():
            pytest.skip("no lost blocks on failed node for this seed")
        block = task_state.pop_degraded()
        assert block in view.lost_blocks
        assert task_state.m == 1
        assert task_state.m_d == 1

    def test_pop_local_increments_m_only(self, state):
        task_state, cluster, _, _ = state
        slave = 1
        picked = task_state.pop_local(slave)
        if picked is None:
            pytest.skip("no local work for slave 1 with this seed")
        block, node_local = picked
        assert task_state.m == 1
        assert task_state.m_d == 0
        home = cluster.node_of(block)
        if node_local:
            assert home == slave
        else:
            assert home != slave


class TestPools:
    def test_local_prefers_node_local(self, state):
        task_state, cluster, _, _ = state
        slave = 1
        own = task_state.pending_node_local_count(slave)
        if own == 0:
            pytest.skip("slave 1 stores no natives with this seed")
        block, node_local = task_state.pop_local(slave)
        assert node_local
        assert cluster.node_of(block) == slave

    def test_remote_comes_from_other_rack(self, state):
        task_state, cluster, topology, _ = state
        slave = 1
        block = task_state.pop_remote(slave)
        assert block is not None
        assert topology.rack_of(cluster.node_of(block)) != topology.rack_of(slave)

    def test_drain_everything_exactly_once(self, state):
        task_state, _, _, _ = state
        seen = set()
        while task_state.has_unassigned_maps():
            picked = task_state.pop_local(1) or ((task_state.pop_remote(1), True))
            if picked and picked[0] is not None:
                seen.add(picked[0])
                continue
            block = task_state.pop_degraded()
            if block is not None:
                seen.add(block)
        assert len(seen) == 12
        assert task_state.m == 12

    def test_pop_empty_pools(self, state):
        task_state, _, _, _ = state
        while task_state.pop_degraded() is not None:
            pass
        assert task_state.pop_degraded() is None


class TestReduce:
    def test_slowstart_gate(self, state):
        task_state, _, _, _ = state
        assert not task_state.reduce_ready(slowstart=0.05)
        task_state.launched_map_tasks = 12
        task_state.completed_map_tasks = 1
        assert task_state.reduce_ready(slowstart=0.05)
        assert not task_state.reduce_ready(slowstart=0.5)

    def test_map_only_job_never_reduces(self):
        topology = ClusterTopology.from_rack_sizes([3, 3])
        cluster = HdfsRaidCluster(
            topology, CodeParams(4, 2), num_native_blocks=4, placement="declustered",
            rng=RngStreams(2),
        )
        view = cluster.failure_view(frozenset())
        config = JobConfig(num_blocks=4, num_reduce_tasks=0)
        task_state = JobTaskState(0, config, view, cluster.block_map, topology)
        assert not task_state.reduce_ready(slowstart=0.0)

    def test_pop_reduce_sequence(self, state):
        task_state, _, _, _ = state
        indices = []
        while True:
            index = task_state.pop_reduce()
            if index is None:
                break
            indices.append(index)
        assert indices == [0, 1, 2, 3]


class TestCompletionAccounting:
    def test_over_completion_raises(self, state):
        task_state, _, _, _ = state
        for _ in range(12):
            task_state.on_map_complete()
        with pytest.raises(RuntimeError):
            task_state.on_map_complete()

    def test_job_completed(self, state):
        task_state, _, _, _ = state
        assert not task_state.job_completed()
        for _ in range(12):
            task_state.on_map_complete()
        assert not task_state.job_completed()
        for _ in range(4):
            task_state.on_reduce_complete()
        assert task_state.job_completed()
