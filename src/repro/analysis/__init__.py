"""Closed-form analysis of MapReduce runtime (Section IV-B of the paper).

* :mod:`repro.analysis.model` -- the runtime formulas for normal mode,
  locality-first scheduling and degraded-first scheduling.
* :mod:`repro.analysis.sweep` -- parameter sweeps reproducing Figure 5.
"""

from repro.analysis.model import AnalysisParams, AnalyticalModel
from repro.analysis.sweep import sweep_bandwidth, sweep_blocks, sweep_code

__all__ = [
    "AnalysisParams",
    "AnalyticalModel",
    "sweep_bandwidth",
    "sweep_blocks",
    "sweep_code",
]
