"""Universal policy-conformance harness: every registered scheduler.

The policy framework accepts third-party schedulers via
:func:`repro.core.scheduler.register_scheduler`; this suite is the
contract they must meet.  Every test parameterizes over the *live*
registry (:func:`registered_schedulers`), so a newly registered policy is
conformance-checked the moment it exists -- nothing here names a policy.

The contract:

1. **Slot discipline** -- a heartbeat for ``n`` free map slots yields at
   most ``n`` assignments, every one addressed to the heartbeating slave
   (the master only heartbeats live nodes, so this is also the
   only-live-nodes guarantee).
2. **No double-assignment** -- across a whole drain, every map task is
   assigned exactly once.
3. **No degraded starvation** -- on a bounded scenario with lost blocks,
   every degraded task is eventually assigned and the drain terminates.
4. **Determinism** -- the same scenario and seed produce an identical
   ``sched.decision`` trace, run to run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.scheduler import SchedulerContext, make_scheduler, registered_schedulers
from repro.core.tasks import JobTaskState
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.job import MapTaskCategory
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster

ALL_POLICIES = tuple(registered_schedulers())


def build(seed, num_blocks, fail_node=0):
    """One bounded scenario: 2 racks x 3 nodes, (4,2) code, one failure."""
    topology = ClusterTopology.from_rack_sizes([3, 3], map_slots=2)
    cluster = HdfsRaidCluster(
        topology, CodeParams(4, 2), num_native_blocks=num_blocks,
        placement="random", rng=RngStreams(seed),
    )
    failed = frozenset({fail_node})
    view = cluster.failure_view(failed)
    config = JobConfig(num_blocks=num_blocks, num_reduce_tasks=2)
    state = JobTaskState(0, config, view, cluster.block_map, topology)
    context = SchedulerContext(
        topology=topology,
        live_nodes=frozenset(topology.node_ids()) - failed,
        expected_degraded_read_time=4.0,
        map_time_mean=config.map_time_mean,
        reduce_slowstart=0.05,
    )
    return state, context, cluster


def drain(scheduler, state, context, heartbeat_slots, per_heartbeat=None):
    """Heartbeat live nodes round-robin until every map is assigned.

    ``per_heartbeat(slave, assignments)`` is called after each heartbeat
    for per-call checks.  A scheduler that stops making progress while
    tasks are pending fails the starvation bound.
    """
    stream = []
    live = sorted(context.live_nodes)
    now = 0.0
    stalls = 0
    while state.has_unassigned_maps():
        progressed = False
        for slave in live:
            assignments = scheduler.assign_maps(slave, heartbeat_slots, [state], now)
            if per_heartbeat is not None:
                per_heartbeat(slave, assignments)
            stream.extend(assignments)
            progressed = progressed or bool(assignments)
        now += 3.0
        if not progressed:
            stalls += 1
            assert stalls < 500, (
                f"{scheduler.name} stalled with "
                f"{state.M - state.m} map task(s) pending"
            )
        else:
            stalls = 0
    return stream


@pytest.mark.parametrize("name", ALL_POLICIES)
@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_blocks=st.integers(min_value=8, max_value=32),
    slots=st.integers(min_value=1, max_value=3),
)
def test_slot_discipline(name, seed, num_blocks, slots):
    """<= requested slots per heartbeat, all addressed to the caller."""
    state, context, _ = build(seed, num_blocks)
    scheduler = make_scheduler(name, context)

    def check(slave, assignments):
        assert len(assignments) <= slots, (
            f"{name} over-assigned: {len(assignments)} for {slots} slot(s)"
        )
        for assignment in assignments:
            assert assignment.slave_id == slave, (
                f"{name} assigned to node {assignment.slave_id} "
                f"on node {slave}'s heartbeat"
            )
            assert slave in context.live_nodes

    drain(scheduler, state, context, slots, per_heartbeat=check)


@pytest.mark.parametrize("name", ALL_POLICIES)
@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_blocks=st.integers(min_value=8, max_value=32),
    slots=st.integers(min_value=1, max_value=3),
)
def test_every_task_assigned_exactly_once(name, seed, num_blocks, slots):
    state, context, _ = build(seed, num_blocks)
    scheduler = make_scheduler(name, context)
    stream = drain(scheduler, state, context, slots)
    blocks = [assignment.block for assignment in stream]
    assert len(blocks) == num_blocks, f"{name} assigned {len(blocks)}/{num_blocks}"
    assert len(set(blocks)) == len(blocks), f"{name} double-assigned a task"


@pytest.mark.parametrize("name", ALL_POLICIES)
@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_no_degraded_starvation(name, seed):
    """Every lost block's degraded task launches; the drain terminates."""
    state, context, cluster = build(seed, 24)
    lost = set(cluster.block_map.lost_native_blocks({0}))
    scheduler = make_scheduler(name, context)
    stream = drain(scheduler, state, context, 2)  # asserts termination
    degraded = {
        assignment.block
        for assignment in stream
        if assignment.category is MapTaskCategory.DEGRADED
    }
    assert degraded == lost, (
        f"{name} starved degraded task(s): {sorted(lost - degraded)}"
    )


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_decision_trace_is_deterministic(name):
    """Same scenario + seed => bit-identical ``sched.decision`` trace."""
    from repro.obs.analyze import traced_decisions

    config = SimulationConfig(
        scheduler=name, seed=3, num_nodes=6, num_racks=2,
        code=CodeParams(4, 2),
        jobs=(JobConfig(num_blocks=16, num_reduce_tasks=2),),
    )
    first = traced_decisions(config)
    second = traced_decisions(config)
    assert first, f"{name} emitted no decisions (tracing broken?)"
    assert first == second
