"""Unit tests for nodes, racks and cluster topology."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology, Node, Rack


class TestNode:
    def test_defaults(self):
        node = Node(node_id=0, rack_id=0)
        assert node.map_slots == 4
        assert node.reduce_slots == 1
        assert node.speed_factor == 1.0

    def test_bad_slots(self):
        with pytest.raises(ValueError):
            Node(node_id=0, rack_id=0, map_slots=-1)

    def test_bad_speed(self):
        with pytest.raises(ValueError):
            Node(node_id=0, rack_id=0, speed_factor=0.0)


class TestBuilders:
    def test_homogeneous(self):
        topo = ClusterTopology.homogeneous(12, 3)
        assert topo.num_nodes == 12
        assert topo.num_racks == 3
        assert all(len(rack) == 4 for rack in topo.racks)

    def test_homogeneous_uneven_rejected(self):
        with pytest.raises(ValueError):
            ClusterTopology.homogeneous(10, 3)

    def test_homogeneous_zero_racks(self):
        with pytest.raises(ValueError):
            ClusterTopology.homogeneous(10, 0)

    def test_from_rack_sizes(self):
        topo = ClusterTopology.from_rack_sizes([3, 2], map_slots=2)
        assert topo.num_nodes == 5
        assert topo.nodes_in_rack(0) == (0, 1, 2)
        assert topo.nodes_in_rack(1) == (3, 4)
        assert topo.node(0).map_slots == 2

    def test_from_rack_sizes_speed_factors(self):
        topo = ClusterTopology.from_rack_sizes([2, 2], speed_factors=[1, 1, 0.5, 0.5])
        assert topo.node(2).speed_factor == 0.5

    def test_speed_factor_count_mismatch(self):
        with pytest.raises(ValueError):
            ClusterTopology.from_rack_sizes([2, 2], speed_factors=[1.0])

    def test_empty_rack_rejected(self):
        with pytest.raises(ValueError):
            ClusterTopology.from_rack_sizes([3, 0])

    def test_from_nodes_infers_racks(self):
        nodes = [Node(node_id=i, rack_id=i // 2) for i in range(4)]
        topo = ClusterTopology.from_nodes(nodes)
        assert topo.num_racks == 2
        assert topo.rack_of(3) == 1


class TestValidation:
    def test_duplicate_node_ids(self):
        nodes = [Node(node_id=0, rack_id=0), Node(node_id=0, rack_id=0)]
        with pytest.raises(ValueError):
            ClusterTopology.from_nodes(nodes)

    def test_rack_membership_consistency(self):
        nodes = (Node(node_id=0, rack_id=0),)
        racks = (Rack(rack_id=0, node_ids=(0,)), Rack(rack_id=1, node_ids=(0,)))
        with pytest.raises(ValueError):
            ClusterTopology(nodes=nodes, racks=racks)


class TestQueries:
    def test_node_lookup(self, small_topology):
        assert small_topology.node(4).node_id == 4
        with pytest.raises(KeyError):
            small_topology.node(99)

    def test_rack_lookup(self, small_topology):
        assert small_topology.rack(1).rack_id == 1
        with pytest.raises(KeyError):
            small_topology.rack(9)

    def test_same_rack(self, small_topology):
        assert small_topology.same_rack(0, 2)
        assert not small_topology.same_rack(0, 3)

    def test_node_ids_sorted(self, small_topology):
        assert list(small_topology.node_ids()) == list(range(6))

    def test_total_map_slots(self, small_topology):
        assert small_topology.total_map_slots() == 12
        assert small_topology.total_map_slots(excluding=[0]) == 10
