"""The block map: which node holds which block, and failure-mode views.

:class:`BlockMap` is the namenode's metadata for one erasure-coded file: a
mapping from :class:`~repro.storage.block.BlockId` to node id, plus the
queries the scheduler needs — which native blocks are lost for a given
failure set, and which survivors remain in each stripe.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.faults.errors import DataUnavailableError
from repro.storage.block import BlockId, StoredBlock


class BlockMap:
    """Placement metadata for one erasure-coded file.

    Parameters
    ----------
    params:
        The ``(n, k)`` code parameters.
    assignment:
        Mapping of every block of every stripe to its node id.
    num_native_blocks:
        Count of *real* native blocks (the last stripe may be padded; padded
        positions still exist in ``assignment`` but produce no map task).
    """

    def __init__(
        self,
        params: CodeParams,
        assignment: Mapping[BlockId, int],
        num_native_blocks: int,
    ) -> None:
        self.params = params
        self._assignment = dict(assignment)
        self.num_native_blocks = num_native_blocks
        #: Blocks whose stored copy is checksum-bad (their node may be live).
        self._corrupt: set[BlockId] = set()
        if num_native_blocks < 0:
            raise ValueError("negative native block count")
        self.num_stripes = -(-num_native_blocks // params.k) if num_native_blocks else 0
        for stripe_id in range(self.num_stripes):
            for position in range(params.n):
                block = BlockId(stripe_id=stripe_id, position=position, k=params.k)
                if block not in self._assignment:
                    raise ValueError(f"assignment missing block {block}")

    # -- basic queries -----------------------------------------------------

    def node_of(self, block: BlockId) -> int:
        """Node holding ``block``."""
        try:
            return self._assignment[block]
        except KeyError:
            raise KeyError(f"unknown block {block}") from None

    def blocks_on_node(self, node_id: int) -> list[BlockId]:
        """All blocks stored on ``node_id``, sorted."""
        return sorted(block for block, node in self._assignment.items() if node == node_id)

    def native_blocks(self) -> list[BlockId]:
        """The real native blocks of the file, in file order."""
        blocks = []
        for index in range(self.num_native_blocks):
            stripe_id, position = divmod(index, self.params.k)
            blocks.append(BlockId(stripe_id=stripe_id, position=position, k=self.params.k))
        return blocks

    def stripe_blocks(self, stripe_id: int) -> list[StoredBlock]:
        """All ``n`` blocks of a stripe with their locations."""
        stored = []
        for position in range(self.params.n):
            block = BlockId(stripe_id=stripe_id, position=position, k=self.params.k)
            stored.append(StoredBlock(block=block, node_id=self._assignment[block]))
        return stored

    def all_blocks(self) -> list[StoredBlock]:
        """Every stored block with its location."""
        return [StoredBlock(block=block, node_id=node) for block, node in sorted(self._assignment.items())]

    # -- mutation (online repair + corruption faults) ------------------------

    def reassign(self, block: BlockId, node_id: int) -> None:
        """Move ``block``'s home to ``node_id`` (a repaired copy landed there)."""
        if block not in self._assignment:
            raise KeyError(f"unknown block {block}")
        self._assignment[block] = node_id

    def mark_corrupt(self, block: BlockId) -> None:
        """Record that the stored copy of ``block`` is checksum-bad."""
        if block not in self._assignment:
            raise KeyError(f"unknown block {block}")
        self._corrupt.add(block)

    def clear_corrupt(self, block: BlockId) -> None:
        """A good copy of ``block`` was rewritten; drop the corruption mark."""
        self._corrupt.discard(block)

    def is_corrupt(self, block: BlockId) -> bool:
        """Whether ``block``'s stored copy is checksum-bad."""
        return block in self._corrupt

    def corrupt_blocks(self) -> list[BlockId]:
        """All currently corrupt blocks, sorted."""
        return sorted(self._corrupt)

    # -- failure-mode views --------------------------------------------------

    def lost_native_blocks(self, failed_nodes: Iterable[int]) -> list[BlockId]:
        """Native blocks whose nodes are down — each needs a degraded task."""
        failed = set(failed_nodes)
        return [block for block in self.native_blocks() if self._assignment[block] in failed]

    def surviving_stripe_blocks(
        self, stripe_id: int, failed_nodes: Iterable[int]
    ) -> list[StoredBlock]:
        """Blocks of a stripe still on live nodes."""
        failed = set(failed_nodes)
        return [
            stored
            for stored in self.stripe_blocks(stripe_id)
            if stored.node_id not in failed
        ]

    def readable_stripe_blocks(
        self, stripe_id: int, failed_nodes: Iterable[int]
    ) -> list[StoredBlock]:
        """Surviving blocks of a stripe that are also checksum-good.

        These are the blocks a degraded read or a repair may actually use
        as sources; :meth:`surviving_stripe_blocks` is the location-only
        view (a corrupt block still *occupies* its node for placement).
        """
        return [
            stored
            for stored in self.surviving_stripe_blocks(stripe_id, failed_nodes)
            if stored.block not in self._corrupt
        ]

    def is_recoverable(self, stripe_id: int, failed_nodes: Iterable[int]) -> bool:
        """Whether the stripe still has at least ``k`` surviving blocks."""
        return len(self.surviving_stripe_blocks(stripe_id, failed_nodes)) >= self.params.k

    def is_decodable(self, stripe_id: int, failed_nodes: Iterable[int]) -> bool:
        """Whether at least ``k`` survivors of the stripe are checksum-good."""
        return len(self.readable_stripe_blocks(stripe_id, failed_nodes)) >= self.params.k

    def check_recoverable(self, failed_nodes: Iterable[int]) -> None:
        """Raise :class:`DataUnavailableError` if any stripe lost > ``n - k`` blocks."""
        for stripe_id in range(self.num_stripes):
            if not self.is_recoverable(stripe_id, failed_nodes):
                raise DataUnavailableError(
                    f"stripe {stripe_id} is unrecoverable under failures "
                    f"{sorted(set(failed_nodes))}",
                    stripe_id=stripe_id,
                )

    def unavailable_stripes(self, failed_nodes: Iterable[int]) -> list[int]:
        """Stripes that currently cannot be decoded (``< k`` readable blocks)."""
        failed = set(failed_nodes)
        return [
            stripe_id
            for stripe_id in range(self.num_stripes)
            if not self.is_decodable(stripe_id, failed)
        ]

    def blocks_per_node(self) -> dict[int, int]:
        """Histogram of stored blocks per node (for load-balance assertions)."""
        histogram: dict[int, int] = {}
        for node in self._assignment.values():
            histogram[node] = histogram.get(node, 0) + 1
        return histogram

    def native_blocks_on_node(self, node_id: int, topology: ClusterTopology | None = None) -> list[BlockId]:
        """Real native blocks on one node (the node's local map-task inputs)."""
        del topology  # reserved for future rack-scoped queries
        natives = set(self.native_blocks())
        return [block for block in self.blocks_on_node(node_id) if block in natives]
