"""Unit tests for the Section IV-B analytical model."""

from __future__ import annotations

import pytest

from repro.analysis.model import AnalysisParams, AnalyticalModel
from repro.analysis.sweep import sweep_bandwidth, sweep_blocks, sweep_code
from repro.cluster.network import MB, gbps, mbps
from repro.ec.codec import CodeParams


class TestParams:
    def test_defaults_match_paper(self):
        params = AnalysisParams()
        assert params.num_nodes == 40
        assert params.num_racks == 4
        assert params.map_slots == 4
        assert params.map_time == 20.0
        assert params.code == CodeParams(16, 12)
        assert params.num_blocks == 1440

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalysisParams(num_nodes=1)
        with pytest.raises(ValueError):
            AnalysisParams(map_slots=0)
        with pytest.raises(ValueError):
            AnalysisParams(num_blocks=0)


class TestFormulas:
    def test_normal_mode(self):
        model = AnalyticalModel(AnalysisParams())
        # F*T/(N*L) = 1440*20/160 = 180 s.
        assert model.normal_mode_runtime() == pytest.approx(180.0)

    def test_degraded_read_time(self):
        model = AnalyticalModel(AnalysisParams())
        # (R-1)*k*S/(R*W) = 3*12*128MB / (4*1Gbps).
        expected = 3 * 12 * 128 * MB / (4 * gbps(1))
        assert model.expected_degraded_read_time() == pytest.approx(expected)

    def test_locality_first_formula(self):
        model = AnalyticalModel(AnalysisParams())
        expected = (
            model.normal_mode_runtime()
            + model.total_degraded_read_time_per_rack()
            + 20.0
        )
        assert model.locality_first_runtime() == pytest.approx(expected)

    def test_degraded_first_is_max_of_cases(self):
        params = AnalysisParams()
        model = AnalyticalModel(params)
        compute_bound = 1440 * 20 / (39 * 4) + 20
        network_bound = model.total_degraded_read_time_per_rack() + 20
        assert model.degraded_first_runtime() == pytest.approx(
            max(compute_bound, network_bound)
        )

    def test_df_never_exceeds_lf(self):
        for code in (CodeParams(8, 6), CodeParams(16, 12), CodeParams(20, 15)):
            for bandwidth in (mbps(100), mbps(500), gbps(1)):
                model = AnalyticalModel(
                    AnalysisParams(code=code, rack_bandwidth=bandwidth)
                )
                assert model.degraded_first_runtime() <= model.locality_first_runtime() + 1e-9

    def test_reduction_in_paper_range(self):
        """The paper reports 15%-43% reductions over its sweeps."""
        for point in sweep_code() + sweep_blocks() + sweep_bandwidth():
            assert 0.10 <= point.reduction <= 0.50


class TestSweepShapes:
    def test_fig5a_lf_grows_with_k(self):
        points = sweep_code()
        lf_values = [point.normalized_lf for point in points]
        assert lf_values == sorted(lf_values)

    def test_fig5a_df_flat(self):
        """All degraded reads finish in one round at 1 Gbps: DF is flat."""
        points = sweep_code()
        df_values = {round(point.normalized_df, 6) for point in points}
        assert len(df_values) == 1

    def test_fig5b_normalized_decreases_with_blocks(self):
        points = sweep_blocks()
        lf = [point.normalized_lf for point in points]
        df = [point.normalized_df for point in points]
        assert lf == sorted(lf, reverse=True)
        assert df == sorted(df, reverse=True)

    def test_fig5c_df_saturates(self):
        """DF's runtime is identical at 500 Mbps and 1 Gbps (paper text)."""
        points = sweep_bandwidth()
        by_label = {point.label: point for point in points}
        assert by_label["500Mbps"].normalized_df == pytest.approx(
            by_label["1000Mbps"].normalized_df
        )

    def test_fig5c_lf_improves_with_bandwidth(self):
        points = sweep_bandwidth()
        lf = [point.normalized_lf for point in points]
        assert lf == sorted(lf, reverse=True)
