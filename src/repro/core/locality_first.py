"""Algorithm 1: Hadoop's default locality-first scheduling on HDFS-RAID.

For every free map slot of the heartbeating slave, iterate jobs in FIFO
order and assign the first of: an unassigned local task, an unassigned
remote task, an unassigned degraded task.  Degraded tasks therefore launch
only after all of a job's normal tasks are assigned -- the behaviour the
paper shows causes end-of-phase network competition.
"""

from __future__ import annotations

from repro.core.scheduler import Scheduler
from repro.core.tasks import JobTaskState
from repro.mapreduce.job import MapAssignment


class LocalityFirstScheduler(Scheduler):
    """The paper's LF baseline (Hadoop 0.22 default)."""

    name = "LF"

    def assign_maps(
        self,
        slave_id: int,
        free_map_slots: int,
        jobs: list[JobTaskState],
        now: float,
    ) -> list[MapAssignment]:
        tracing = self.bus is not None
        assignments: list[MapAssignment] = []
        for job in jobs:
            while free_map_slots > 0:
                # Pacing state is captured before any pop mutates m/m_d; LF
                # never *uses* it, but the decision trace records the ratio
                # the paper's condition would have seen at this instant.
                pacing = self.pacing_fields(job) if tracing else None
                assignment = (
                    self._try_local(job, slave_id)
                    or self._try_remote(job, slave_id)
                    or self._try_degraded(job, slave_id)
                )
                if assignment is None:
                    break
                assignments.append(assignment)
                free_map_slots -= 1
                if tracing:
                    self.trace_decision(
                        now, slave_id, job_id=job.job_id,
                        action="assign", reason="lf-order",
                        category=assignment.category.value,
                        block=str(assignment.block),
                        **pacing,
                    )
            if free_map_slots == 0:
                break
        return assignments
