"""Bandwidth specification and transfer-time primitives.

All bandwidths are stored in **bytes per second** and all sizes in bytes;
helpers convert from the paper's megabit figures.  The paper's single
network parameter is ``W``, "the download bandwidth of each rack"; the spec
additionally exposes the rack uplink and the per-node port (NIC) bandwidth
so the simulator can model shuffle and rack-local traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes per megabyte, matching the paper's use of MB for block sizes.
MB = 1024 * 1024

#: Bytes per gigabyte.
GB = 1024 * MB


def mbps(value: float) -> float:
    """Convert megabits/second to bytes/second (decimal megabits, as in '1Gbps')."""
    return value * 1_000_000 / 8


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return mbps(value * 1000)


@dataclass(frozen=True)
class NetworkSpec:
    """Link capacities of the two-level topology.

    Parameters
    ----------
    rack_download_bw:
        Bytes/second each rack can receive from the core switch (the paper's
        ``W``).
    rack_upload_bw:
        Bytes/second each rack can send to the core switch.  Defaults to the
        download bandwidth; set to ``float('inf')`` to reproduce the
        analysis, which only bottlenecks on downloads.
    node_bandwidth:
        Bytes/second of each node's switch port (NIC), in each direction.
        The top-of-rack switch is modelled as non-blocking, so an
        intra-rack transfer is limited only by the two ports; this matches
        the paper's premise that rack-local tasks run as fast as node-local
        ones.  Defaults to ``rack_download_bw``.
    """

    rack_download_bw: float
    rack_upload_bw: float | None = None
    node_bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.rack_download_bw <= 0:
            raise ValueError("rack download bandwidth must be positive")
        if self.rack_upload_bw is None:
            object.__setattr__(self, "rack_upload_bw", self.rack_download_bw)
        if self.node_bandwidth is None:
            object.__setattr__(self, "node_bandwidth", self.rack_download_bw)

    def uncontended_cross_rack_time(self, size: float) -> float:
        """Seconds to move ``size`` bytes between racks with no competition."""
        bottleneck = min(self.rack_download_bw, self.rack_upload_bw, self.node_bandwidth)
        return size / bottleneck

    def uncontended_intra_rack_time(self, size: float) -> float:
        """Seconds to move ``size`` bytes within a rack with no competition."""
        return size / self.node_bandwidth
