"""Cauchy Reed-Solomon coding (Bloemer et al., the paper's reference [3]).

A systematic MDS code whose parity rows come from a Cauchy matrix
``C[i, j] = 1 / (x_i + y_j)`` over GF(2^8) with disjoint element sets
``x = {k, ..., n-1}`` and ``y = {0, ..., k-1}``.  The stacked generator
``[I; C]`` is MDS: every square submatrix of a Cauchy matrix is
invertible, so any ``k`` of the ``n`` stripe blocks recover the data --
the same contract as the Vandermonde-based construction, reached without
the column-reduction step.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.ec import matrix as gfm
from repro.ec.reed_solomon import ReedSolomon


def cauchy_generator_matrix(n: int, k: int) -> np.ndarray:
    """The ``n x k`` systematic Cauchy generator (identity over Cauchy)."""
    if not 0 < k <= n:
        raise ValueError(f"require 0 < k <= n, got n={n} k={k}")
    if n > 256:
        raise ValueError(f"n={n} exceeds the GF(2^8) field size")
    if n == k:
        return gfm.identity(k)
    parity_rows = gfm.cauchy(list(range(k, n)), list(range(k)))
    return np.vstack([gfm.identity(k), parity_rows])


class CauchyReedSolomon(ReedSolomon):
    """Drop-in alternative coder using the Cauchy construction.

    Shares every behaviour with :class:`~repro.ec.reed_solomon.ReedSolomon`
    (encode, decode-from-any-k, single-block reconstruction, decode-plan
    caching); only the generator matrix differs, which changes the parity
    bytes but not the code's guarantees.
    """

    def _build_generator(self) -> np.ndarray:
        return cauchy_generator_matrix(self.n, self.k)


def crs_encode(
    n: int, k: int, native_blocks: Sequence[bytes | np.ndarray]
) -> list[bytes]:
    """One-shot Cauchy-RS encode convenience wrapper."""
    return CauchyReedSolomon(n, k).encode(native_blocks)


def crs_decode(n: int, k: int, available: Mapping[int, bytes | np.ndarray]) -> list[bytes]:
    """One-shot Cauchy-RS decode convenience wrapper."""
    return CauchyReedSolomon(n, k).decode(available)
