"""Scenario fuzzing: random trials under the sanitizer, with shrinking.

The fuzzer generates small random scenarios -- topology, erasure code,
heterogeneity, workload (scripted bursts or realized open-loop Poisson
arrivals), and a :class:`~repro.faults.schedule.FailureSchedule` of
fail/recover/slowdown/corrupt churn, either hand-scripted or realized from
a stochastic failure model (:mod:`repro.faults.models`) at fuzz-scale
rates -- and a *policy* drawn from the full scheduler registry
(:func:`repro.core.scheduler.registered_schedulers`, so third-party and
zoo policies are fuzzed the moment they register).  Each scenario runs
under its drawn policy with an
:class:`~repro.check.invariants.InvariantMonitor` attached, and treats any
invariant violation (or unexpected crash) as a finding.  Findings are
*shrunk* -- schedule events dropped, features disabled, the workload halved
-- while the failure signature still reproduces, and the minimal scenario
is saved as a JSON repro into ``tests/corpus/`` for the test suite to
replay forever after.

Generation is written against a tiny *chooser* interface (``randint`` /
``choice`` / ``uniform`` / ``random``) satisfied natively by
:class:`random.Random` and by a hypothesis ``draw`` adapter, so the CLI
fuzzer (``repro fuzz``) and the property suite
(``tests/property/test_sanitizer_properties.py``) explore the exact same
scenario space -- see :func:`scenario_strategy`.

Clean outcomes are ``ok`` plus the two *typed* refusals the simulator is
specified to produce (:class:`~repro.faults.errors.DataUnavailableError`
for genuinely lost data, :class:`~repro.faults.errors.JobFailedError` for
an exhausted retry budget); anything else is a bug.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import traceback
from dataclasses import dataclass, field, replace

from repro.check.invariants import InvariantMonitor, InvariantViolation, InvariantViolationError
from repro.cluster.failures import FailurePattern
from repro.core.scheduler import registered_schedulers
from repro.cluster.network import gbps, mbps
from repro.ec.codec import CodeParams
from repro.faults.errors import DataUnavailableError, JobFailedError
from repro.faults.schedule import (
    CorruptEvent,
    FailEvent,
    FailureSchedule,
    RecoverEvent,
    SlowdownEvent,
)
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.serialization import config_from_dict, config_to_dict
from repro.mapreduce.simulation import run_simulation

#: The paper's scheduler triple.  Kept as a stable constant for callers
#: that want exactly these three (the property suite always covers them);
#: scenario *generation* draws its policy from the live registry instead,
#: so every registered policy -- zoo and third-party included -- gets
#: fuzzed without touching this tuple.
SCHEDULERS = ("LF", "BDF", "EDF")

#: Runaway bounds: a fuzz trial exceeding either aborts with a ``runaway``
#: violation instead of spinning (e.g. a shrink candidate that strands
#: parked tasks under ``wait_for_repair`` would otherwise heartbeat
#: forever).  Generous against the scenario sizes generated here -- clean
#: trials stay well under a hundred thousand dispatches.
DEFAULT_MAX_DISPATCH = 2_000_000
DEFAULT_MAX_SIM_TIME = 50_000.0

_MB = 1024 * 1024


@dataclass
class TrialReport:
    """Outcome of one checked trial: a status plus the evidence."""

    scheduler: str
    #: ``ok`` / ``data-unavailable`` / ``job-failed`` are clean outcomes;
    #: ``violation`` and ``crash`` are findings.
    status: str
    violations: list[InvariantViolation] = field(default_factory=list)
    message: str = ""

    @property
    def failed(self) -> bool:
        """Whether this trial is a finding (violation or crash)."""
        return self.status in ("violation", "crash")

    @property
    def signature(self) -> tuple[str, str]:
        """What shrinking must preserve: the status and the first broken
        invariant (empty for crashes, whose signature is the status alone --
        pinning the traceback would reject useful shrinks)."""
        invariant = self.violations[0].invariant if self.violations else ""
        return (self.status, invariant)


# -- scenario generation ------------------------------------------------------


class _DrawChooser:
    """Adapts a hypothesis ``draw`` function to the chooser interface.

    This is what makes :func:`build_scenario` genuinely shared between the
    CLI fuzzer (which passes a :class:`random.Random`) and the property
    suite: same generation code, two sources of choice.
    """

    def __init__(self, draw, strategies) -> None:
        self._draw = draw
        self._st = strategies

    def randint(self, low: int, high: int) -> int:
        return self._draw(self._st.integers(min_value=low, max_value=high))

    def choice(self, options):
        return options[self.randint(0, len(options) - 1)]

    def uniform(self, low: float, high: float) -> float:
        return self._draw(
            self._st.floats(
                min_value=low, max_value=high, allow_nan=False, allow_infinity=False
            )
        )

    def random(self) -> float:
        return self.uniform(0.0, 1.0)


def build_scenario(chooser) -> SimulationConfig:
    """Generate one random scenario from a chooser.

    ``chooser`` needs ``randint(low, high)`` (inclusive), ``choice(seq)``,
    ``uniform(low, high)`` and ``random()`` -- the :class:`random.Random`
    surface.  The scheduler policy is itself a fuzzed axis, drawn from the
    full registry rather than the paper's hard-coded triple.  Scenarios
    are kept small (seconds per checked trial) and
    *terminating*: every generated trial either completes or refuses with a
    typed error.  In particular ``wait_for_repair`` -- which parks tasks
    until their data returns -- is only enabled when every failed node is
    scripted to recover and nothing is corrupted, so parked work always
    wakes up.
    """
    # Erasure code and a topology that can place it: distinct nodes per
    # stripe (num_nodes >= n) with at most ``parity`` blocks per rack
    # (num_racks * parity >= n).
    k = chooser.randint(2, 4)
    parity = chooser.randint(2, 3)
    code = CodeParams(n=k + parity, k=k)
    min_racks = -(-code.n // parity)
    num_racks = chooser.randint(min_racks, min_racks + 2)
    per_rack = chooser.randint(1, 4)
    per_rack = max(per_rack, -(-code.n // num_racks))
    num_nodes = num_racks * per_rack

    speed_factors = None
    if chooser.random() < 0.3:
        # Heterogeneous slaves: per-node speed factors.
        speed_factors = tuple(
            round(chooser.uniform(0.5, 2.0), 3) for _ in range(num_nodes)
        )

    jobs = []
    num_jobs = 1 if chooser.random() < 0.7 else 2
    for index in range(num_jobs):
        jobs.append(
            JobConfig(
                num_blocks=chooser.randint(max(4, k), 20),
                map_time_mean=chooser.uniform(4.0, 20.0),
                map_time_std=chooser.uniform(0.1, 2.0),
                reduce_time_mean=chooser.uniform(5.0, 20.0),
                reduce_time_std=chooser.uniform(0.1, 2.0),
                num_reduce_tasks=chooser.randint(1, 4),
                shuffle_ratio=chooser.uniform(0.005, 0.05),
                submit_time=0.0 if index == 0 else chooser.uniform(0.0, 30.0),
            )
        )

    if chooser.random() < 0.3:
        # Open-loop axis: realize a Poisson arrival stream over the scripted
        # job templates.  The realized jobs land in the config directly, so
        # shrinking (which halves and drops jobs) works unchanged.
        from repro.mapreduce.workload import PoissonArrivals
        from repro.sim.rng import RngStreams

        arrived = PoissonArrivals(
            mean_interarrival=chooser.uniform(10.0, 60.0),
            templates=tuple(jobs),
        ).generate(
            RngStreams(chooser.randint(0, 2**31)), chooser.uniform(30.0, 120.0)
        )
        if arrived:  # an empty draw degenerates to the scripted burst
            jobs = list(arrived[:4])

    repair = None
    if chooser.random() < 0.4:
        from repro.storage.repair_driver import RepairConfig

        repair = RepairConfig(
            bandwidth_cap=mbps(chooser.choice([50, 100, 400])),
            concurrent_repairs=chooser.randint(1, 2),
            retry_backoff=chooser.uniform(0.5, 5.0),
            scrub_interval=(
                chooser.uniform(5.0, 30.0) if chooser.random() < 0.5 else None
            ),
        )

    num_stripes = -(-max(job.num_blocks for job in jobs) // k)
    blacklist_threshold = 3  # the SimulationConfig default
    if chooser.random() < 0.35:
        # Stochastic axis: realize a failure *model* into the scripted
        # schedule.  Model-generated churn re-fails recovered nodes, which
        # blacklisting would interact with pathologically (a node dying a
        # third time while blacklisted wedges repair), so it is disabled.
        schedule, all_recover, any_corrupt = _stochastic_schedule(
            chooser,
            num_racks=num_racks,
            per_rack=per_rack,
            num_stripes=num_stripes,
            n=code.n,
        )
        blacklist_threshold = None
    else:
        schedule, all_recover, any_corrupt = _build_schedule(
            chooser,
            num_nodes=num_nodes,
            num_stripes=num_stripes,
            n=code.n,
        )

    # Parking on lost data is only safe when the script guarantees the data
    # comes back; otherwise prefer the typed fail-fast refusal.
    wait_for_repair = all_recover and not any_corrupt and chooser.random() < 0.3

    return SimulationConfig(
        num_nodes=num_nodes,
        num_racks=num_racks,
        map_slots=chooser.randint(1, 4),
        reduce_slots=chooser.randint(1, 2),
        speed_factors=speed_factors,
        rack_bandwidth=gbps(chooser.choice([0.5, 1.0, 2.0])),
        code=code,
        block_size=chooser.choice([4, 8, 16]) * _MB,
        jobs=tuple(jobs),
        failure=FailurePattern.NONE,
        failure_schedule=schedule,
        heartbeat_interval=chooser.uniform(1.0, 4.0),
        heartbeat_expiry=chooser.uniform(8.0, 30.0),
        max_attempts=chooser.randint(2, 5),
        speculative=chooser.random() < 0.3,
        repair=repair,
        wait_for_repair=wait_for_repair,
        blacklist_threshold=blacklist_threshold,
        scheduler=chooser.choice(registered_schedulers()),
        seed=chooser.randint(0, 2**31),
    )


def _build_schedule(chooser, *, num_nodes: int, num_stripes: int, n: int):
    """Generate the scripted churn for one scenario.

    Each node fails at most once (repeated deaths would interact with
    blacklisting in ways that can wedge repair forever -- a scenario the
    simulator refuses rather than models).  Slowdowns only target nodes
    that never fail, and recoveries strictly follow their failure.
    """
    events: list = []
    num_fails = chooser.randint(1, min(3, num_nodes - 1))
    victims = []
    while len(victims) < num_fails:
        node = chooser.randint(0, num_nodes - 1)
        if node not in victims:
            victims.append(node)
    recovered = 0
    for victim in victims:
        at = 0.0 if chooser.random() < 0.5 else round(chooser.uniform(1.0, 60.0), 2)
        events.append(FailEvent(at=at, node=victim))
        if chooser.random() < 0.5:
            events.append(
                RecoverEvent(at=round(at + chooser.uniform(10.0, 120.0), 2), node=victim)
            )
            recovered += 1

    for _ in range(chooser.randint(0, 2)):
        node = chooser.randint(0, num_nodes - 1)
        if node in victims:
            continue
        events.append(
            SlowdownEvent(
                at=round(chooser.uniform(0.0, 60.0), 2),
                node=node,
                factor=round(chooser.uniform(1.5, 6.0), 2),
                duration=round(chooser.uniform(5.0, 60.0), 2),
            )
        )

    num_corrupts = chooser.randint(0, 2) if chooser.random() < 0.4 else 0
    for _ in range(num_corrupts):
        events.append(
            CorruptEvent(
                at=round(chooser.uniform(0.0, 40.0), 2),
                stripe=chooser.randint(0, num_stripes - 1),
                position=chooser.randint(0, n - 1),
            )
        )

    all_recover = recovered == len(victims)
    return FailureSchedule(tuple(events)), all_recover, num_corrupts > 0


def _stochastic_schedule(chooser, *, num_racks: int, per_rack: int, num_stripes: int, n: int):
    """Realize a stochastic failure model into one scenario's schedule.

    The chooser picks a model family (exponential / Weibull / correlated
    bursts / lifetimes + latent sector errors) and fuzz-scale rate
    parameters -- horizons of minutes, not months, so churn actually lands
    inside the trial.  The *realized* event stream is what goes into the
    config: shrinking drops events one at a time and corpus replay stays a
    plain scripted schedule, exactly as for hand-built churn.
    """
    from repro.cluster.topology import ClusterTopology
    from repro.faults import models
    from repro.sim.rng import RngStreams

    topology = ClusterTopology.from_rack_sizes([per_rack] * num_racks)
    horizon = chooser.uniform(60.0, 200.0)
    mttf = chooser.uniform(40.0, 300.0)
    mttr = chooser.uniform(20.0, 120.0)
    family = chooser.choice(["exponential", "weibull", "bursts", "lse-composite"])
    if family == "weibull":
        model = models.WeibullLifetimes(
            mttf=mttf, shape=chooser.uniform(0.5, 1.5), mttr=mttr
        )
    elif family == "bursts":
        model = models.CorrelatedBursts(
            mtbe=chooser.uniform(30.0, 120.0),
            burst_size_mean=chooser.uniform(1.0, 3.0),
            rack_bias=chooser.uniform(0.0, 1.0),
            mttr=mttr,
            spread=chooser.uniform(5.0, 20.0),
        )
    elif family == "lse-composite":
        model = models.CompositeModel(
            models=(
                models.ExponentialLifetimes(mttf=mttf, mttr=mttr),
                models.LatentSectorErrors(
                    num_stripes=num_stripes,
                    stripe_width=n,
                    block_mtbc=num_stripes * n * chooser.uniform(30.0, 150.0),
                ),
            )
        )
    else:
        model = models.ExponentialLifetimes(mttf=mttf, mttr=mttr)
    schedule = model.generate(
        topology, RngStreams(chooser.randint(0, 2**31)), horizon
    )
    failed: set[int] = set()
    recovered_nodes: set[int] = set()
    any_corrupt = False
    for event in schedule.events:
        if isinstance(event, FailEvent):
            failed.update(schedule.fail_targets(event, topology))
        elif isinstance(event, RecoverEvent):
            recovered_nodes.add(event.node)
        elif isinstance(event, CorruptEvent):
            any_corrupt = True
    return schedule, failed <= recovered_nodes, any_corrupt


def scenario_strategy():
    """A hypothesis strategy over the fuzzer's exact scenario space.

    Imported lazily so :mod:`repro.check` works without hypothesis
    installed; the property suite calls this at collection time.
    """
    import hypothesis.strategies as st

    @st.composite
    def _scenarios(draw) -> SimulationConfig:
        return build_scenario(_DrawChooser(draw, st))

    return _scenarios()


# -- checked execution --------------------------------------------------------


def run_checked_trial(
    config: SimulationConfig,
    scheduler: str | None = None,
    max_dispatch: int = DEFAULT_MAX_DISPATCH,
    max_sim_time: float = DEFAULT_MAX_SIM_TIME,
) -> TrialReport:
    """Run one scenario under the sanitizer and classify the outcome."""
    if scheduler is not None:
        config = config.with_scheduler(scheduler)
    monitor = InvariantMonitor(max_dispatch=max_dispatch, max_sim_time=max_sim_time)
    try:
        run_simulation(config, observer=monitor)
    except InvariantViolationError as error:
        return TrialReport(config.scheduler, "violation", violations=error.violations)
    except DataUnavailableError:
        return TrialReport(config.scheduler, "data-unavailable")
    except JobFailedError:
        return TrialReport(config.scheduler, "job-failed")
    except Exception:
        return TrialReport(config.scheduler, "crash", message=traceback.format_exc())
    return TrialReport(config.scheduler, "ok")


# -- shrinking ----------------------------------------------------------------


def _shrink_candidates(config: SimulationConfig):
    """Simpler variants of a failing scenario, most aggressive first."""
    schedule = config.failure_schedule
    if schedule is not None:
        for index, event in enumerate(schedule.events):
            kept = [other for position, other in enumerate(schedule.events) if position != index]
            if isinstance(event, FailEvent) and event.node is not None:
                # A recovery without its failure would revive a live node;
                # drop the pair together.
                kept = [
                    other
                    for other in kept
                    if not (isinstance(other, RecoverEvent) and other.node == event.node)
                ]
            yield replace(config, failure_schedule=FailureSchedule(tuple(kept)))
    if len(config.jobs) > 1:
        yield replace(config, jobs=config.jobs[:1])
    if config.speculative:
        yield replace(config, speculative=False)
    if config.speed_factors is not None:
        yield replace(config, speed_factors=None)
    if config.repair is not None and not config.wait_for_repair:
        yield replace(config, repair=None)
    if config.repair is not None and config.repair.scrub_interval is not None:
        yield replace(config, repair=replace(config.repair, scrub_interval=None))
    smaller_jobs = tuple(
        replace(job, num_blocks=max(config.code.k, job.num_blocks // 2))
        for job in config.jobs
    )
    if smaller_jobs != config.jobs:
        yield replace(config, jobs=smaller_jobs)


def shrink_scenario(
    config: SimulationConfig,
    report: TrialReport,
    max_dispatch: int = DEFAULT_MAX_DISPATCH,
    max_sim_time: float = DEFAULT_MAX_SIM_TIME,
) -> tuple[SimulationConfig, TrialReport]:
    """Greedily simplify a failing scenario while its signature reproduces.

    Tries each candidate in turn; the first that still fails with the same
    ``(status, invariant)`` signature is adopted and shrinking restarts
    from it, until no candidate reproduces.
    """
    config = config.with_scheduler(report.scheduler)
    while True:
        for candidate in _shrink_candidates(config):
            retry = run_checked_trial(
                candidate, max_dispatch=max_dispatch, max_sim_time=max_sim_time
            )
            if retry.failed and retry.signature == report.signature:
                config, report = candidate, retry
                break
        else:
            return config, report


# -- the fuzz driver ----------------------------------------------------------


def _repro_payload(config: SimulationConfig, report: TrialReport, found_by: dict) -> dict:
    head = report.violations[0].format() if report.violations else report.message.strip()
    return {
        "invariant": report.signature[1] or report.status,
        "scheduler": report.scheduler,
        "status": report.status,
        "message": head,
        "found_by": found_by,
        "config": config_to_dict(config),
    }


def save_repro(corpus_dir: str, payload: dict) -> str:
    """Write one minimal repro into the corpus; the name is content-keyed."""
    canonical = json.dumps(payload["config"], sort_keys=True)
    digest = hashlib.sha256(
        f"{payload['scheduler']}|{canonical}".encode()
    ).hexdigest()[:8]
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, f"repro-{payload['invariant']}-{digest}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_repro(path: str) -> tuple[SimulationConfig, str]:
    """Load one corpus entry back into a runnable (config, scheduler)."""
    with open(path) as handle:
        payload = json.load(handle)
    return config_from_dict(payload["config"]), payload["scheduler"]


def run_fuzz(
    trials: int,
    seed: int = 0,
    corpus_dir: str | None = None,
    schedulers: tuple[str, ...] | None = None,
    max_dispatch: int = DEFAULT_MAX_DISPATCH,
    max_sim_time: float = DEFAULT_MAX_SIM_TIME,
    progress=None,
) -> dict:
    """Fuzz ``trials`` scenarios; shrink and save findings.

    By default each scenario runs under its own *drawn* policy -- the
    scheduler axis is part of generation, sampled from the full registry --
    so coverage tracks whatever is registered.  Pass ``schedulers`` to
    instead pin an explicit set and run every scenario under each of them
    (the pre-registry behaviour, e.g. ``schedulers=SCHEDULERS`` for the
    paper triple).

    Returns a summary dict: trial/outcome counts plus one entry per finding
    (scheduler, signature, first violation, corpus path).  The scenario
    stream is fully determined by ``seed`` -- findings never perturb it, so
    a finding reproduces from its trial number alone.
    """
    rng = random.Random(seed)
    outcomes: dict[str, int] = {}
    findings: list[dict] = []
    for trial in range(trials):
        scenario = build_scenario(rng)
        for scheduler in schedulers if schedulers is not None else (scenario.scheduler,):
            report = run_checked_trial(
                scenario.with_scheduler(scheduler),
                max_dispatch=max_dispatch,
                max_sim_time=max_sim_time,
            )
            outcomes[report.status] = outcomes.get(report.status, 0) + 1
            if progress is not None:
                progress(trial, report)
            if not report.failed:
                continue
            shrunk, shrunk_report = shrink_scenario(
                scenario.with_scheduler(scheduler),
                report,
                max_dispatch=max_dispatch,
                max_sim_time=max_sim_time,
            )
            payload = _repro_payload(
                shrunk, shrunk_report, {"seed": seed, "trial": trial}
            )
            if corpus_dir is not None:
                payload["path"] = save_repro(corpus_dir, payload)
            findings.append(payload)
    return {
        "trials": trials,
        "seed": seed,
        "schedulers": (
            list(schedulers) if schedulers is not None else "drawn-per-scenario"
        ),
        "outcomes": outcomes,
        "findings": findings,
    }


# -- campaign-harness fuzzing -------------------------------------------------
#
# The campaign engine (:mod:`repro.experiments.campaign`) promises complete
# accounting no matter what the trials do: every submitted trial ends done,
# failed, or quarantined, and the engine terminates.  This axis attacks
# that promise directly with a runner that fails, hangs, dies, and recovers
# on a deterministic schedule, under randomized retry/timeout policies.


class FuzzTrialError(RuntimeError):
    """The deliberate failure a :class:`FaultyRunner` trial raises."""


@dataclass(frozen=True)
class FaultyRunner:
    """A deterministic fault-injecting toy runner for campaign fuzzing.

    Each trial's fate is drawn from a hash of its config (seed, scheduler)
    and the runner's ``seed`` -- the same trial misbehaves the same way on
    every attempt and across resumed runs, which is what journal-replay
    checks require.  Fates, by cumulative rate: *fail* (raise
    :class:`FuzzTrialError` on every attempt), *flaky* (fail until a marker
    file in ``flaky_dir`` exists, then succeed -- exercising the
    retry-then-recover path), *kill* (``SIGKILL`` the worker process,
    exercising worker-loss detection), *hang* (sleep ``hang_seconds``,
    exercising trial timeouts).  Anything else returns a small
    deterministic JSON payload, so journaling and caching work too.

    Kill and hang only trigger inside pool worker processes; in the
    driver process (the engine's serial path) they degrade to a plain
    raise, so fuzzing can never kill or wedge the test process itself.
    """

    seed: int = 0
    fail_rate: float = 0.0
    flaky_rate: float = 0.0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    hang_seconds: float = 30.0
    flaky_dir: str | None = None

    def _trial_key(self, config: SimulationConfig) -> str:
        text = f"{self.seed}|{config.seed}|{config.scheduler}"
        return hashlib.sha256(text.encode()).hexdigest()

    def _roll(self, config: SimulationConfig) -> float:
        return int(self._trial_key(config)[:12], 16) / float(16**12)

    def _in_worker(self) -> bool:
        import multiprocessing

        return multiprocessing.parent_process() is not None

    def __call__(self, config: SimulationConfig) -> dict:
        roll = self._roll(config)
        threshold = self.fail_rate
        if roll < threshold:
            raise FuzzTrialError(f"injected failure for trial {config.seed}")
        threshold += self.flaky_rate
        if roll < threshold:
            if self.flaky_dir is None:
                raise FuzzTrialError("flaky trial without a flaky_dir")
            marker = os.path.join(self.flaky_dir, self._trial_key(config))
            if not os.path.exists(marker):
                with open(marker, "w") as handle:
                    handle.write("attempted\n")
                raise FuzzTrialError(
                    f"injected first-attempt failure for trial {config.seed}"
                )
        else:
            threshold += self.kill_rate
            if roll < threshold:
                if self._in_worker():
                    import signal as _signal

                    os.kill(os.getpid(), _signal.SIGKILL)
                raise FuzzTrialError(
                    f"injected kill (serial fallback) for trial {config.seed}"
                )
            threshold += self.hang_rate
            if roll < threshold:
                if self._in_worker():
                    import time as _time

                    _time.sleep(self.hang_seconds)
                raise FuzzTrialError(
                    f"injected hang (serial fallback) for trial {config.seed}"
                )
        return {
            "trial_seed": config.seed,
            "scheduler": config.scheduler,
            "value": self._trial_key(config)[:8],
        }


def run_campaign_fuzz(batches: int, seed: int = 0, progress=None) -> dict:
    """Fuzz the campaign harness: randomized faults under randomized policies.

    Each batch builds a grid of toy trials, draws a fault mix (failures,
    first-attempt flakes, worker kills, hangs) and an execution policy
    (retries, workers, optional trial timeout), runs it through a
    journaled :class:`~repro.experiments.campaign.CampaignEngine`, then
    re-runs over the same journal.  Violations are recorded when the
    engine breaks its contract: incomplete accounting
    (``done + failed + quarantined != submitted``), a result list out of
    step with the accounting, an unexpected crash, or a resumed run whose
    replayed payloads differ from the originals.
    """
    import tempfile

    from repro.experiments.campaign import CampaignEngine, CampaignPolicy

    rng = random.Random(seed)
    violations: list[str] = []
    total_trials = 0
    for batch in range(batches):
        with tempfile.TemporaryDirectory(prefix="repro-campaign-fuzz-") as tmp:
            num_trials = rng.randint(4, 9)
            total_trials += num_trials
            configs = [
                SimulationConfig(
                    seed=1000 * batch + index,
                    scheduler=rng.choice(registered_schedulers()),
                )
                for index in range(num_trials)
            ]
            hang = rng.random() < 0.25
            runner = FaultyRunner(
                seed=seed * 7919 + batch,
                fail_rate=rng.uniform(0.0, 0.35),
                flaky_rate=rng.uniform(0.0, 0.35),
                kill_rate=rng.uniform(0.0, 0.25),
                hang_rate=0.2 if hang else 0.0,
                hang_seconds=30.0,
                flaky_dir=tmp,
            )
            policy = CampaignPolicy(
                retries=rng.randint(0, 2),
                trial_timeout=1.0 if hang else None,
                backoff=0.0,
                workers=rng.randint(2, 3),
                on_error="collect",
            )
            journal_path = os.path.join(tmp, "journal.jsonl")

            def check(tag: str, outcome) -> None:
                counters = outcome.counters
                if not counters.consistent():
                    violations.append(
                        f"batch {batch} [{tag}]: accounting broken: "
                        f"{counters.to_dict()}"
                    )
                resolved = sum(
                    1 for payload in outcome.results if payload is not None
                )
                if resolved != counters.done:
                    violations.append(
                        f"batch {batch} [{tag}]: {resolved} result(s) for "
                        f"{counters.done} done trial(s)"
                    )

            try:
                first = CampaignEngine(
                    runner=runner, policy=policy, journal_path=journal_path
                ).run(configs)
                check("first", first)
                resumed = CampaignEngine(
                    runner=runner, policy=policy, journal_path=journal_path
                ).run(configs)
                check("resumed", resumed)
                for index, (before, after) in enumerate(
                    zip(first.results, resumed.results)
                ):
                    if before is not None and before != after:
                        violations.append(
                            f"batch {batch}: replayed payload for trial "
                            f"{index} differs from the original"
                        )
            except Exception as error:
                violations.append(
                    f"batch {batch}: engine crashed: {error!r}\n"
                    + traceback.format_exc()
                )
            if progress is not None:
                progress(batch, len(violations))
    return {
        "batches": batches,
        "seed": seed,
        "trials": total_trials,
        "violations": violations,
    }
