"""HDFS-RAID-like storage substrate.

Models what the paper's middleware layer provides: files divided into
fixed-size blocks, blocks grouped into erasure-coded stripes, stripes placed
across nodes under rack-tolerance constraints, and a degraded-read planner
for failure mode.

* :mod:`repro.storage.block` -- block identities and metadata.
* :mod:`repro.storage.placement` -- placement policies (rack-constrained
  random, round-robin, parity-declustered).
* :mod:`repro.storage.namenode` -- the block map (file -> stripe -> node).
* :mod:`repro.storage.degraded` -- choosing ``k`` survivors per lost block.
* :mod:`repro.storage.hdfs` -- the :class:`~repro.storage.hdfs.HdfsRaidCluster`
  facade tying codec, placement and failure views together.
"""

from repro.storage.block import BlockId, StoredBlock
from repro.storage.degraded import DegradedReadPlan, DegradedReadPlanner, SourceSelection
from repro.storage.hdfs import HdfsRaidCluster
from repro.storage.namenode import BlockMap
from repro.storage.placement import (
    PlacementError,
    PlacementPolicy,
    ParityDeclusteredPlacement,
    RackConstrainedRandomPlacement,
    RoundRobinPlacement,
    make_placement_policy,
)
from repro.storage.repair import BlockRepair, RepairPlan, RepairPlanner

__all__ = [
    "BlockId",
    "BlockMap",
    "BlockRepair",
    "RepairPlan",
    "RepairPlanner",
    "DegradedReadPlan",
    "DegradedReadPlanner",
    "HdfsRaidCluster",
    "ParityDeclusteredPlacement",
    "PlacementError",
    "PlacementPolicy",
    "RackConstrainedRandomPlacement",
    "RoundRobinPlacement",
    "SourceSelection",
    "StoredBlock",
    "make_placement_policy",
]
