"""A functional mini-MapReduce runtime (the paper's testbed, Section VI).

Where :mod:`repro.mapreduce` *simulates* task execution on a virtual clock,
this package really runs it: blocks hold real bytes, HDFS-RAID encoding uses
the real Reed-Solomon coder, degraded reads really decode, and WordCount /
Grep / LineCount really tokenise text -- on a pool of worker threads with
per-node slot limits and an emulated network.  It substitutes for the
paper's 13-node Hadoop 0.22 + HDFS-RAID cluster.

* :mod:`repro.testbed.textgen` -- seeded Gutenberg-like corpus generator.
* :mod:`repro.testbed.localfs` -- in-memory datanode stores + HDFS-RAID fs.
* :mod:`repro.testbed.netem` -- wall-clock network emulation (scaled).
* :mod:`repro.testbed.jobs` -- the three I/O-heavy MapReduce jobs.
* :mod:`repro.testbed.engine` -- the threaded MapReduce engine with
  pluggable (LF / BDF / EDF) scheduling.
"""

from repro.testbed.engine import TestbedCluster, TestbedConfig, TestbedJobResult
from repro.testbed.jobs import GrepJob, LineCountJob, MapReduceJob, WordCountJob
from repro.testbed.localfs import HdfsRaidFilesystem
from repro.testbed.netem import EmulatedNetwork
from repro.testbed.textgen import generate_corpus

__all__ = [
    "EmulatedNetwork",
    "GrepJob",
    "HdfsRaidFilesystem",
    "LineCountJob",
    "MapReduceJob",
    "TestbedCluster",
    "TestbedConfig",
    "TestbedJobResult",
    "WordCountJob",
    "generate_corpus",
]
