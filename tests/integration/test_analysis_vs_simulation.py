"""Cross-validation: the Section IV-B formulas vs the simulator.

The analysis makes simplifying assumptions (lock-step rounds, constant task
times, declustered placement, map-only jobs, downloads bottlenecked on rack
downlinks).  Feeding the simulator a configuration that honours those
assumptions, the measured runtimes should land near the closed forms --
a strong end-to-end consistency check between two independent
implementations of the same model.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis.model import AnalysisParams, AnalyticalModel
from repro.cluster.failures import FailurePattern
from repro.cluster.network import MB, mbps
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.simulation import run_simulation

#: Shared parameters (modest scale so the test stays fast).
NUM_NODES = 16
NUM_RACKS = 4
MAP_SLOTS = 2
MAP_TIME = 20.0
BLOCK_SIZE = 64 * MB
BANDWIDTH = mbps(400)
CODE = CodeParams(8, 6)
NUM_BLOCKS = 320


def analysis_model() -> AnalyticalModel:
    return AnalyticalModel(
        AnalysisParams(
            num_nodes=NUM_NODES,
            num_racks=NUM_RACKS,
            map_slots=MAP_SLOTS,
            map_time=MAP_TIME,
            block_size=BLOCK_SIZE,
            rack_bandwidth=BANDWIDTH,
            code=CODE,
            num_blocks=NUM_BLOCKS,
        )
    )


def sim_config(scheduler: str, seed: int) -> SimulationConfig:
    return SimulationConfig(
        num_nodes=NUM_NODES,
        num_racks=NUM_RACKS,
        map_slots=MAP_SLOTS,
        code=CODE,
        block_size=BLOCK_SIZE,
        rack_bandwidth=BANDWIDTH,
        placement="declustered",
        jobs=(
            JobConfig(
                num_blocks=NUM_BLOCKS,
                map_time_mean=MAP_TIME,
                map_time_std=0.01,  # the analysis assumes constant task times
                num_reduce_tasks=0,
                shuffle_ratio=0.0,
            ),
        ),
        scheduler=scheduler,
        heartbeat_interval=1.0,  # fine-grained: approximates lock-step rounds
        seed=seed,
    )


def mean_runtime(scheduler: str, failure: FailurePattern, seeds=range(3)) -> float:
    samples = []
    for seed in seeds:
        config = sim_config(scheduler, seed).with_failure(failure)
        samples.append(run_simulation(config).job(0).runtime)
    return statistics.mean(samples)


class TestCrossValidation:
    def test_normal_mode_matches_formula(self):
        predicted = analysis_model().normal_mode_runtime()
        measured = mean_runtime("LF", FailurePattern.NONE)
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_locality_first_matches_formula(self):
        predicted = analysis_model().locality_first_runtime()
        measured = mean_runtime("LF", FailurePattern.SINGLE_NODE)
        assert measured == pytest.approx(predicted, rel=0.30)

    def test_degraded_first_matches_formula(self):
        predicted = analysis_model().degraded_first_runtime()
        measured = mean_runtime("BDF", FailurePattern.SINGLE_NODE)
        assert measured == pytest.approx(predicted, rel=0.30)

    def test_reduction_direction_agrees(self):
        model = analysis_model()
        predicted_reduction = model.runtime_reduction()
        lf = mean_runtime("LF", FailurePattern.SINGLE_NODE)
        bdf = mean_runtime("BDF", FailurePattern.SINGLE_NODE)
        measured_reduction = (lf - bdf) / lf
        assert measured_reduction > 0
        assert measured_reduction == pytest.approx(predicted_reduction, abs=0.15)
