"""Unit tests for the NodeTree transfer router."""

from __future__ import annotations

import pytest

from repro.cluster.network import NetworkSpec
from repro.cluster.nodetree import NodeTree


@pytest.fixture
def tree(sim, small_topology):
    return NodeTree(sim, small_topology, NetworkSpec(rack_download_bw=10.0))


class TestPaths:
    def test_same_node_empty(self, tree):
        assert tree.path(0, 0) == []

    def test_intra_rack_uses_nics_only(self, tree):
        assert tree.path(0, 2) == ["node0:out", "node2:in"]

    def test_cross_rack_uses_rack_links(self, tree):
        assert tree.path(0, 4) == ["node0:out", "rack0:up", "rack1:down", "node4:in"]

    def test_rack_path_cross(self, tree):
        assert tree.rack_path(0, 4) == ["rack0:up", "rack1:down", "node4:in"]

    def test_rack_path_same_rack(self, tree):
        assert tree.rack_path(1, 4) == ["node4:in"]

    def test_is_cross_rack(self, tree):
        assert tree.is_cross_rack(0, 4)
        assert not tree.is_cross_rack(0, 1)


class TestTransferTiming:
    def test_single_cross_rack_transfer(self, sim, tree):
        log = []

        def proc():
            yield tree.transfer(0, 4, 100.0)
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [10.0]

    def test_two_downloads_same_rack_halve(self, sim, tree):
        """The motivating example's contention: both finish at double time."""
        log = []

        def proc(src, dst):
            yield tree.transfer(src, dst, 100.0)
            log.append((dst, sim.now))

        sim.spawn(proc(3, 0))
        sim.spawn(proc(4, 1))
        sim.run()
        assert dict(log) == {0: 20.0, 1: 20.0}

    def test_intra_rack_pairs_parallel(self, sim, tree):
        """Distinct intra-rack pairs do not contend (non-blocking switch)."""
        log = []

        def proc(src, dst):
            yield tree.transfer(src, dst, 100.0)
            log.append((dst, sim.now))

        sim.spawn(proc(0, 1))
        sim.spawn(proc(2, 0))  # shares no NIC direction with 0->1
        sim.run()
        assert dict(log) == {1: 10.0, 0: 10.0}

    def test_shared_source_nic_contends(self, sim, tree):
        log = []

        def proc(src, dst):
            yield tree.transfer(src, dst, 100.0)
            log.append((dst, sim.now))

        sim.spawn(proc(0, 1))
        sim.spawn(proc(0, 2))  # same source NIC
        sim.run()
        assert dict(log) == {1: 20.0, 2: 20.0}

    def test_downlink_load_probe(self, sim, tree):
        tree.transfer(0, 4, 100.0)
        assert tree.downlink_load(1) == 1
        assert tree.downlink_load(0) == 0
        sim.run()
        assert tree.downlink_load(1) == 0


class TestModels:
    def test_exclusive_model_serialises(self, sim, small_topology):
        tree = NodeTree(
            sim, small_topology, NetworkSpec(rack_download_bw=10.0), model="exclusive"
        )
        log = []

        def proc(src, dst):
            yield tree.transfer(src, dst, 100.0)
            log.append((dst, sim.now))

        sim.spawn(proc(3, 0))
        sim.spawn(proc(4, 1))
        sim.run()
        assert sorted(time for _, time in log) == [10.0, 20.0]

    def test_unknown_model(self, sim, small_topology):
        with pytest.raises(ValueError):
            NodeTree(sim, small_topology, NetworkSpec(rack_download_bw=1.0), model="magic")
