"""Unit tests for declarative failure schedules."""

from __future__ import annotations

import json

import pytest

from repro.cluster.failures import FailureInjector, FailurePattern
from repro.faults.records import DetectionRecord, FaultTimeline
from repro.faults.schedule import (
    FailEvent,
    FailureSchedule,
    RecoverEvent,
    SlowdownEvent,
)
from repro.sim.rng import RngStreams


class TestEventValidation:
    def test_fail_event_needs_exactly_one_target(self):
        with pytest.raises(ValueError):
            FailEvent(at=1.0)
        with pytest.raises(ValueError):
            FailEvent(at=1.0, node=2, rack=0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FailEvent(at=-1.0, node=2)
        with pytest.raises(ValueError):
            RecoverEvent(at=-1.0, node=2)
        with pytest.raises(ValueError):
            SlowdownEvent(at=-1.0, node=2, factor=2.0, duration=5.0)

    def test_slowdown_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            SlowdownEvent(at=1.0, node=2, factor=1.0, duration=5.0)

    def test_slowdown_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            SlowdownEvent(at=1.0, node=2, factor=2.0, duration=0.0)


class TestSchedule:
    def test_events_sorted_by_time(self):
        schedule = FailureSchedule(
            (RecoverEvent(at=120.0, node=5), FailEvent(at=30.0, node=5))
        )
        assert [event.at for event in schedule.events] == [30.0, 120.0]
        assert len(schedule) == 2

    def test_initial_failures_are_t0_fail_events(self, small_topology):
        schedule = FailureSchedule(
            (
                FailEvent(at=0.0, node=1),
                FailEvent(at=0.0, rack=1),
                FailEvent(at=30.0, node=2),
            )
        )
        rack_nodes = set(small_topology.nodes_in_rack(1))
        assert schedule.initial_failures(small_topology) == frozenset({1} | rack_nodes)

    def test_deferred_events_exclude_t0_fails(self, small_topology):
        fail_later = FailEvent(at=30.0, node=2)
        recover = RecoverEvent(at=0.0, node=1)
        schedule = FailureSchedule((FailEvent(at=0.0, node=1), recover, fail_later))
        assert schedule.deferred_events() == [recover, fail_later]

    def test_rack_event_expands_to_all_nodes(self, small_topology):
        event = FailEvent(at=10.0, rack=0)
        schedule = FailureSchedule((event,))
        assert schedule.fail_targets(event, small_topology) == sorted(
            small_topology.nodes_in_rack(0)
        )

    def test_validate_rejects_unknown_node(self, small_topology):
        schedule = FailureSchedule((FailEvent(at=1.0, node=99),))
        with pytest.raises(ValueError, match="unknown node"):
            schedule.validate(small_topology)

    def test_validate_rejects_unknown_rack(self, small_topology):
        schedule = FailureSchedule((FailEvent(at=1.0, rack=9),))
        with pytest.raises(ValueError, match="unknown rack"):
            schedule.validate(small_topology)

    def test_validate_accepts_well_formed(self, small_topology):
        schedule = FailureSchedule(
            (
                FailEvent(at=0.0, node=1),
                SlowdownEvent(at=5.0, node=2, factor=2.0, duration=10.0),
                RecoverEvent(at=50.0, node=1),
            )
        )
        schedule.validate(small_topology)  # does not raise

    def test_validate_checks_every_event_and_names_the_index(self, small_topology):
        schedule = FailureSchedule(
            (
                FailEvent(at=0.0, node=1),
                RecoverEvent(at=50.0, node=1),
                RecoverEvent(at=60.0, node=99),
            )
        )
        with pytest.raises(ValueError, match=r"events\[2\].*unknown node 99"):
            schedule.validate(small_topology)

    def test_validate_index_reflects_time_order(self, small_topology):
        # Events are sorted at construction; the reported index must point
        # into the *sorted* tuple, not the constructor argument order.
        schedule = FailureSchedule(
            (FailEvent(at=90.0, node=99), FailEvent(at=1.0, node=0))
        )
        with pytest.raises(ValueError, match=r"events\[1\]"):
            schedule.validate(small_topology)

    def test_validate_bounds_corrupt_coordinates_when_shape_given(
        self, small_topology
    ):
        from repro.faults.schedule import CorruptEvent

        schedule = FailureSchedule((CorruptEvent(at=5.0, stripe=4, position=0),))
        schedule.validate(small_topology)  # no shape: deferred to install
        with pytest.raises(ValueError, match=r"events\[0\].*unknown stripe 4"):
            schedule.validate(small_topology, num_stripes=4, stripe_width=6)
        bad_position = FailureSchedule((CorruptEvent(at=5.0, stripe=0, position=6),))
        with pytest.raises(ValueError, match="unknown block position 6"):
            bad_position.validate(small_topology, num_stripes=4, stripe_width=6)


class TestRoundTrip:
    SCHEDULE = FailureSchedule(
        (
            FailEvent(at=30.0, node=5),
            FailEvent(at=45.0, rack=1),
            SlowdownEvent(at=60.0, node=7, factor=4.0, duration=50.0),
            RecoverEvent(at=120.0, node=5),
        )
    )

    def test_dict_round_trip(self):
        assert FailureSchedule.from_dict(self.SCHEDULE.to_dict()) == self.SCHEDULE

    def test_json_round_trip(self):
        assert FailureSchedule.from_json(self.SCHEDULE.to_json()) == self.SCHEDULE

    def test_dict_omits_null_fields(self):
        entry = self.SCHEDULE.to_dict()["events"][0]
        assert entry == {"kind": "fail", "at": 30.0, "node": 5}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FailureSchedule.from_dict({"events": [{"kind": "explode", "at": 1.0}]})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(self.SCHEDULE.to_json())
        assert FailureSchedule.load(str(path)) == self.SCHEDULE

    def test_empty_trace(self):
        assert FailureSchedule.from_json(json.dumps({})) == FailureSchedule()


class TestInjectorBridge:
    def test_to_schedule_matches_choose_failed_nodes(self, small_topology):
        injector = FailureInjector(FailurePattern.SINGLE_NODE)
        chosen = injector.choose_failed_nodes(small_topology, RngStreams(9))
        schedule = injector.to_schedule(small_topology, RngStreams(9))
        assert schedule.initial_failures(small_topology) == chosen
        assert schedule.deferred_events() == []

    def test_to_schedule_deferred_strike(self, small_topology):
        injector = FailureInjector(FailurePattern.SINGLE_NODE)
        schedule = injector.to_schedule(small_topology, RngStreams(9), at=40.0)
        assert schedule.initial_failures(small_topology) == frozenset()
        assert len(schedule.deferred_events()) == 1

    def test_none_pattern_yields_empty_schedule(self, small_topology):
        injector = FailureInjector(FailurePattern.NONE)
        schedule = injector.to_schedule(small_topology, RngStreams(9))
        assert len(schedule) == 0


class TestRecords:
    def test_detection_latency(self):
        record = DetectionRecord(node=3, failed_at=30.0, detected_at=45.0)
        assert record.latency == pytest.approx(15.0)

    def test_timeline_aggregates(self):
        timeline = FaultTimeline()
        timeline.detections.append(DetectionRecord(node=3, failed_at=30.0, detected_at=45.0))
        assert timeline.detection_latencies == [pytest.approx(15.0)]
        assert timeline.blacklisted_nodes == set()
