"""Top-level simulation entry point.

``run_simulation(config)`` builds the cluster, storage, scheduler, master
and slaves, injects the configured failure (an at-start pattern, a deferred
strike, or a scripted :class:`~repro.faults.schedule.FailureSchedule`), runs
the event loop to completion and returns a
:class:`~repro.mapreduce.metrics.SimulationResult`.  A job that exhausts its
retry budget aborts the trial with a
:class:`~repro.faults.errors.JobFailedError` carrying the partial result.

Passing an :class:`~repro.obs.ObservabilityCollector` as ``observer``
records structured events, scheduler decision traces and utilization
metrics for the trial.  Instrumentation is strictly passive -- it draws no
random numbers and schedules nothing on the event heap -- so an observed
trial produces a bit-identical :class:`SimulationResult`.
"""

from __future__ import annotations

import contextlib
import os

from repro.cluster.failures import FailureInjector
from repro.cluster.nodetree import NodeTree
from repro.cluster.topology import ClusterTopology
from repro.core.scheduler import SchedulerContext, make_scheduler
from repro.faults.driver import failure_detector_process, install_schedule
from repro.faults.errors import DataUnavailableError, JobFailedError
from repro.mapreduce.config import SimulationConfig
from repro.mapreduce.master import JobTracker
from repro.mapreduce.metrics import SimulationResult
from repro.mapreduce.slave import SlaveRuntime
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster
from repro.storage.repair_driver import RepairDriver


def build_topology(config: SimulationConfig) -> ClusterTopology:
    """Construct the cluster topology a config describes."""
    if config.num_nodes % config.num_racks != 0:
        raise ValueError(
            f"{config.num_nodes} nodes do not divide into {config.num_racks} racks"
        )
    per_rack = config.num_nodes // config.num_racks
    return ClusterTopology.from_rack_sizes(
        [per_rack] * config.num_racks,
        map_slots=config.map_slots,
        reduce_slots=config.reduce_slots,
        speed_factors=list(config.speed_factors) if config.speed_factors else None,
    )


def expected_degraded_read_time(config: SimulationConfig) -> float:
    """The analysis estimate ``(R-1) k S / (R W)`` (Section IV-B).

    Used by EDF's rack-awareness guard as the minimum spacing between
    degraded launches in one rack.
    """
    R = config.num_racks  # noqa: N806 - paper notation
    k = config.code.k
    return (R - 1) * k * config.block_size / (R * config.rack_bandwidth)


def run_simulation(
    config: SimulationConfig, observer=None, check: bool | None = None
) -> SimulationResult:
    """Run one trial and return its metrics.

    The trial is fully determined by ``config`` (including ``config.seed``);
    ``observer`` (an :class:`~repro.obs.ObservabilityCollector`) is optional
    and never perturbs the result.

    With ``check=True`` (or ``REPRO_CHECK`` set non-empty in the
    environment, which is how check mode reaches process-pool workers) the
    trial runs under a :class:`~repro.check.InvariantMonitor`; a violated
    invariant raises :class:`~repro.check.InvariantViolationError` carrying
    the result and the violation report.  The monitor is as passive as a
    plain collector, so a checked trial is bit-identical to an unchecked
    one.  Passing an :class:`InvariantMonitor` as ``observer`` implies
    ``check=True``.
    """
    # Imported lazily: repro.check imports this module for its fuzz driver.
    from repro.check.invariants import InvariantMonitor

    if check is None:
        check = os.environ.get("REPRO_CHECK", "") not in ("", "0")
    if isinstance(observer, InvariantMonitor):
        monitor = observer
    elif check:
        monitor = InvariantMonitor(collector=observer)
        observer = monitor
    else:
        monitor = None
    bus = observer.bus if observer is not None else None
    setup_span = (
        observer.profiler.span("setup")
        if observer is not None
        else contextlib.nullcontext()
    )
    with setup_span:
        sim, tracker, runtime = _build_trial(config, observer, bus)
    run_span = (
        observer.profiler.span("run")
        if observer is not None
        else contextlib.nullcontext()
    )
    with run_span:
        sim.run()
    if observer is not None:
        observer.profiler.events_dispatched = sim.dispatched
        observer.profiler.events_emitted = bus.emitted
        observer.finalize(sim.now)
    result = SimulationResult(
        jobs=tracker.metrics,
        failed_nodes=tracker.failed_nodes,
        scheduler=config.scheduler,
        seed=config.seed,
        shuffle_totals={
            job_id: (shuffle.total_deposited, shuffle.total_drained)
            for job_id, shuffle in tracker.shuffles.items()
        },
        faults=tracker.faults,
    )
    if monitor is not None:
        monitor.raise_if_violations(result)
    if not tracker.finished:
        if tracker.parked_tasks > 0:
            raise DataUnavailableError(
                f"{tracker.parked_tasks} task(s) still parked waiting for "
                "repair when the event heap drained -- the lost data never "
                "became decodable again",
                result,
            )
        raise RuntimeError("simulation ended before all jobs completed")
    failed_jobs = sorted(
        job_id for job_id, metrics in tracker.metrics.items() if metrics.failed
    )
    if failed_jobs:
        reasons = "; ".join(
            f"job {job_id}: {tracker.metrics[job_id].failure_reason}"
            for job_id in failed_jobs
        )
        message = f"{len(failed_jobs)} job(s) failed -- {reasons}"
        if any(
            tracker.metrics[job_id].failure_kind == "data-unavailable"
            for job_id in failed_jobs
        ):
            raise DataUnavailableError(message, result)
        raise JobFailedError(message, result)
    return result


def _build_trial(
    config: SimulationConfig, observer, bus
) -> tuple[Simulator, JobTracker, SlaveRuntime]:
    """Assemble one trial's simulator, master and slaves (no events run yet)."""
    sim = Simulator()
    rng = RngStreams(config.seed)
    topology = build_topology(config)

    # Storage: one erasure-coded file shared by all jobs, as in the paper's
    # simulator setup ("we create 1440 blocks in total").
    max_blocks = max(job.num_blocks for job in config.jobs)
    hdfs = HdfsRaidCluster(
        topology=topology,
        params=config.code,
        num_native_blocks=max_blocks,
        placement=config.placement,
        rng=rng,
        source_selection=config.source_selection,
    )

    if config.failure_schedule is not None:
        # Scripted churn: t=0 fail events are down-before-start (the paper's
        # setting); everything later is replayed mid-run by the driver and
        # detected by the master from heartbeat expiry.
        schedule = config.failure_schedule
        schedule.validate(topology)
        chosen_victims = schedule.initial_failures(topology)
        deferred_failure = False
        initial_failed = chosen_victims
    else:
        injector = FailureInjector(config.failure)
        eligible = list(config.failure_eligible) if config.failure_eligible else None
        chosen_victims = injector.choose_failed_nodes(topology, rng, eligible)
        # With a failure_time, the cluster starts healthy and the victims die
        # mid-run; otherwise they are down from the beginning.
        deferred_failure = config.failure_time is not None and bool(chosen_victims)
        initial_failed = frozenset() if deferred_failure else chosen_victims

    if chosen_victims and not config.wait_for_repair:
        # Fail fast on an undecodable initial failure set.  With
        # ``wait_for_repair`` the check is deferred to read time: tasks park
        # until scripted recoveries restore decodability.
        hdfs.block_map.check_recoverable(chosen_victims)

    scheduler = make_scheduler(
        config.scheduler,
        SchedulerContext(
            topology=topology,
            live_nodes=set(topology.node_ids()) - initial_failed,
            expected_degraded_read_time=expected_degraded_read_time(config),
            map_time_mean=config.jobs[0].map_time_mean,
            reduce_slowstart=config.reduce_slowstart,
        ),
    )

    scheduler.bus = bus
    nodetree = NodeTree(sim, topology, config.network_spec(), model=config.network_model)
    if config.repair is not None:
        # The virtual throttle link must exist before the observer snapshots
        # the link set, so repair traffic shows up in utilization reports.
        nodetree.add_throttle(RepairDriver.THROTTLE, config.repair.bandwidth_cap)
    if observer is not None:
        nodetree.set_observer(observer)
    tracker = JobTracker(
        sim,
        topology,
        hdfs,
        scheduler,
        initial_failed,
        max_attempts=config.max_attempts,
        blacklist_threshold=config.blacklist_threshold,
        speculative=config.speculative,
        speculative_multiplier=config.speculative_multiplier,
        bus=bus,
    )
    tracker.expect_jobs(len(config.jobs))
    runtime = SlaveRuntime(
        sim, config, tracker, nodetree, hdfs.planner, rng, observer=observer
    )

    if config.repair is not None:
        driver = RepairDriver(
            sim,
            config.repair,
            hdfs.block_map,
            nodetree,
            rng,
            tracker,
            config.block_size,
            bus=bus,
        )
        tracker.repair_driver = driver
        runtime.repair_driver = driver
        driver.start()

    for job_id, job_config in enumerate(config.jobs):
        sim.call_at(
            job_config.submit_time,
            lambda job_id=job_id, job_config=job_config: tracker.submit_job(
                job_id, job_config
            ),
        )

    if config.failure_schedule is not None:
        install_schedule(config.failure_schedule, runtime, topology)

    if deferred_failure:

        def strike() -> None:
            for victim in sorted(chosen_victims):
                runtime.fail_node(victim)

        sim.call_at(config.failure_time, strike)

    for node_id in sorted(topology.node_ids()):
        if node_id in initial_failed:
            continue
        runtime.spawn_slave(node_id)

    sim.spawn(failure_detector_process(runtime), name="failure-detector")

    # Sanitizers need trial internals the bus does not carry (block map,
    # failure views, slot capacities, the engine's dispatch stream); plain
    # collectors define no such hook.
    on_trial_built = getattr(observer, "on_trial_built", None)
    if on_trial_built is not None:
        on_trial_built(
            sim=sim, tracker=tracker, runtime=runtime, hdfs=hdfs, config=config
        )

    return sim, tracker, runtime
