"""Command-line interface: ``repro <command>``.

Commands
--------
``repro list``
    List the reproducible experiments (paper figure/table numbers).
``repro run <experiment> [...]``
    Run one or more experiments and print their reports.
``repro simulate [options]``
    Run a single simulation trial with explicit parameters and print its
    summary -- handy for quick what-if exploration.  ``--policy`` (alias
    ``--scheduler``) accepts any registered policy name.
``repro policies list``
    List every registered scheduling policy with a one-line summary
    (see :mod:`repro.core.scheduler`; third-party policies added via
    ``register_scheduler`` appear here too).
``repro tournament [options]``
    Run every registered policy (or ``--policies``) over a shared scenario
    set -- fig-7/fig-8 style configurations plus, with ``--corpus``, the
    fuzzer's corpus -- through the crash-safe campaign engine, and print a
    ranked leaderboard.  ``--json``/``--html`` export the
    ``repro.tournament-report/v1`` document and a dashboard; the report is
    bit-identical across reruns and serial-vs-parallel execution
    (see :mod:`repro.experiments.tournament`).
``repro fuzz --trials N [options]``
    Generate random scenarios -- each under a policy drawn from the full
    registry, or a fixed set via ``--schedulers`` -- and run them under
    the invariant sanitizer (see :mod:`repro.check`); failures are shrunk
    and saved as repro files.
``repro reliability [options]``
    Run a long-horizon reliability campaign: a stochastic failure model plus
    open-loop Poisson traffic, reporting MTTDL/durability, degraded-read
    latency percentiles, repair-backlog dynamics, and a per-policy
    saturation verdict (see :mod:`repro.experiments.reliability`).
    ``--journal``/``--cache-dir`` make the window sweep crash-safe and
    resumable.
``repro campaign run|resume|status [options]``
    Crash-safe scheduler sweeps (see :mod:`repro.experiments.campaign`):
    ``run`` executes a seeds x schedulers grid with per-trial retries,
    timeouts, and quarantine, journaling every completion to ``--journal``;
    ``resume`` replays the journal and finishes only the missing trials
    (the final report is bit-identical to an uninterrupted run); ``status``
    summarises a journal without running anything.  ``--cache-dir`` adds a
    content-addressed, sha256-verified result cache shared across
    campaigns.
``repro obs analyze <events.jsonl>``
    Post-hoc trace analytics over an exported event log: critical path,
    map-time attribution, scheduler decision audit, latency digests
    (see :mod:`repro.obs.analyze`).
``repro obs report <input> -o dashboard.html``
    Render an event log, run summary, or campaign report as a fully
    self-contained static HTML dashboard (no external assets).
``repro obs diff <baseline> <candidate>``
    Compare two analysis documents metric by metric; exits 4 when any
    metric regressed past its threshold.

``repro run --check`` / ``repro simulate --check`` run their trials under
the sanitizer too: any invariant violation prints a report and exits 3.

Exit codes
----------
``0``
    Success: every job completed.
``1``
    The trial ran but a job failed (retry budget exhausted or data
    unavailable after too many failures); the summary printed is the
    partial result.
``2``
    Bad invocation: unparsable flags, a malformed ``--code``/config file,
    or an unwritable output path.
``3``
    The sanitizer found an invariant violation (``--check`` / ``fuzz``).
``4``
    ``repro obs diff`` found a metric regression past its threshold.
``5``
    Interrupted and checkpointed: SIGINT/SIGTERM drained the in-flight
    trials into the journal and stopped; ``repro campaign resume`` (or
    re-running ``repro reliability`` with the same ``--journal``) finishes
    the remaining trials.

Environment knobs: ``REPRO_SEEDS`` (samples per configuration, default 30),
``REPRO_WORKERS`` (process-pool width), ``REPRO_TESTBED_RUNS`` (testbed
repetitions, default 3).
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster.failures import FailurePattern
from repro.cluster.network import MB, mbps
from repro.ec.codec import CodeParams


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Degraded-first scheduling for MapReduce in erasure-coded storage "
            "clusters (DSN'14) -- reproduction toolkit"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    run = commands.add_parser("run", help="run experiments by name")
    run.add_argument("experiments", nargs="+", help="e.g. fig3 fig5 fig7 fig8 fig9 table1")
    run.add_argument(
        "--check",
        action="store_true",
        help="run every trial under the invariant sanitizer; a violation "
        "prints a report and exits 3",
    )
    run.add_argument(
        "--summary",
        action="store_true",
        help="after each simulation-backed experiment, print a one-paragraph "
        "makespan + map-time-breakdown analysis of a representative "
        "fixed-seed failure trial",
    )

    fuzz = commands.add_parser(
        "fuzz", help="fuzz random scenarios under the invariant sanitizer"
    )
    fuzz.add_argument(
        "--trials", type=int, default=25, help="scenarios to generate (default 25)"
    )
    fuzz.add_argument("--seed", type=int, default=0, help="scenario-stream seed")
    fuzz.add_argument(
        "--schedulers",
        default=None,
        metavar="NAMES",
        help="comma-separated policy names to run every scenario under "
        "(default: one policy drawn per scenario from the full registry)",
    )
    fuzz.add_argument(
        "--corpus",
        dest="corpus_dir",
        metavar="DIR",
        default=None,
        help="save shrunken failing scenarios as repro JSON into this "
        "directory (e.g. tests/corpus)",
    )
    fuzz.add_argument(
        "--report",
        dest="report_path",
        metavar="FILE",
        default=None,
        help="also write the full fuzz summary (outcomes + findings) as JSON",
    )
    fuzz.add_argument(
        "--max-dispatch",
        type=int,
        default=None,
        help="abort a trial as runaway after this many dispatched events",
    )
    fuzz.add_argument(
        "--campaign",
        dest="campaign_batches",
        type=int,
        default=0,
        metavar="N",
        help="also fuzz the campaign harness: N batches with randomized "
        "trial failures/timeouts/worker kills, asserting complete "
        "accounting (done + failed + quarantined == submitted)",
    )

    reliability = commands.add_parser(
        "reliability",
        help="run a long-horizon reliability campaign (MTTDL, latency tails)",
    )
    reliability.add_argument(
        "--model",
        default="exponential",
        choices=["exponential", "weibull", "bursts"],
        help="node-lifetime failure model (default exponential)",
    )
    reliability.add_argument(
        "--mttf-days",
        type=float,
        default=30.0,
        help="mean node time-to-failure in days (default 30)",
    )
    reliability.add_argument(
        "--mttr-hours",
        type=float,
        default=2.0,
        help="mean node repair time in hours (default 2)",
    )
    reliability.add_argument(
        "--weibull-shape",
        type=float,
        default=0.7,
        help="Weibull lifetime shape (default 0.7: infant mortality)",
    )
    reliability.add_argument(
        "--lse-mtbc-years",
        type=float,
        default=None,
        help="overlay latent sector errors with this per-block mean "
        "time-between-corruptions in years (off when omitted)",
    )
    reliability.add_argument(
        "--horizon-years",
        type=float,
        default=1.0,
        help="simulated time per iteration in years (default 1)",
    )
    reliability.add_argument(
        "--iterations",
        type=int,
        default=3,
        help="independently seeded availability iterations (default 3)",
    )
    reliability.add_argument(
        "--windows",
        type=int,
        default=3,
        help="full-fidelity MapReduce windows per campaign (default 3)",
    )
    reliability.add_argument(
        "--window-duration",
        type=float,
        default=1800.0,
        help="seconds of each full-fidelity window (default 1800)",
    )
    reliability.add_argument(
        "--arrival-mean",
        type=float,
        default=300.0,
        help="mean seconds between open-loop job arrivals (default 300)",
    )
    reliability.add_argument(
        "--blocks",
        type=int,
        default=60,
        help="input blocks per arriving job (default 60)",
    )
    reliability.add_argument("--seed", type=int, default=0)
    reliability.add_argument(
        "--check",
        action="store_true",
        help="assert generator determinism and run every window trial under "
        "the invariant sanitizer; a violation prints a report and exits 3",
    )
    reliability.add_argument(
        "--json",
        dest="json_path",
        metavar="FILE",
        help="also write the full campaign report as canonical JSON",
    )
    reliability.add_argument(
        "--journal",
        dest="journal_path",
        metavar="FILE",
        help="write-ahead journal for the window sweep; re-running with the "
        "same journal skips finished windows (crash-safe resume)",
    )
    reliability.add_argument(
        "--cache-dir",
        dest="cache_dir",
        metavar="DIR",
        help="content-addressed result cache for window trials "
        "(sha256-verified; corrupt entries quarantined and recomputed)",
    )

    campaign = commands.add_parser(
        "campaign",
        help="crash-safe scheduler sweeps: run / resume / status",
    )
    campaign_commands = campaign.add_subparsers(dest="campaign_command", required=True)

    def _campaign_execution_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--journal",
            dest="journal_path",
            metavar="FILE",
            help="write-ahead JSONL journal of trial completions "
            "(required for resume)",
        )
        subparser.add_argument(
            "--cache-dir",
            dest="cache_dir",
            metavar="DIR",
            help="content-addressed result cache shared across campaigns",
        )
        subparser.add_argument(
            "--retries",
            type=int,
            default=2,
            help="re-attempts per trial after the first try (default 2)",
        )
        subparser.add_argument(
            "--trial-timeout",
            dest="trial_timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget per trial attempt; an overrunning "
            "worker is killed and the trial retried",
        )
        subparser.add_argument(
            "--backoff",
            type=float,
            default=0.5,
            metavar="SECONDS",
            help="base of the exponential retry backoff (default 0.5)",
        )
        subparser.add_argument(
            "--workers",
            type=int,
            default=None,
            help="pool width (default: REPRO_WORKERS or every core)",
        )
        subparser.add_argument(
            "--report",
            dest="report_path",
            metavar="FILE",
            help="also write the campaign report as canonical JSON "
            "(bit-identical across interrupted-and-resumed runs)",
        )

    campaign_run = campaign_commands.add_parser(
        "run", help="run a seeds x schedulers sweep from scratch"
    )
    campaign_run.add_argument(
        "--spec",
        dest="spec_path",
        metavar="FILE",
        help="load the sweep spec (repro.campaign/v1 JSON) from a file "
        "instead of building it from the flags below",
    )
    campaign_run.add_argument(
        "--schedulers",
        default="LF,BDF,EDF",
        help="comma-separated scheduler list (default LF,BDF,EDF)",
    )
    campaign_run.add_argument(
        "--seeds", type=int, default=5, help="seeds per scheduler (default 5)"
    )
    campaign_run.add_argument(
        "--nodes", type=int, default=40, help="cluster size (default 40)"
    )
    campaign_run.add_argument(
        "--blocks",
        type=int,
        default=1440,
        help="input blocks per job (default 1440; lower for quick sweeps)",
    )
    _campaign_execution_flags(campaign_run)

    campaign_resume = campaign_commands.add_parser(
        "resume", help="finish an interrupted sweep from its journal"
    )
    campaign_resume.add_argument(
        "--spec",
        dest="spec_path",
        metavar="FILE",
        help="sweep spec JSON (must match the interrupted run)",
    )
    campaign_resume.add_argument("--schedulers", default="LF,BDF,EDF")
    campaign_resume.add_argument("--seeds", type=int, default=5)
    campaign_resume.add_argument("--nodes", type=int, default=40)
    campaign_resume.add_argument("--blocks", type=int, default=1440)
    _campaign_execution_flags(campaign_resume)

    campaign_status = campaign_commands.add_parser(
        "status", help="summarise a campaign journal without running"
    )
    campaign_status.add_argument(
        "--journal",
        dest="journal_path",
        metavar="FILE",
        required=True,
        help="the journal to inspect",
    )

    policies = commands.add_parser(
        "policies", help="inspect the scheduling-policy registry"
    )
    policies_commands = policies.add_subparsers(dest="policies_command", required=True)
    policies_commands.add_parser(
        "list", help="list registered policies with one-line summaries"
    )

    tournament = commands.add_parser(
        "tournament",
        help="rank every registered policy over a shared scenario set",
    )
    tournament.add_argument(
        "--policies",
        default=None,
        metavar="NAMES",
        help="comma-separated policy names (default: every registered policy)",
    )
    tournament.add_argument(
        "--seeds", type=int, default=3, help="seeds per scenario (default 3)"
    )
    tournament.add_argument(
        "--nodes", type=int, default=40, help="cluster size (default 40)"
    )
    tournament.add_argument(
        "--racks", type=int, default=4, help="rack count (default 4)"
    )
    tournament.add_argument("--code", default="20,15", help="n,k (e.g. 20,15)")
    tournament.add_argument(
        "--blocks",
        type=int,
        default=1440,
        help="input blocks per job (default 1440; lower for quick runs)",
    )
    tournament.add_argument(
        "--corpus",
        dest="corpus_dir",
        metavar="DIR",
        default=None,
        help="also race the policies over every fuzzer-corpus scenario "
        "in this directory (e.g. tests/corpus)",
    )
    tournament.add_argument(
        "--check",
        action="store_true",
        help="run every trial under the invariant sanitizer; violations "
        "surface as trial failures in the report",
    )
    tournament.add_argument(
        "--json",
        dest="json_path",
        metavar="FILE",
        help="also write the ranked repro.tournament-report/v1 JSON "
        "(bit-identical across reruns)",
    )
    tournament.add_argument(
        "--html",
        dest="html_path",
        metavar="FILE",
        help="also write the leaderboard as a self-contained HTML dashboard",
    )
    tournament.add_argument(
        "--journal",
        dest="journal_path",
        metavar="FILE",
        help="write-ahead JSONL journal; re-running with the same journal "
        "skips finished trials (crash-safe resume)",
    )
    tournament.add_argument(
        "--cache-dir",
        dest="cache_dir",
        metavar="DIR",
        help="content-addressed result cache shared across tournaments",
    )
    tournament.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-attempts per trial after the first try (default 2)",
    )
    tournament.add_argument(
        "--trial-timeout",
        dest="trial_timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per trial attempt",
    )
    tournament.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool width (default: REPRO_WORKERS or every core)",
    )

    simulate = commands.add_parser("simulate", help="run one simulation trial")
    simulate.add_argument(
        "--check",
        action="store_true",
        help="run the trial under the invariant sanitizer; a violation "
        "prints a report and exits 3",
    )
    simulate.add_argument(
        "--config",
        dest="config_path",
        metavar="FILE",
        help="load the simulation configuration from a JSON file "
        "(other flags are ignored except --timeline/--json)",
    )
    simulate.add_argument(
        "--scheduler",
        "--policy",
        dest="scheduler",
        default="EDF",
        help="any registered policy name, case-insensitive "
        "(see 'repro policies list'; default EDF)",
    )
    simulate.add_argument("--nodes", type=int, default=40)
    simulate.add_argument("--racks", type=int, default=4)
    simulate.add_argument("--map-slots", type=int, default=4)
    simulate.add_argument("--code", default="20,15", help="n,k (e.g. 20,15)")
    simulate.add_argument("--blocks", type=int, default=1440)
    simulate.add_argument("--block-size-mb", type=float, default=128.0)
    simulate.add_argument("--bandwidth-mbps", type=float, default=1000.0)
    simulate.add_argument(
        "--failure",
        default="single-node",
        choices=[pattern.value for pattern in FailurePattern],
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--failure-time",
        type=float,
        default=None,
        help="inject the failure at this simulation time instead of at start",
    )
    simulate.add_argument(
        "--failure-trace",
        dest="failure_trace",
        metavar="FILE",
        help="drive failures from a scripted FailureSchedule JSON file "
        "(overrides --failure/--failure-time)",
    )
    simulate.add_argument(
        "--max-attempts",
        type=int,
        default=4,
        help="retry budget per task before the job is failed (default 4)",
    )
    simulate.add_argument(
        "--heartbeat-expiry",
        type=float,
        default=30.0,
        help="seconds of heartbeat silence before a node is declared dead",
    )
    simulate.add_argument(
        "--speculative",
        action="store_true",
        help="launch speculative backups for straggling map tasks",
    )
    simulate.add_argument(
        "--repair-bandwidth-mbps",
        type=float,
        default=None,
        help="enable the online repair driver with this aggregate bandwidth "
        "cap (disabled when omitted)",
    )
    simulate.add_argument(
        "--repair-concurrent",
        type=int,
        default=2,
        help="concurrent repair worker flows (default 2; needs "
        "--repair-bandwidth-mbps)",
    )
    simulate.add_argument(
        "--scrub-interval",
        type=float,
        default=None,
        help="proactively scan one node's blocks for corruption every this "
        "many seconds (needs --repair-bandwidth-mbps)",
    )
    simulate.add_argument(
        "--wait-for-repair",
        action="store_true",
        help="park tasks whose stripe is undecodable until repair/recovery "
        "restores it, instead of failing the job",
    )
    simulate.add_argument(
        "--timeline",
        action="store_true",
        help="render an ASCII map-slot activity chart (the paper's Figure 3 view)",
    )
    simulate.add_argument(
        "--json",
        dest="json_path",
        metavar="FILE",
        help="also write the full task trace as JSON",
    )
    simulate.add_argument(
        "--events",
        dest="events_path",
        metavar="FILE",
        help="record the trial's structured event log as JSON Lines",
    )
    simulate.add_argument(
        "--chrome-trace",
        dest="chrome_trace_path",
        metavar="FILE",
        help="write a Chrome trace-event JSON of the task timeline "
        "(open with Perfetto or chrome://tracing)",
    )
    simulate.add_argument(
        "--utilization-report",
        dest="utilization_report_path",
        metavar="FILE",
        help="write a plain-text slot/link utilization and profiling report "
        "('-' prints to stdout)",
    )
    simulate.add_argument(
        "--summary",
        action="store_true",
        help="print a one-paragraph makespan + map-time-breakdown analysis "
        "of the trial (critical path, locality/degraded rates)",
    )

    obs = commands.add_parser(
        "obs", help="post-hoc trace analytics: analyze / report / diff"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)

    analyze = obs_commands.add_parser(
        "analyze",
        help="analyze an exported event log (critical path, attribution)",
    )
    analyze.add_argument(
        "input",
        help="JSON Lines event log from 'repro simulate --events FILE'",
    )
    analyze.add_argument(
        "--summary",
        action="store_true",
        help="print the one-paragraph summary instead of the full report",
    )
    analyze.add_argument(
        "--json",
        dest="json_path",
        metavar="FILE",
        help="also write the versioned run-summary JSON ('-' prints to stdout)",
    )

    obs_report = obs_commands.add_parser(
        "report", help="render a self-contained static HTML dashboard"
    )
    obs_report.add_argument(
        "input",
        help="events JSONL, run-summary JSON, or reliability-campaign JSON",
    )
    obs_report.add_argument(
        "-o",
        "--output",
        default="report.html",
        metavar="FILE",
        help="HTML output path (default report.html)",
    )

    diff = obs_commands.add_parser(
        "diff",
        help="compare two analysis documents; exit 4 on metric regression",
    )
    diff.add_argument("baseline", help="baseline document (or events JSONL)")
    diff.add_argument("candidate", help="candidate document (or events JSONL)")
    diff.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative-change threshold for a regression (default 0.10)",
    )
    diff.add_argument(
        "--metric-threshold",
        action="append",
        default=[],
        metavar="NAME=FRACTION",
        help="per-metric threshold override, e.g. makespan_s=0.05 (repeatable)",
    )

    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import list_experiments

    for name in list_experiments():
        print(name)
    return 0


#: Experiments whose headline setting a ``--summary`` trial can represent:
#: the paper's default cluster under a single-node failure, with the
#: experiment's featured scheduler.  Analysis-only (fig5), testbed (fig9),
#: and campaign (reliability) experiments have no single representative
#: simulation trial.
_SUMMARY_SCHEDULERS = {"fig3": "LF", "fig7": "EDF", "fig8": "BDF", "table1": "EDF"}


def _experiment_summary(name: str) -> str | None:
    """One-paragraph analysis of an experiment's representative trial."""
    scheduler = _SUMMARY_SCHEDULERS.get(name)
    if scheduler is None:
        return None
    from repro.mapreduce.config import SimulationConfig
    from repro.mapreduce.simulation import run_simulation
    from repro.obs import ObservabilityCollector
    from repro.obs.analyze import Timeline, analyze_timeline

    collector = ObservabilityCollector(keep_events=False)
    result = run_simulation(
        SimulationConfig(scheduler=scheduler, seed=0), observer=collector
    )
    timeline = Timeline.from_result(result)
    timeline.decisions = [event.to_dict() for event in collector.decisions]
    paragraph = analyze_timeline(timeline).summary_paragraph()
    return f"[{name} representative trial] {paragraph}"


def _cmd_run(names: list[str], check: bool = False, summary: bool = False) -> int:
    import contextlib
    import os

    from repro.experiments.registry import get_experiment

    if check:
        from repro.check import InvariantViolationError

        # Experiments fan trials out over a process pool; the environment
        # variable is how check mode reaches the worker processes.
        env = {"REPRO_CHECK": "1"}
        catch: type[BaseException] = InvariantViolationError
    else:
        env = {}
        catch = ()  # type: ignore[assignment]
    previous = {name: os.environ.get(name) for name in env}
    os.environ.update(env)
    try:
        for name in names:
            runner = get_experiment(name)
            try:
                print(runner())
            except catch as error:
                print(error.report(), file=sys.stderr)
                print(f"experiment {name!r} violated an invariant", file=sys.stderr)
                return 3
            if summary:
                line = _experiment_summary(name)
                print(
                    line
                    if line is not None
                    else f"[{name}] no representative simulation trial to summarize"
                )
            print()
    finally:
        for name, value in previous.items():
            with contextlib.suppress(KeyError):
                del os.environ[name]
            if value is not None:
                os.environ[name] = value
    return 0


def _cmd_reliability(args: argparse.Namespace) -> int:
    from repro.check import InvariantViolationError
    from repro.experiments.reliability import (
        CampaignConfig,
        render_report,
        report_to_json,
        run_campaign,
    )
    from repro.faults.models import (
        DAY,
        HOUR,
        YEAR,
        CompositeModel,
        CorrelatedBursts,
        ExponentialLifetimes,
        LatentSectorErrors,
        WeibullLifetimes,
    )
    from repro.mapreduce.config import JobConfig, SimulationConfig
    from repro.mapreduce.workload import PoissonArrivals

    base = SimulationConfig()
    try:
        mttf, mttr = args.mttf_days * DAY, args.mttr_hours * HOUR
        if args.model == "weibull":
            model = WeibullLifetimes(mttf=mttf, shape=args.weibull_shape, mttr=mttr)
        elif args.model == "bursts":
            model = CorrelatedBursts(mtbe=mttf, mttr=mttr)
        else:
            model = ExponentialLifetimes(mttf=mttf, mttr=mttr)
        if args.lse_mtbc_years is not None:
            num_stripes = -(-args.blocks // base.code.k)
            model = CompositeModel(
                models=(
                    model,
                    LatentSectorErrors(
                        num_stripes=num_stripes,
                        stripe_width=base.code.n,
                        block_mtbc=args.lse_mtbc_years * YEAR,
                    ),
                )
            )
        config = CampaignConfig(
            model=model,
            arrivals=PoissonArrivals(
                mean_interarrival=args.arrival_mean,
                templates=(JobConfig(num_blocks=args.blocks, num_reduce_tasks=8),),
            ),
            horizon=args.horizon_years * YEAR,
            iterations=args.iterations,
            num_windows=args.windows,
            window_duration=args.window_duration,
            base=base,
            seed=args.seed,
        )
    except ValueError as error:
        print(f"bad campaign options: {error}", file=sys.stderr)
        return 2
    from repro.experiments.campaign import CampaignInterrupted

    try:
        report = run_campaign(
            config,
            check=args.check,
            journal_path=args.journal_path,
            cache_dir=args.cache_dir,
        )
    except InvariantViolationError as error:
        print(error.report(), file=sys.stderr)
        print("sanitizer: the campaign violated simulator invariants", file=sys.stderr)
        return 3
    except CampaignInterrupted as stop:
        print(_interrupted_message(stop, args.journal_path), file=sys.stderr)
        return 5
    print(render_report(report))
    if args.json_path and not _write_output(args.json_path, report_to_json(report)):
        return 2
    if args.json_path:
        print(f"campaign report written to {args.json_path}")
    return 0


def _interrupted_message(stop, journal_path: str | None) -> str:
    """The exit-code-5 explanation: what was saved and how to continue."""
    counters = stop.counters
    saved = (
        f"{counters.done} finished trial(s) checkpointed to {journal_path}; "
        "resume with the same --journal to finish the rest"
        if journal_path
        else "no --journal was given, so nothing was checkpointed"
    )
    return f"interrupted: {stop.remaining} trial(s) remaining; {saved}"


def _cmd_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.campaign import (
        CampaignInterrupted,
        CampaignPolicy,
        Journal,
        SweepSpec,
        journal_status,
        render_sweep_report,
        report_to_json,
        run_sweep,
    )

    if args.campaign_command == "status":
        status = journal_status(args.journal_path)
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0

    try:
        if args.spec_path:
            spec = SweepSpec.load(args.spec_path)
        else:
            from repro.mapreduce.config import JobConfig, SimulationConfig

            schedulers = tuple(
                name.strip().upper()
                for name in args.schedulers.split(",")
                if name.strip()
            )
            spec = SweepSpec(
                base=SimulationConfig(
                    num_nodes=args.nodes,
                    jobs=(JobConfig(num_blocks=args.blocks),),
                ),
                schedulers=schedulers,
                seeds=tuple(range(args.seeds)),
            )
        policy = CampaignPolicy(
            retries=args.retries,
            trial_timeout=args.trial_timeout,
            backoff=args.backoff,
            workers=args.workers,
            on_error="collect",
        )
    except (OSError, ValueError) as error:
        print(f"bad campaign options: {error}", file=sys.stderr)
        return 2

    journal_path = args.journal_path
    if args.campaign_command == "resume":
        if not journal_path:
            print("campaign resume needs --journal", file=sys.stderr)
            return 2
        import os

        if not os.path.exists(journal_path):
            print(f"no journal at {journal_path!r} to resume from", file=sys.stderr)
            return 2
    elif journal_path:
        import os

        if os.path.exists(journal_path) and Journal.load(journal_path).records:
            print(
                f"journal {journal_path!r} already has finished trials; "
                "use 'repro campaign resume' to continue it",
                file=sys.stderr,
            )
            return 2

    cache = None
    if args.cache_dir:
        from repro import __version__
        from repro.experiments.cache import ResultCache

        cache = ResultCache(directory=args.cache_dir, code_version=__version__)

    def progress(index: int, status: str, attempts: int) -> None:
        retried = f" (attempt {attempts})" if attempts > 1 else ""
        print(f"trial {index:4d}: {status}{retried}")

    try:
        report, _outcome = run_sweep(
            spec,
            policy=policy,
            journal_path=journal_path,
            cache=cache,
            progress=progress,
        )
    except CampaignInterrupted as stop:
        print(_interrupted_message(stop, journal_path), file=sys.stderr)
        return 5
    print(render_sweep_report(report))
    if args.report_path and not _write_output(
        args.report_path, report_to_json(report)
    ):
        return 2
    if args.report_path:
        print(f"campaign report written to {args.report_path}")
    if cache is not None:
        stats = cache.stats
        print(
            f"cache: {stats.hits} hit(s), {stats.misses} miss(es), "
            f"{stats.corrupt} corrupt, {stats.stores} store(s)"
        )
    return 1 if report["failures"] else 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from repro.core.scheduler import POLICIES

    if args.policies_command == "list":
        for name, summary in POLICIES.catalog():
            print(f"{name:<14} {summary}")
        return 0
    raise AssertionError(f"unhandled policies command {args.policies_command}")


def _cmd_tournament(args: argparse.Namespace) -> int:
    import contextlib
    import os

    from repro.core.scheduler import POLICIES
    from repro.experiments.campaign import (
        CampaignInterrupted,
        CampaignPolicy,
        Journal,
    )
    from repro.experiments.tournament import (
        TournamentSpec,
        corpus_scenarios,
        default_scenarios,
        render_leaderboard,
        report_to_json,
        run_tournament,
    )
    from repro.mapreduce.config import JobConfig, SimulationConfig

    try:
        n_text, k_text = args.code.split(",")
        code = CodeParams(int(n_text), int(k_text))
    except ValueError as error:
        print(f"bad --code value {args.code!r}: {error}", file=sys.stderr)
        return 2
    try:
        if args.policies:
            names = tuple(
                POLICIES.resolve(name.strip())
                for name in args.policies.split(",")
                if name.strip()
            )
        else:
            names = ()
        base = SimulationConfig(
            num_nodes=args.nodes,
            num_racks=args.racks,
            code=code,
            jobs=(JobConfig(num_blocks=args.blocks),),
        )
        scenarios = default_scenarios(base)
        if args.corpus_dir:
            scenarios = scenarios + corpus_scenarios(args.corpus_dir)
        spec = TournamentSpec(
            scenarios=scenarios,
            policies=names,
            seeds=tuple(range(args.seeds)),
        )
        policy = CampaignPolicy(
            retries=args.retries,
            trial_timeout=args.trial_timeout,
            workers=args.workers,
            on_error="collect",
        )
    except (OSError, ValueError) as error:
        print(f"bad tournament options: {error}", file=sys.stderr)
        return 2

    journal_path = args.journal_path
    if journal_path:
        if os.path.exists(journal_path) and Journal.load(journal_path).records:
            print(f"resuming tournament from journal {journal_path!r}")

    cache = None
    if args.cache_dir:
        from repro import __version__
        from repro.experiments.cache import ResultCache

        cache = ResultCache(directory=args.cache_dir, code_version=__version__)

    def progress(index: int, status: str, attempts: int) -> None:
        retried = f" (attempt {attempts})" if attempts > 1 else ""
        print(f"trial {index:4d}: {status}{retried}")

    env = {"REPRO_CHECK": "1"} if args.check else {}
    previous = {name: os.environ.get(name) for name in env}
    os.environ.update(env)
    try:
        report, _outcome = run_tournament(
            spec,
            policy=policy,
            journal_path=journal_path,
            cache=cache,
            progress=progress,
        )
    except CampaignInterrupted as stop:
        print(_interrupted_message(stop, journal_path), file=sys.stderr)
        return 5
    finally:
        for name, value in previous.items():
            with contextlib.suppress(KeyError):
                del os.environ[name]
            if value is not None:
                os.environ[name] = value
    print(render_leaderboard(report))
    if args.json_path and not _write_output(args.json_path, report_to_json(report)):
        return 2
    if args.json_path:
        print(f"tournament report written to {args.json_path}")
    if args.html_path:
        from repro.obs import report_html

        if not _write_output(args.html_path, report_html(report)):
            return 2
        print(f"leaderboard dashboard written to {args.html_path}")
    if cache is not None:
        stats = cache.stats
        print(
            f"cache: {stats.hits} hit(s), {stats.misses} miss(es), "
            f"{stats.corrupt} corrupt, {stats.stores} store(s)"
        )
    return 1 if report["failures"] else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.mapreduce.config import JobConfig, SimulationConfig

    if args.config_path:
        from repro.mapreduce.serialization import load_config

        config = load_config(args.config_path)
        return _report_simulation(args, config)
    from repro.core.scheduler import POLICIES

    try:
        scheduler = POLICIES.resolve(args.scheduler)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    try:
        n_text, k_text = args.code.split(",")
        code = CodeParams(int(n_text), int(k_text))
    except ValueError as error:
        print(f"bad --code value {args.code!r}: {error}", file=sys.stderr)
        return 2
    schedule = None
    if args.failure_trace:
        from repro.faults.schedule import FailureSchedule

        schedule = FailureSchedule.load(args.failure_trace)
    repair = None
    if args.repair_bandwidth_mbps is not None:
        from repro.storage.repair_driver import RepairConfig

        try:
            repair = RepairConfig(
                bandwidth_cap=mbps(args.repair_bandwidth_mbps),
                concurrent_repairs=args.repair_concurrent,
                scrub_interval=args.scrub_interval,
            )
        except ValueError as error:
            print(f"bad repair options: {error}", file=sys.stderr)
            return 2
    elif args.scrub_interval is not None:
        print(
            "--scrub-interval needs --repair-bandwidth-mbps", file=sys.stderr
        )
        return 2
    config = SimulationConfig(
        num_nodes=args.nodes,
        num_racks=args.racks,
        map_slots=args.map_slots,
        code=code,
        block_size=args.block_size_mb * MB,
        rack_bandwidth=mbps(args.bandwidth_mbps),
        jobs=(JobConfig(num_blocks=args.blocks),),
        failure=FailurePattern(args.failure),
        failure_time=args.failure_time,
        failure_schedule=schedule,
        max_attempts=args.max_attempts,
        heartbeat_expiry=args.heartbeat_expiry,
        speculative=args.speculative,
        repair=repair,
        wait_for_repair=args.wait_for_repair,
        scheduler=scheduler,
        seed=args.seed,
    )
    return _report_simulation(args, config)


def _report_simulation(args: argparse.Namespace, config) -> int:
    from repro.faults import JobFailedError
    from repro.mapreduce.simulation import run_simulation

    observer = None
    if args.events_path or args.utilization_report_path or args.summary:
        from repro.obs import ObservabilityCollector

        observer = ObservabilityCollector()
    if args.check:
        from repro.check import InvariantMonitor

        # The monitor wraps any requested collector, so --check composes
        # with the export flags; exports keep reading the inner collector.
        monitor = InvariantMonitor(collector=observer)
        observer = observer if observer is not None else monitor.collector
    else:
        monitor = None
    from repro.check import InvariantViolationError

    failure: JobFailedError | None = None
    try:
        result = run_simulation(
            config, observer=monitor if monitor is not None else observer
        )
    except InvariantViolationError as error:
        print(error.report(), file=sys.stderr)
        print("sanitizer: the trial violated simulator invariants", file=sys.stderr)
        return 3
    except JobFailedError as error:
        if error.result is None:
            print(f"job failed: {error}", file=sys.stderr)
            return 1
        failure = error
        result = error.result
    job = result.job(0)
    print(f"scheduler: {config.scheduler}")
    print(f"failed nodes: {sorted(result.failed_nodes)}")
    print(f"runtime: {job.runtime:.1f} s")
    print(f"degraded tasks: {job.degraded_task_count}")
    print(f"mean degraded read time: {job.mean_degraded_read_time():.1f} s")
    print(f"remote tasks (cross-rack): {job.remote_task_count}")
    _report_faults(result)
    if args.summary:
        from repro.obs.analyze import Timeline, analyze_timeline

        timeline = Timeline.from_result(result)
        timeline.decisions = [event.to_dict() for event in observer.decisions]
        timeline.event_counts = dict(observer.bus.counts)
        print()
        print(analyze_timeline(timeline).summary_paragraph())
    if args.timeline:
        from repro.mapreduce.trace import render_timeline

        print()
        print(render_timeline(result))
    if args.json_path:
        from repro.mapreduce.trace import to_json

        if not _write_output(args.json_path, to_json(result, indent=2) + "\n"):
            return 2
        print(f"trace written to {args.json_path}")
    if args.events_path:
        from repro.obs import events_jsonl

        if not _write_output(args.events_path, events_jsonl(observer.events)):
            return 2
        print(f"event log written to {args.events_path}")
    if args.chrome_trace_path:
        from repro.obs import chrome_trace_json

        if not _write_output(args.chrome_trace_path, chrome_trace_json(result)):
            return 2
        print(f"chrome trace written to {args.chrome_trace_path}")
    if args.utilization_report_path:
        report = observer.render_utilization_report()
        if args.utilization_report_path == "-":
            print()
            print(report, end="")
        elif _write_output(args.utilization_report_path, report):
            print(f"utilization report written to {args.utilization_report_path}")
        else:
            return 2
    if failure is not None:
        print(f"job failed: {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.check import run_fuzz
    from repro.check.fuzz import DEFAULT_MAX_DISPATCH

    if args.trials <= 0:
        print(f"--trials must be positive, got {args.trials}", file=sys.stderr)
        return 2
    schedulers = None
    if args.schedulers:
        from repro.core.scheduler import POLICIES

        try:
            schedulers = tuple(
                POLICIES.resolve(name.strip())
                for name in args.schedulers.split(",")
                if name.strip()
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2

    def progress(trial: int, report) -> None:
        print(f"trial {trial:4d} {report.scheduler:>3}: {report.status}")

    summary = run_fuzz(
        args.trials,
        seed=args.seed,
        corpus_dir=args.corpus_dir,
        schedulers=schedulers,
        max_dispatch=(
            args.max_dispatch if args.max_dispatch is not None else DEFAULT_MAX_DISPATCH
        ),
        progress=progress,
    )
    outcomes = " ".join(
        f"{status}={count}" for status, count in sorted(summary["outcomes"].items())
    )
    print(f"fuzzed {summary['trials']} scenario(s) (seed {summary['seed']}): {outcomes}")
    if args.report_path and not _write_output(
        args.report_path, json.dumps(summary, indent=2, sort_keys=True) + "\n"
    ):
        return 2
    campaign_findings: list[str] = []
    if args.campaign_batches > 0:
        from repro.check import run_campaign_fuzz

        campaign_summary = run_campaign_fuzz(
            args.campaign_batches, seed=args.seed
        )
        campaign_findings = campaign_summary["violations"]
        print(
            f"campaign-fuzzed {campaign_summary['batches']} batch(es) "
            f"({campaign_summary['trials']} trial(s), seed {args.seed}): "
            f"{len(campaign_findings)} accounting violation(s)"
        )
    if summary["findings"] or campaign_findings:
        for finding in summary["findings"]:
            where = finding.get("path", "(not saved; pass --corpus)")
            print(
                f"finding [{finding['invariant']}] scheduler={finding['scheduler']}: "
                f"{finding['message']}\n  repro: {where}",
                file=sys.stderr,
            )
        for message in campaign_findings:
            print(f"finding [campaign-accounting]: {message}", file=sys.stderr)
        return 3
    return 0


def _load_analysis_document(path: str) -> dict:
    """Load an analysis document, analyzing event logs on the fly.

    Accepts a versioned run-summary JSON, a reliability-campaign JSON, or
    a raw events JSONL (which is analyzed into a run summary).  Raises
    :class:`ValueError` with a usable message on anything else.
    """
    import json

    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as error:
        raise ValueError(f"cannot read {path!r}: {error}") from None
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            parsed = json.loads(text)
        except json.JSONDecodeError:
            parsed = None
        if isinstance(parsed, dict) and "schema" in parsed:
            return parsed
    from repro.obs import analyze_run, read_events_jsonl

    try:
        events = read_events_jsonl(text)
    except ValueError as error:
        raise ValueError(
            f"{path!r} is neither an analysis document (with a 'schema' "
            f"tag) nor an events JSONL: {error}"
        ) from None
    return analyze_run(events).to_dict()


def _cmd_obs_analyze(args: argparse.Namespace) -> int:
    from repro.obs import analyze_run, load_events_jsonl

    try:
        events = load_events_jsonl(args.input)
    except (OSError, ValueError) as error:
        print(f"cannot analyze {args.input!r}: {error}", file=sys.stderr)
        return 2
    analysis = analyze_run(events)
    # Write the JSON artifact before touching stdout: a downstream pipe
    # closing early (``| head``) must not cost the file.
    written = None
    if args.json_path and args.json_path != "-":
        if not _write_output(args.json_path, _summary_json(analysis)):
            return 2
        written = args.json_path
    print(analysis.summary_paragraph() if args.summary else analysis.render_text())
    if args.json_path == "-":
        print(_summary_json(analysis), end="")
    elif written:
        print(f"run summary written to {written}")
    return 0


def _summary_json(analysis) -> str:
    import json

    from repro.obs import sanitize

    return json.dumps(sanitize(analysis.to_dict()), indent=2, sort_keys=True) + "\n"


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import report_html

    try:
        document = _load_analysis_document(args.input)
        html_text = report_html(document)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if not _write_output(args.output, html_text):
        return 2
    print(f"dashboard written to {args.output}")
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_reports, has_regression, render_diff_text

    overrides: dict[str, float] = {}
    for item in args.metric_threshold:
        name, separator, value = item.partition("=")
        try:
            if not separator or not name:
                raise ValueError("expected NAME=FRACTION")
            overrides[name] = float(value)
        except ValueError as error:
            print(f"bad --metric-threshold {item!r}: {error}", file=sys.stderr)
            return 2
    try:
        baseline = _load_analysis_document(args.baseline)
        candidate = _load_analysis_document(args.candidate)
        rows = diff_reports(
            baseline, candidate, threshold=args.threshold, overrides=overrides
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(render_diff_text(rows))
    return 4 if has_regression(rows) else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "analyze":
        return _cmd_obs_analyze(args)
    if args.obs_command == "report":
        return _cmd_obs_report(args)
    if args.obs_command == "diff":
        return _cmd_obs_diff(args)
    raise AssertionError(f"unhandled obs command {args.obs_command}")


def _write_output(path: str, text: str) -> bool:
    """Write an export, creating parent directories; False (and a clean
    stderr message) instead of a traceback when the path is unwritable."""
    from repro.obs import write_text

    try:
        write_text(path, text)
    except OSError as error:
        print(f"cannot write {path!r}: {error}", file=sys.stderr)
        return False
    return True


def _report_faults(result) -> int:
    """Print the fault-tolerance side of a trial, if anything happened."""
    faults = result.faults
    for record in faults.detections:
        print(
            f"detected node {record.node} dead at {record.detected_at:.1f} s "
            f"(failed {record.failed_at:.1f} s, latency {record.latency:.1f} s)"
        )
    for record in faults.recoveries:
        print(
            f"node {record.node} recovered at {record.at:.1f} s "
            f"(reclaimed {record.reclaimed_tasks} degraded tasks)"
        )
    for record in faults.blacklistings:
        print(
            f"node {record.node} blacklisted at {record.at:.1f} s "
            f"after {record.consecutive_failures} consecutive failures"
        )
    for record in faults.corruptions:
        print(
            f"block {record.block} found corrupt on node {record.node} "
            f"at {record.detected_at:.1f} s (via {record.via})"
        )
    if faults.repairs:
        first = min(record.started_at for record in faults.repairs)
        last = max(record.finished_at for record in faults.repairs)
        reclaimed = sum(record.reclaimed_tasks for record in faults.repairs)
        print(
            f"repairs: {len(faults.repairs)} blocks rebuilt "
            f"({faults.repaired_bytes / 1e6:.0f} MB fetched) between "
            f"{first:.1f} s and {last:.1f} s, "
            f"{reclaimed} degraded tasks reclassified"
        )
    killed = sum(job.killed_attempts for job in result.jobs.values())
    spec_launched = sum(job.speculative_launched for job in result.jobs.values())
    spec_killed = sum(job.speculative_killed for job in result.jobs.values())
    max_attempt = max(
        (job.max_task_attempt for job in result.jobs.values()), default=1
    )
    if killed or spec_launched or max_attempt > 1:
        print(
            f"attempts: killed={killed} max-per-task={max_attempt} "
            f"speculative-launched={spec_launched} speculative-killed={spec_killed}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiments, check=args.check, summary=args.summary)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "reliability":
        return _cmd_reliability(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "policies":
        return _cmd_policies(args)
    if args.command == "tournament":
        return _cmd_tournament(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "obs":
        return _cmd_obs(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
