#!/usr/bin/env python
"""Plug a custom scheduling policy into the simulator.

The scheduler interface (:class:`repro.core.scheduler.Scheduler`) is the
extension point of this library: subclass it, implement ``assign_maps``,
and the simulator runs your policy against the paper's workloads.  Here we
implement the naive strawman the paper argues against implicitly --
*eager-degraded* scheduling, which launches ALL degraded tasks first --
and show why pacing matters: eager launching recreates the very network
competition degraded-first scheduling is meant to avoid.

Run:  python examples/custom_scheduler.py
"""

from repro import FailurePattern, SimulationConfig
from repro.core.scheduler import Scheduler, register_scheduler
from repro.mapreduce.simulation import run_simulation


class EagerDegradedScheduler(Scheduler):
    """Launch every degraded task as soon as any slot frees.

    The opposite extreme from locality-first: degraded tasks get strict
    priority with no pacing and no one-per-heartbeat cap, so they all start
    their degraded reads together at the *beginning* of the map phase and
    compete for the rack downlinks there instead of at the end.
    """

    name = "EAGER-DEMO"

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        del now
        assignments = []
        for job in jobs:
            while free_map_slots > 0:
                assignment = (
                    self._try_degraded(job, slave_id)
                    or self._try_local(job, slave_id)
                    or self._try_remote(job, slave_id)
                )
                if assignment is None:
                    break
                assignments.append(assignment)
                free_map_slots -= 1
            if free_map_slots == 0:
                break
        return assignments


def main() -> None:
    # Register the custom policy so SimulationConfig accepts its name.
    register_scheduler(EagerDegradedScheduler)

    config = SimulationConfig(seed=5)
    print("Comparing schedulers on the paper's default degraded cluster:\n")
    results = {}
    for name in ("LF", "EAGER-DEMO", "BDF", "EDF"):
        result = run_simulation(config.with_scheduler(name))
        job = result.job(0)
        results[name] = job.runtime
        print(
            f"  {name:>5}: runtime={job.runtime:7.1f} s   "
            f"mean degraded read={job.mean_degraded_read_time():6.1f} s"
        )
    normal = run_simulation(config.with_failure(FailurePattern.NONE))
    print(f"\n  normal mode: {normal.job(0).runtime:.1f} s")
    print(
        "\nEager launching beats locality-first (it hides downloads behind the"
        "\nmap phase) but loses to paced BDF/EDF: starting every degraded read"
        "\nat once congests the rack downlinks just as badly, only earlier."
    )
    if not (results["EDF"] <= results["EAGER-DEMO"] <= results["LF"]):
        print("\nnote: ordering can vary slightly run to run; try other seeds.")


if __name__ == "__main__":
    main()
