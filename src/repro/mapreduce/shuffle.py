"""Shuffle traffic between map and reduce tasks.

Each completed map task emits ``shuffle_ratio * block_size`` bytes of
intermediate data, split evenly across the job's reduce tasks.  Reducers
pull their share over the NodeTree -- so shuffle flows contend with
degraded reads on the rack links, which is exactly the interaction
Figure 7(e) of the paper measures.

To keep the event count tractable, pending shuffle bytes are aggregated per
*source rack*: a reducer drains everything deposited since its last drain
with at most one flow per source rack.
"""

from __future__ import annotations

from repro.cluster.topology import ClusterTopology
from repro.sim.engine import Event, Simulator


class JobShuffle:
    """Shuffle bookkeeping for one job.

    Parameters
    ----------
    sim:
        The simulation engine (for wakeup events).
    num_reducers:
        Number of reduce tasks in the job.
    topology:
        Used to map a completed map's node to its rack.
    job_id:
        The owning job, stamped on observability events.
    bus:
        Optional observability event bus; ``shuffle.deposit`` /
        ``shuffle.drain`` events are emitted when set.
    """

    def __init__(
        self,
        sim: Simulator,
        num_reducers: int,
        topology: ClusterTopology,
        job_id: int = 0,
        bus=None,
    ) -> None:
        self._sim = sim
        self._topology = topology
        self.job_id = job_id
        self.bus = bus
        self.num_reducers = num_reducers
        self._pending: list[dict[int, float]] = [{} for _ in range(num_reducers)]
        # Everything ever deposited, per reducer; a restarted reducer (its
        # node failed mid-run) re-fetches from here.
        self._cumulative: list[dict[int, float]] = [{} for _ in range(num_reducers)]
        self._wakeups: list[Event | None] = [None] * num_reducers
        self.total_deposited = 0.0
        self.total_drained = 0.0

    def deposit(self, map_node: int, total_bytes: float) -> None:
        """Register a completed map's intermediate output.

        ``total_bytes`` is the map's whole emission; every reducer receives
        an equal slice, attributed to the map node's rack.
        """
        if self.num_reducers == 0 or total_bytes <= 0:
            return
        rack = self._topology.rack_of(map_node)
        share = total_bytes / self.num_reducers
        self.total_deposited += total_bytes
        if self.bus is not None:
            self.bus.emit(
                "shuffle.deposit", self._sim.now,
                job_id=self.job_id, node=map_node, rack=rack, bytes=total_bytes,
            )
        for index in range(self.num_reducers):
            pending = self._pending[index]
            pending[rack] = pending.get(rack, 0.0) + share
            cumulative = self._cumulative[index]
            cumulative[rack] = cumulative.get(rack, 0.0) + share
            wakeup = self._wakeups[index]
            if wakeup is not None:
                self._wakeups[index] = None
                wakeup.succeed()

    def take(self, reducer_index: int) -> dict[int, float]:
        """Claim (and clear) everything pending for one reducer.

        Returns bytes keyed by source rack; empty when nothing is pending.
        """
        pending = self._pending[reducer_index]
        if not pending:
            return {}
        self._pending[reducer_index] = {}
        self.total_drained += sum(pending.values())
        if self.bus is not None:
            self.bus.emit(
                "shuffle.drain", self._sim.now,
                job_id=self.job_id, reducer=reducer_index,
                bytes=sum(pending.values()),
            )
        return pending

    def wait(self, reducer_index: int) -> Event:
        """An event that fires at the reducer's next deposit."""
        existing = self._wakeups[reducer_index]
        if existing is not None:
            return existing
        wakeup = self._sim.event(name=f"shuffle-wakeup:{reducer_index}")
        self._wakeups[reducer_index] = wakeup
        return wakeup

    def reset_reducer(self, reducer_index: int) -> None:
        """Restore a restarted reducer's full fetch backlog.

        A reduce task killed by a node failure loses everything it already
        pulled; its replacement must re-fetch every deposit made so far.
        """
        self._pending[reducer_index] = dict(self._cumulative[reducer_index])
        wakeup = self._wakeups[reducer_index]
        if wakeup is not None:
            self._wakeups[reducer_index] = None
            wakeup.succeed()

    def notify_maps_done(self) -> None:
        """Wake every blocked reducer so it can observe map-phase completion."""
        for index in range(self.num_reducers):
            wakeup = self._wakeups[index]
            if wakeup is not None:
                self._wakeups[index] = None
                wakeup.succeed()
