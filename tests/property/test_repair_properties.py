"""Property-based tests of the repair planner under random multi-failures.

Any failure set of at most ``n - k`` nodes must yield a repair plan that
keeps every stripe's placement invariants (distinct nodes, rack cap when
relaxation is unnecessary) and leaves every lost block decodable from its
chosen sources; failure sets that kill more than ``n - k`` blocks of a
stripe must raise the typed :class:`DataUnavailableError`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.faults.errors import DataUnavailableError
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster
from repro.storage.repair import RepairPlanner


@st.composite
def cluster_and_failures(draw, min_racks=3):
    """A declustered (6,4) file over several racks, plus <= n-k failed nodes."""
    num_racks = draw(st.integers(min_value=min_racks, max_value=5))
    nodes_per_rack = draw(st.integers(min_value=3, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    params = CodeParams(6, 4)
    topology = ClusterTopology.from_rack_sizes([nodes_per_rack] * num_racks)
    cluster = HdfsRaidCluster(
        topology,
        params,
        num_native_blocks=4 * params.k,
        placement="declustered",
        rng=RngStreams(seed),
    )
    node_ids = sorted(topology.node_ids())
    count = draw(st.integers(min_value=1, max_value=params.parity))
    failed = frozenset(
        draw(
            st.lists(
                st.sampled_from(node_ids),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    return topology, cluster, failed, seed


@settings(max_examples=30, deadline=None)
@given(cluster_and_failures())
def test_tolerable_failures_yield_valid_plans(setup):
    """<= n-k failures: every lost block gets a sound repair assignment."""
    topology, cluster, failed, seed = setup
    params = cluster.block_map.params
    planner = RepairPlanner(cluster.block_map, topology)
    plan = planner.plan(failed, RngStreams(seed + 1))

    lost = {
        stored.block
        for stored in cluster.block_map.all_blocks()
        if stored.node_id in failed
    }
    assert {repair.block for repair in plan.repairs} == lost

    live_count = len(topology.node_ids()) - len(failed)
    for repair in plan.repairs:
        # Sources: exactly k readable survivors of the same stripe.
        assert len(repair.sources) == params.k
        for source in repair.sources:
            assert source.node_id not in failed
            assert source.block.stripe_id == repair.block.stripe_id
            assert source.block != repair.block
        # Destination: live, and (when the cluster is wide enough for the
        # distinct-node invariant to be satisfiable) outside the stripe.
        assert repair.destination not in failed
        if live_count >= params.n:
            survivors = {
                stored.node_id
                for stored in cluster.block_map.surviving_stripe_blocks(
                    repair.block.stripe_id, failed
                )
            }
            assert repair.destination not in survivors


@settings(max_examples=30, deadline=None)
@given(cluster_and_failures(min_racks=4))
def test_planned_placement_respects_rack_cap(setup):
    """Post-repair stripes stay within the rack cap when satisfiable.

    With >= 4 racks a (6,4) stripe (rack cap 2) occupies at most 3 racks,
    so an under-cap rack with live non-stripe nodes always exists and the
    planner's relaxation tier must never fire.
    """
    topology, cluster, failed, seed = setup
    params = cluster.block_map.params
    planner = RepairPlanner(cluster.block_map, topology)
    plan = planner.plan(failed, RngStreams(seed + 2))

    destinations: dict[int, list[int]] = {}
    for repair in plan.repairs:
        destinations.setdefault(repair.block.stripe_id, []).append(
            repair.destination
        )
    for stripe_id, rebuilt in destinations.items():
        per_rack: dict[int, int] = {}
        for stored in cluster.block_map.surviving_stripe_blocks(stripe_id, failed):
            rack = topology.rack_of(stored.node_id)
            per_rack[rack] = per_rack.get(rack, 0) + 1
        for destination in rebuilt:
            rack = topology.rack_of(destination)
            per_rack[rack] = per_rack.get(rack, 0) + 1
        assert max(per_rack.values()) <= params.parity

    # And the rebuilt stripe keeps the distinct-node invariant.
    for stripe_id, rebuilt in destinations.items():
        survivors = [
            stored.node_id
            for stored in cluster.block_map.surviving_stripe_blocks(
                stripe_id, failed
            )
        ]
        assert len(set(survivors + rebuilt)) == len(survivors) + len(rebuilt)


@settings(max_examples=30, deadline=None)
@given(cluster_and_failures())
def test_lost_blocks_remain_decodable(setup):
    """Each repair's k sources suffice to decode the lost block (MDS)."""
    topology, cluster, failed, seed = setup
    params = cluster.block_map.params
    planner = RepairPlanner(cluster.block_map, topology)
    plan = planner.plan(failed, RngStreams(seed + 3))
    for repair in plan.repairs:
        positions = {source.block.position for source in repair.sources}
        # k distinct stripe positions, none of them the lost block's own:
        # an MDS code decodes from any k distinct blocks.
        assert len(positions) == params.k
        assert repair.block.position not in positions


@settings(max_examples=30, deadline=None)
@given(cluster_and_failures(), st.integers(min_value=0, max_value=2**16))
def test_beyond_parity_failures_raise_typed_error(setup, extra_seed):
    """Killing a whole stripe (> n-k of its blocks) raises DataUnavailable."""
    topology, cluster, _failed, seed = setup
    params = cluster.block_map.params
    # Fail enough of stripe 0's nodes that < k survive.
    stripe_nodes = [
        stored.node_id for stored in cluster.block_map.stripe_blocks(0)
    ]
    doomed = frozenset(stripe_nodes[: params.parity + 1])
    planner = RepairPlanner(cluster.block_map, topology)
    with pytest.raises(DataUnavailableError) as excinfo:
        planner.plan(doomed, RngStreams(extra_seed))
    assert excinfo.value.stripe_id is not None
