"""Unit tests for bandwidth specs and unit helpers."""

from __future__ import annotations

import pytest

from repro.cluster.network import GB, MB, NetworkSpec, gbps, mbps


class TestUnits:
    def test_mb(self):
        assert MB == 1024 * 1024
        assert GB == 1024 * MB

    def test_mbps(self):
        assert mbps(8) == 1_000_000  # 8 Mbit/s = 1 MB/s (decimal)

    def test_gbps(self):
        assert gbps(1) == mbps(1000)


class TestNetworkSpec:
    def test_defaults_propagate(self):
        spec = NetworkSpec(rack_download_bw=100.0)
        assert spec.rack_upload_bw == 100.0
        assert spec.node_bandwidth == 100.0

    def test_explicit_overrides(self):
        spec = NetworkSpec(rack_download_bw=100.0, rack_upload_bw=50.0, node_bandwidth=25.0)
        assert spec.rack_upload_bw == 50.0
        assert spec.node_bandwidth == 25.0

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkSpec(rack_download_bw=0)

    def test_uncontended_times(self):
        spec = NetworkSpec(rack_download_bw=10.0)
        assert spec.uncontended_cross_rack_time(100.0) == pytest.approx(10.0)
        assert spec.uncontended_intra_rack_time(50.0) == pytest.approx(5.0)

    def test_cross_rack_bottleneck_is_min(self):
        spec = NetworkSpec(rack_download_bw=10.0, rack_upload_bw=5.0)
        assert spec.uncontended_cross_rack_time(100.0) == pytest.approx(20.0)
