"""Benchmarks: Figure 5, the analytical model's three sweeps.

Paper shapes asserted: DF <= LF everywhere; LF grows with k while DF stays
flat at 1 Gbps; reductions span roughly 15-45%; DF saturates at 500 Mbps.
"""

from __future__ import annotations

import pytest

from conftest import one_shot
from repro.experiments.fig5_analysis import run_fig5a, run_fig5b, run_fig5c


def _print(points, title):
    print(f"\n{title}")
    for point in points:
        print(
            f"  {point.label:>10}: LF={point.normalized_lf:.3f} "
            f"DF={point.normalized_df:.3f} reduction={point.reduction:.1%}"
        )


def test_fig5a(benchmark):
    points = one_shot(benchmark, run_fig5a)
    _print(points, "Figure 5(a): runtime vs coding scheme")
    lf = [point.normalized_lf for point in points]
    assert lf == sorted(lf), "LF must grow with k"
    assert len({round(p.normalized_df, 9) for p in points}) == 1, "DF flat"
    for point in points:
        assert 0.10 <= point.reduction <= 0.45


def test_fig5b(benchmark):
    points = one_shot(benchmark, run_fig5b)
    _print(points, "Figure 5(b): runtime vs number of blocks")
    lf = [point.normalized_lf for point in points]
    df = [point.normalized_df for point in points]
    assert lf == sorted(lf, reverse=True)
    assert df == sorted(df, reverse=True)
    for point in points:
        assert 0.20 <= point.reduction <= 0.35  # paper: 25-28%


def test_fig5c(benchmark):
    points = one_shot(benchmark, run_fig5c)
    _print(points, "Figure 5(c): runtime vs download bandwidth")
    by_label = {point.label: point for point in points}
    assert by_label["500Mbps"].normalized_df == pytest.approx(
        by_label["1000Mbps"].normalized_df
    ), "DF saturates once reads fit in one round"
    for point in points:
        assert 0.10 <= point.reduction <= 0.50  # paper: 18-43%
