"""Quick-configuration shape checks of the experiment harnesses.

The benchmarks run the paper-scale versions; these tests run scaled-down
variants so CI exercises the whole harness path in seconds.
"""

from __future__ import annotations


import pytest

from repro.cluster.network import MB
from repro.ec.codec import CodeParams
from repro.experiments.fig7_simulation import multi_job_config, run_fig7a
from repro.experiments.fig9_testbed import format_runtimes
from repro.experiments.registry import get_experiment, list_experiments
from repro.mapreduce.config import JobConfig, SimulationConfig


def quick_base() -> SimulationConfig:
    return SimulationConfig(
        num_nodes=8,
        num_racks=4,
        map_slots=2,
        code=CodeParams(6, 4),
        block_size=16 * MB,
        jobs=(JobConfig(num_blocks=48, num_reduce_tasks=2),),
    )


class TestFig7Harness:
    def test_fig7a_quick_shape(self):
        codes = (CodeParams(4, 2), CodeParams(6, 4))
        table = run_fig7a(quick_base(), seeds=[0, 1], codes=codes)
        assert len(table.rows) == 2
        for columns in table.rows.values():
            assert {"LF", "EDF"} <= set(columns)
            for stats in columns.values():
                assert stats.median >= 1.0  # failure mode never beats normal

    def test_multi_job_config_arrivals_increase(self):
        config = multi_job_config(quick_base(), seed=3)
        submits = [job.submit_time for job in config.jobs]
        assert submits == sorted(submits)
        assert len(config.jobs) == 10
        assert submits[0] == 0.0


class TestRegistry:
    def test_all_experiments_registered(self):
        assert list_experiments() == [
            "fig3",
            "fig5",
            "fig7",
            "fig8",
            "fig9",
            "reliability",
            "table1",
        ]

    def test_get_unknown(self):
        with pytest.raises(ValueError):
            get_experiment("fig12")

    def test_fig3_and_fig5_run_fast(self):
        # These two are cheap enough to execute in a unit-test run.
        report3 = get_experiment("fig3")()
        assert "40 s" in report3 and "30 s" in report3
        report5 = get_experiment("fig5")()
        assert "Figure 5(a)" in report5


class TestFig9Formatting:
    def test_format_runtimes(self):
        outcome = {
            "WordCount": {"LF": [2.0, 2.2], "EDF": [1.5, 1.7]},
            "Grep": {"LF": [1.0], "EDF": [0.9]},
        }
        text = format_runtimes(outcome, "demo")
        assert "WordCount" in text
        assert "reduction" in text
        assert "23.8%" in text  # (2.1 - 1.6) / 2.1
