"""Simulator-wide observability: events, analytics, digests, dashboards.

Opt-in instrumentation for the whole simulator, plus the read side that
turns a finished run back into answers.  Create an
:class:`ObservabilityCollector`, pass it to
``run_simulation(config, observer=collector)``, and read the structured
event log, scheduler decision trace, utilization metrics, and profiling
figures afterwards::

    from repro import SimulationConfig, run_simulation
    from repro.obs import ObservabilityCollector, analyze_run

    collector = ObservabilityCollector()
    result = run_simulation(SimulationConfig(scheduler="EDF"), observer=collector)
    print(collector.render_utilization_report())
    print(analyze_run(result).summary_paragraph())

Instrumentation is zero-overhead when off and provably passive when on:
the collector never schedules simulator callbacks and never draws
randomness, so ``result`` is bit-identical either way.  The analysis
layer (:mod:`repro.obs.analyze`, :mod:`repro.obs.digest`,
:mod:`repro.obs.report`) is purely post-hoc -- it consumes results and
exported event logs, never the live engine.
"""

from repro.obs.analyze import (
    RUN_SUMMARY_SCHEMA,
    RunAnalysis,
    Timeline,
    analyze_run,
    analyze_timeline,
    critical_path,
    decision_audit,
    map_time_breakdown,
)
from repro.obs.collector import ObservabilityCollector
from repro.obs.digest import LatencyDigest, digest_result
from repro.obs.events import WILDCARD, EventBus, ObsEvent
from repro.obs.export import (
    REPAIR_PID,
    chrome_trace,
    chrome_trace_json,
    events_jsonl,
    load_events_jsonl,
    read_events_jsonl,
    sanitize,
    write_text,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimeWeightedSeries
from repro.obs.profile import Profiler
from repro.obs.report import (
    CAMPAIGN_SCHEMA,
    TOURNAMENT_SCHEMA,
    campaign_report_html,
    diff_reports,
    has_regression,
    render_diff_text,
    report_html,
    run_report_html,
    tournament_report_html,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "Counter",
    "EventBus",
    "Gauge",
    "LatencyDigest",
    "MetricsRegistry",
    "ObsEvent",
    "ObservabilityCollector",
    "Profiler",
    "REPAIR_PID",
    "RUN_SUMMARY_SCHEMA",
    "RunAnalysis",
    "TOURNAMENT_SCHEMA",
    "TimeWeightedSeries",
    "Timeline",
    "WILDCARD",
    "analyze_run",
    "analyze_timeline",
    "campaign_report_html",
    "chrome_trace",
    "chrome_trace_json",
    "critical_path",
    "decision_audit",
    "diff_reports",
    "digest_result",
    "events_jsonl",
    "has_regression",
    "load_events_jsonl",
    "map_time_breakdown",
    "read_events_jsonl",
    "render_diff_text",
    "report_html",
    "run_report_html",
    "sanitize",
    "tournament_report_html",
    "write_text",
]
