"""Unit tests for the WordCount / Grep / LineCount job definitions."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.testbed.jobs import GrepJob, LineCountJob, WordCountJob

SAMPLE = b"the cat sat\nthe dog ran\nthe cat sat\nbirds fly high\n"


class TestWordCount:
    def test_map_counts_words(self):
        pairs = dict(WordCountJob().map_fn(SAMPLE))
        assert pairs["the"] == 3
        assert pairs["cat"] == 2
        assert pairs["high"] == 1

    def test_reduce_sums(self):
        assert WordCountJob().reduce_fn("the", [3, 2, 1]) == [("the", 6)]

    def test_combine_merges(self):
        combined = dict(WordCountJob().combine([("a", 1), ("a", 2), ("b", 1)]))
        assert combined == {"a": 3, "b": 1}

    def test_end_to_end_equals_counter(self):
        job = WordCountJob()
        pairs = job.combine(job.map_fn(SAMPLE))
        output = {}
        for key, value in pairs:
            output.update(dict(job.reduce_fn(key, [value])))
        assert output == dict(Counter(SAMPLE.decode().split()))


class TestGrep:
    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            GrepJob("")

    def test_matches_whole_words_only(self):
        pairs = list(GrepJob("cat").map_fn(SAMPLE))
        assert ("the cat sat", 1) in pairs
        assert all("dog" not in line for line, _ in pairs)

    def test_no_substring_matches(self):
        # "he" is a substring of "the" but not a word in the sample.
        assert list(GrepJob("he").map_fn(SAMPLE)) == []

    def test_reduce_counts_occurrences(self):
        assert GrepJob("x").reduce_fn("line", [1, 1]) == [("line", 2)]


class TestLineCount:
    def test_map_counts_lines(self):
        pairs = dict(LineCountJob().map_fn(SAMPLE))
        assert pairs["the cat sat"] == 2
        assert pairs["birds fly high"] == 1

    def test_combine_merges(self):
        combined = dict(LineCountJob().combine([("l", 1), ("l", 4)]))
        assert combined == {"l": 5}

    def test_reduce_sums(self):
        assert LineCountJob().reduce_fn("l", [2, 3]) == [("l", 5)]

    def test_names(self):
        assert WordCountJob().name == "WordCount"
        assert GrepJob("x").name == "Grep"
        assert LineCountJob().name == "LineCount"
