"""Task trackers: slave heartbeat loops and task execution processes.

Each live node runs a *slave process* that heartbeats the master every
``heartbeat_interval`` seconds (3 s by default, as in the paper) and spawns
one *task runner* process per assignment.  Map runners perform the remote
fetch or degraded read over the NodeTree before processing; reduce runners
drain shuffle data as maps complete and process once the map phase ends.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.cluster.nodetree import NodeTree
from repro.mapreduce.config import SimulationConfig
from repro.mapreduce.job import MapAssignment, MapTaskCategory, ReduceAssignment, TaskKind
from repro.mapreduce.master import JobTracker
from repro.mapreduce.metrics import TaskRecord
from repro.sim.engine import Interrupt, Process, Simulator, Timeout
from repro.sim.resources import Semaphore
from repro.sim.rng import RngStreams
from repro.storage.degraded import DegradedReadPlanner


class SlaveRuntime:
    """Everything slave and task processes need, bundled once per trial."""

    def __init__(
        self,
        sim: Simulator,
        config: SimulationConfig,
        tracker: JobTracker,
        nodetree: NodeTree,
        planner: DegradedReadPlanner,
        rng: RngStreams,
    ) -> None:
        self.sim = sim
        self.config = config
        self.tracker = tracker
        self.nodetree = nodetree
        self.planner = planner
        self.rng = rng
        topology = tracker.topology
        self.map_slots = {
            node.node_id: Semaphore(sim, node.map_slots, name=f"map:{node.node_id}")
            for node in topology.nodes
        }
        self.reduce_slots = {
            node.node_id: Semaphore(sim, node.reduce_slots, name=f"reduce:{node.node_id}")
            for node in topology.nodes
        }
        self._running: dict[int, set[Process]] = {
            node.node_id: set() for node in topology.nodes
        }

    def fail_node(self, node_id: int) -> None:
        """Kill a node mid-run: master bookkeeping, then its live tasks."""
        self.tracker.fail_node(node_id)
        for process in list(self._running[node_id]):
            process.interrupt("node-failure")
        self._running[node_id].clear()

    def _register(self, node_id: int, process: Process) -> None:
        self._running[node_id].add(process)

    def _unregister(self, node_id: int, process: Process) -> None:
        self._running[node_id].discard(process)

    def speed_of(self, node_id: int) -> float:
        """Compute speed factor of a node."""
        return self.tracker.topology.node(node_id).speed_factor


def slave_process(runtime: SlaveRuntime, node_id: int) -> Generator:
    """The heartbeat loop of one live slave.

    Heartbeat phases are staggered by a per-slave random offset within one
    interval (unless ``config.heartbeat_stagger`` is off), as real task
    trackers' heartbeats are not synchronised; without this, all slaves
    would report at the same instants in node-id order, a systematic
    artifact that biases which nodes receive degraded tasks.
    """
    sim = runtime.sim
    tracker = runtime.tracker
    interval = runtime.config.heartbeat_interval
    if runtime.config.heartbeat_stagger:
        offset = runtime.rng.stream(f"heartbeat:{node_id}").uniform(0.0, interval)
        yield Timeout(offset)
    while not tracker.finished:
        if node_id in tracker.failed_nodes:
            return  # this slave just died
        free_map = runtime.map_slots[node_id].available
        free_reduce = runtime.reduce_slots[node_id].available
        maps, reduces = tracker.heartbeat(node_id, free_map, free_reduce)
        for assignment in maps:
            if not runtime.map_slots[node_id].try_acquire():
                raise RuntimeError(
                    f"scheduler over-assigned map slots on node {node_id}"
                )
            process = sim.spawn(
                map_task_process(runtime, assignment),
                name=f"map:{assignment.job_id}:{assignment.block}",
            )
            runtime._register(node_id, process)
        for assignment in reduces:
            if not runtime.reduce_slots[node_id].try_acquire():
                raise RuntimeError(
                    f"scheduler over-assigned reduce slots on node {node_id}"
                )
            process = sim.spawn(
                reduce_task_process(runtime, assignment),
                name=f"reduce:{assignment.job_id}:{assignment.reduce_index}",
            )
            runtime._register(node_id, process)
        yield Timeout(interval)


def map_task_process(runtime: SlaveRuntime, assignment: MapAssignment) -> Generator:
    """Execute one map task: fetch (if needed), process, report.

    If the hosting node fails mid-task, the process receives an
    :class:`~repro.sim.engine.Interrupt` and hands the task back to the
    master for re-execution elsewhere; the dead node's slot is not
    released.
    """
    try:
        yield from _map_task_body(runtime, assignment)
    except Interrupt:
        runtime.tracker.on_map_task_killed(assignment)


def _map_task_body(runtime: SlaveRuntime, assignment: MapAssignment) -> Generator:
    sim = runtime.sim
    config = runtime.config
    job = runtime.tracker.job_state(assignment.job_id)
    record = TaskRecord(
        job_id=assignment.job_id,
        kind=TaskKind.MAP,
        category=assignment.category,
        slave_id=assignment.slave_id,
        launch_time=sim.now,
    )

    if assignment.category is MapTaskCategory.DEGRADED:
        plan = runtime.planner.plan(
            assignment.block,
            assignment.slave_id,
            runtime.tracker.failed_nodes,
            runtime.rng,
        )
        per_rack: dict[int, float] = {}
        for source in plan.sources:
            if source.node_id == assignment.slave_id:
                continue  # already on this node, no transfer
            rack = runtime.tracker.topology.rack_of(source.node_id)
            per_rack[rack] = per_rack.get(rack, 0.0) + config.block_size
        flows = [
            runtime.nodetree.transfer_from_rack(rack, assignment.slave_id, size)
            for rack, size in sorted(per_rack.items())
        ]
        if flows:
            yield sim.all_of(flows)
        record.download_time = sim.now - record.launch_time
    elif assignment.category in (MapTaskCategory.RACK_LOCAL, MapTaskCategory.REMOTE):
        home = runtime.tracker.hdfs.node_of(assignment.block)
        yield runtime.nodetree.transfer(home, assignment.slave_id, config.block_size)
        record.download_time = sim.now - record.launch_time

    processing = runtime.rng.normal(
        f"maptime:{assignment.job_id}:{assignment.block}",
        job.config.map_time_mean,
        job.config.map_time_std,
    ) / runtime.speed_of(assignment.slave_id)
    yield Timeout(processing)

    record.finish_time = sim.now
    shuffle_bytes = config.block_size * job.config.shuffle_ratio
    runtime.map_slots[assignment.slave_id].release()
    runtime.tracker.on_map_complete(record, shuffle_bytes)


def reduce_task_process(runtime: SlaveRuntime, assignment: ReduceAssignment) -> Generator:
    """Execute one reduce task: drain shuffle until maps finish, then process.

    Like maps, a reduce task killed by a node failure is requeued; its
    already-fetched shuffle data died with the node, so the replacement
    starts from scratch.
    """
    try:
        yield from _reduce_task_body(runtime, assignment)
    except Interrupt:
        runtime.tracker.on_reduce_task_killed(assignment)


def _reduce_task_body(runtime: SlaveRuntime, assignment: ReduceAssignment) -> Generator:
    sim = runtime.sim
    job = runtime.tracker.job_state(assignment.job_id)
    shuffle = runtime.tracker.shuffles[assignment.job_id]
    record = TaskRecord(
        job_id=assignment.job_id,
        kind=TaskKind.REDUCE,
        category=None,
        slave_id=assignment.slave_id,
        launch_time=sim.now,
    )
    shuffling_time = 0.0
    while True:
        batch = shuffle.take(assignment.reduce_index)
        if batch:
            drain_start = sim.now
            flows = [
                runtime.nodetree.transfer_from_rack(rack, assignment.slave_id, size)
                for rack, size in sorted(batch.items())
            ]
            yield sim.all_of(flows)
            shuffling_time += sim.now - drain_start
            # Pace drains so that many small deposits batch into one flow.
            yield Timeout(runtime.config.shuffle_drain_interval)
            continue
        if job.maps_all_completed():
            break
        yield shuffle.wait(assignment.reduce_index)
    record.download_time = shuffling_time

    processing = runtime.rng.normal(
        f"reducetime:{assignment.job_id}:{assignment.reduce_index}",
        job.config.reduce_time_mean,
        job.config.reduce_time_std,
    ) / runtime.speed_of(assignment.slave_id)
    yield Timeout(processing)

    record.finish_time = sim.now
    runtime.reduce_slots[assignment.slave_id].release()
    runtime.tracker.on_reduce_complete(record)
