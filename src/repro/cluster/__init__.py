"""Cluster topology substrate.

Models the two-level switch hierarchy of Figure 1 in the paper: nodes grouped
into racks, racks joined by a core switch.

* :mod:`repro.cluster.topology` -- :class:`~repro.cluster.topology.Node`,
  :class:`~repro.cluster.topology.Rack` and
  :class:`~repro.cluster.topology.ClusterTopology` with convenience builders.
* :mod:`repro.cluster.network` -- transfer-time primitives and bandwidth
  bookkeeping.
* :mod:`repro.cluster.nodetree` -- the paper's *NodeTree*: the structure that
  serialises transfers over shared rack links.
* :mod:`repro.cluster.failures` -- failure injection (single node, multiple
  nodes, whole rack).
"""

from repro.cluster.failures import FailurePattern, FailureInjector
from repro.cluster.network import NetworkSpec
from repro.cluster.nodetree import NodeTree
from repro.cluster.topology import ClusterTopology, Node, Rack

__all__ = [
    "ClusterTopology",
    "FailureInjector",
    "FailurePattern",
    "NetworkSpec",
    "Node",
    "NodeTree",
    "Rack",
]
