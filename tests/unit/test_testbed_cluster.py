"""Unit tests for TestbedCluster setup (not the threaded engine)."""

from __future__ import annotations

import pytest

from repro.ec.codec import CodeParams
from repro.testbed.engine import TestbedCluster, TestbedConfig


@pytest.fixture(scope="module")
def cluster():
    config = TestbedConfig(num_blocks=12, block_size=32 * 1024, seed=5)
    return TestbedCluster(config)


class TestConfig:
    def test_defaults_match_paper_layout(self):
        config = TestbedConfig()
        assert config.num_nodes == 12
        assert config.num_racks == 3
        assert config.code == CodeParams(12, 10)
        assert config.num_reduce_tasks == 8
        assert config.placement == "round-robin"

    def test_corpus_bytes(self):
        config = TestbedConfig(num_blocks=10, block_size=1000)
        assert config.corpus_bytes == 10_000


class TestSetup:
    def test_corpus_written_and_recoverable(self, cluster):
        block_map = cluster.fs.block_map
        assert block_map is not None
        assert block_map.num_native_blocks >= 12

    def test_custom_corpus_respected(self):
        corpus = b"alpha beta\n" * 500
        config = TestbedConfig(num_blocks=4, block_size=1024, seed=5)
        cluster = TestbedCluster(config, corpus=corpus)
        assert cluster.corpus == corpus

    def test_kill_node_picks_live_slave(self, cluster):
        failed = cluster.kill_node("some-stream")
        assert len(failed) == 1
        assert failed < set(cluster.topology.node_ids())

    def test_kill_node_deterministic_per_stream(self):
        first = TestbedCluster(TestbedConfig(num_blocks=12, block_size=32 * 1024, seed=9))
        second = TestbedCluster(TestbedConfig(num_blocks=12, block_size=32 * 1024, seed=9))
        assert first.kill_node() == second.kill_node()

    def test_corpus_deterministic_per_seed(self):
        first = TestbedCluster(TestbedConfig(num_blocks=12, block_size=32 * 1024, seed=9))
        second = TestbedCluster(TestbedConfig(num_blocks=12, block_size=32 * 1024, seed=9))
        assert first.corpus == second.corpus
