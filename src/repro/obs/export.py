"""Exporters: JSONL event log, Chrome trace-event JSON, file helpers.

Three artifact formats come out of an instrumented trial:

* :func:`events_jsonl` -- one spec-valid JSON object per line, one line per
  :class:`~repro.obs.events.ObsEvent` (``NaN``/``Inf`` are emitted as
  ``null``, never as the non-standard tokens ``json.dumps`` produces by
  default);
* :func:`chrome_trace` -- the Chrome trace-event format (the JSON Object
  Format with a ``traceEvents`` array), loadable in Perfetto / DevTools:
  one process row per node, one thread lane per concurrent slot, download
  and process phases as separate duration events, a dedicated repair-driver
  row for block rebuilds, and failure detections / corruptions / recoveries
  as instant events;
* :func:`read_events_jsonl` / :func:`load_events_jsonl` -- the JSONL
  reader, round-tripping exporter output back into ``ObsEvent`` objects
  for post-hoc analysis (:mod:`repro.obs.analyze`);
* :func:`write_text` -- shared file-writing helper that creates missing
  parent directories (used by the CLI for every export path).
"""

from __future__ import annotations

import json
import math
import os

from repro.mapreduce.job import TaskKind
from repro.mapreduce.metrics import SimulationResult
from repro.obs.events import ObsEvent

#: Microseconds per simulated second (trace-event timestamps are in us).
_US = 1e6

#: Synthetic process row holding repair-driver duration events in the
#: Chrome trace (node pids are non-negative, so -1 can never collide).
REPAIR_PID = -1


def _sanitize_key(key) -> str:
    """A dict key as strict JSON would spell it, without ever raising.

    ``json.dumps`` silently coerces int/bool/None keys but *raises* on
    NaN/Infinity keys (``allow_nan=False``) and on tuples or other objects.
    Payloads keyed by e.g. rack id or block coordinate must survive export,
    so every key becomes the string strict JSON would use -- non-finite
    floats map to ``"null"`` like non-finite values do, and anything
    exotic falls back to ``str``.
    """
    if isinstance(key, str):
        return key
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, float):
        if not math.isfinite(key):
            return "null"
        return repr(key)
    if isinstance(key, int):
        return str(key)
    return str(key)


def sanitize(value):
    """Recursively make a payload strict-JSON safe.

    Non-finite floats become ``None`` at *any* depth -- values, list and
    tuple items, dict values, and dict keys alike -- and every dict key is
    coerced to the string strict JSON would use (:func:`_sanitize_key`),
    so ``json.dumps(sanitize(x), allow_nan=False)`` never raises on
    simulator payloads.  Sets are sorted into lists for determinism.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {_sanitize_key(key): sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return [sanitize(item) for item in sorted(value, key=repr)]
    return value


def events_jsonl(events: list[ObsEvent]) -> str:
    """Serialise an event log as JSON Lines (one strict-JSON object each)."""
    lines = [
        json.dumps(sanitize(event.to_dict()), allow_nan=False) for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def read_events_jsonl(text: str) -> list[ObsEvent]:
    """Parse :func:`events_jsonl` output back into :class:`ObsEvent`\\ s.

    The inverse of the JSONL exporter up to sanitisation: payload fields
    come back exactly as serialised (NaN/Infinity as ``None``, dict keys as
    strings), and a payload field that was shadowed by the reserved ``t`` /
    ``kind`` names stays shadowed.  Blank lines are skipped, so trailing
    newlines and concatenated logs both parse.
    """
    events: list[ObsEvent] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {number} is not valid JSON: {error}") from None
        if not isinstance(record, dict) or "t" not in record or "kind" not in record:
            raise ValueError(
                f"line {number} is not an event record (needs 't' and 'kind')"
            )
        time = record.pop("t")
        kind = record.pop("kind")
        events.append(ObsEvent(time=float(time), kind=kind, fields=record))
    return events


def load_events_jsonl(path: str) -> list[ObsEvent]:
    """Read a JSONL event-log file back into :class:`ObsEvent`\\ s."""
    with open(path) as handle:
        return read_events_jsonl(handle.read())


def chrome_trace(result: SimulationResult) -> dict:
    """Build a Chrome trace-event document from a finished trial.

    Layout mirrors the paper's Figure 3/4 slot charts: ``pid`` is the node,
    ``tid`` is a greedily assigned slot lane (so the lane count equals the
    node's peak concurrency), and each task contributes a ``download`` and a
    ``process`` duration event.  Times are simulated seconds scaled to
    microseconds.
    """
    trace_events: list[dict] = []
    lane_busy_until: dict[int, list[float]] = {}
    seen_nodes: set[int] = set()

    tasks = []
    for job_id, job in sorted(result.jobs.items()):
        tasks.extend((job_id, task) for task in job.tasks)
    tasks.sort(key=lambda item: (item[1].slave_id, item[1].launch_time))

    for job_id, task in tasks:
        if not math.isfinite(task.finish_time):
            continue  # killed mid-flight; no closed interval to draw
        node = task.slave_id
        busy = lane_busy_until.setdefault(node, [])
        for lane, busy_until in enumerate(busy):
            if task.launch_time >= busy_until - 1e-9:
                busy[lane] = task.finish_time
                break
        else:
            lane = len(busy)
            busy.append(task.finish_time)
        if node not in seen_nodes:
            seen_nodes.add(node)
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": node,
                    "args": {"name": f"node {node}"},
                }
            )
        kind = "reduce" if task.kind is TaskKind.REDUCE else "map"
        category = task.category.value if task.category else kind
        common = {"pid": node, "tid": lane, "ph": "X"}
        if task.download_time > 0:
            trace_events.append(
                {
                    **common,
                    "name": f"download ({category})",
                    "cat": "download",
                    "ts": task.launch_time * _US,
                    "dur": task.download_time * _US,
                    "args": {"job": job_id, "category": category},
                }
            )
        process_start = task.launch_time + task.download_time
        trace_events.append(
            {
                **common,
                "name": f"{kind} ({category})",
                "cat": "process",
                "ts": process_start * _US,
                "dur": max(task.finish_time - process_start, 0.0) * _US,
                "args": {
                    "job": job_id,
                    "category": category,
                    "attempt": task.attempt,
                    "speculative": task.speculative,
                },
            }
        )

    for record in result.faults.detections:
        trace_events.append(
            {
                "name": f"failure detected: node {record.node}",
                "ph": "i",
                "s": "g",
                "pid": record.node if record.node in seen_nodes else 0,
                "tid": 0,
                "ts": record.detected_at * _US,
                "args": {"failed_at": record.failed_at, "latency": record.latency},
            }
        )

    # Repair and corruption activity (PR 3/6 event kinds) gets its own
    # process row so rebuild waves read alongside the task lanes.
    if result.faults.repairs:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": REPAIR_PID,
                "args": {"name": "repair driver"},
            }
        )
        repair_busy: list[float] = []
        for record in sorted(
            result.faults.repairs, key=lambda r: (r.started_at, r.block)
        ):
            for lane, busy_until in enumerate(repair_busy):
                if record.started_at >= busy_until - 1e-9:
                    repair_busy[lane] = record.finished_at
                    break
            else:
                lane = len(repair_busy)
                repair_busy.append(record.finished_at)
            trace_events.append(
                {
                    "pid": REPAIR_PID,
                    "tid": lane,
                    "ph": "X",
                    "name": f"repair {record.block}",
                    "cat": "repair",
                    "ts": record.started_at * _US,
                    "dur": max(record.finished_at - record.started_at, 0.0) * _US,
                    "args": {
                        "destination": record.destination,
                        "bytes_fetched": record.bytes_fetched,
                        "reclaimed_tasks": record.reclaimed_tasks,
                        "attempts": record.attempts,
                    },
                }
            )
    for record in result.faults.corruptions:
        trace_events.append(
            {
                "name": f"block corrupt: {record.block}",
                "ph": "i",
                "s": "g",
                "pid": record.node if record.node in seen_nodes else 0,
                "tid": 0,
                "ts": record.detected_at * _US,
                "args": {"block": record.block, "via": record.via},
            }
        )
    for record in result.faults.recoveries:
        trace_events.append(
            {
                "name": f"node {record.node} recovered",
                "ph": "i",
                "s": "g",
                "pid": record.node if record.node in seen_nodes else 0,
                "tid": 0,
                "ts": record.at * _US,
                "args": {"reclaimed_tasks": record.reclaimed_tasks},
            }
        )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "scheduler": result.scheduler,
            "seed": result.seed,
            "failed_nodes": sorted(result.failed_nodes),
        },
    }


def chrome_trace_json(result: SimulationResult, indent: int | None = None) -> str:
    """:func:`chrome_trace` serialised as strict JSON text."""
    return json.dumps(sanitize(chrome_trace(result)), indent=indent, allow_nan=False)


def write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path``, creating missing parent directories.

    Raises :class:`OSError` on unwritable targets; callers (the CLI) turn
    that into a clean exit instead of a traceback.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(text)
