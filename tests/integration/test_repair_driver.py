"""Online repair and multi-failure-resilient degraded reads, end to end.

Covers the subsystem's contract:

* zero perturbation -- enabling ``wait_for_repair`` or an idle repair
  driver leaves failure-free / repair-free trials byte-identical;
* mid-read source loss -- killing a node that is serving an in-flight
  degraded read cancels the flows and the reader re-plans and completes;
* too many failures -- more than ``n - k`` overlapping failures fail the
  job with a typed :class:`DataUnavailableError` carrying the partial
  result, or park tasks until recovery with ``wait_for_repair``;
* bandwidth sharing -- repair flows compete with map/shuffle traffic and
  show up in the utilization report;
* observability -- ``repair.*``, ``degraded.replan`` and ``block.corrupt``
  events appear in the JSONL event log.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cluster.network import MB, mbps
from repro.ec.codec import CodeParams
from repro.faults.errors import DataUnavailableError
from repro.faults.schedule import (
    CorruptEvent,
    FailEvent,
    FailureSchedule,
    RecoverEvent,
)
from repro.cluster.failures import FailurePattern
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.simulation import run_simulation
from repro.mapreduce.trace import to_json
from repro.obs import ObservabilityCollector, events_jsonl
from repro.storage.repair_driver import RepairConfig


def _small_config(**overrides) -> SimulationConfig:
    """12 nodes / 3 racks / (6,4): cheap but non-trivial trials."""
    defaults = dict(
        num_nodes=12,
        num_racks=3,
        map_slots=2,
        reduce_slots=1,
        code=CodeParams(6, 4),
        block_size=64 * MB,
        rack_bandwidth=mbps(1000),
        jobs=(
            JobConfig(
                num_blocks=96,
                num_reduce_tasks=4,
                map_time_mean=10.0,
                map_time_std=0.5,
            ),
        ),
        failure=FailurePattern.NONE,
        heartbeat_expiry=9.0,
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _tiny_code_config(**overrides) -> SimulationConfig:
    """6 nodes / 3 racks / (3,2): n-k = 1, so two failures are fatal."""
    defaults = dict(
        num_nodes=6,
        num_racks=3,
        map_slots=2,
        reduce_slots=1,
        code=CodeParams(3, 2),
        block_size=64 * MB,
        rack_bandwidth=mbps(1000),
        jobs=(
            JobConfig(
                num_blocks=48,
                num_reduce_tasks=2,
                map_time_mean=10.0,
                map_time_std=0.5,
            ),
        ),
        failure=FailurePattern.NONE,
        heartbeat_expiry=9.0,
        seed=3,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestZeroPerturbation:
    """Trials that never exercise the new machinery stay bit-identical."""

    def test_wait_for_repair_flag_is_inert_without_unavailability(self):
        config = _small_config(failure=FailurePattern.SINGLE_NODE)
        baseline = run_simulation(config)
        flagged = run_simulation(
            dataclasses.replace(config, wait_for_repair=True)
        )
        assert to_json(baseline) == to_json(flagged)

    def test_idle_repair_driver_is_inert_without_failures(self):
        config = _small_config()
        baseline = run_simulation(config)
        with_driver = run_simulation(
            dataclasses.replace(
                config, repair=RepairConfig(bandwidth_cap=mbps(400))
            )
        )
        assert to_json(baseline) == to_json(with_driver)

    def test_retry_knobs_are_inert_without_mid_read_failures(self):
        config = _small_config(failure=FailurePattern.SINGLE_NODE)
        baseline = run_simulation(config)
        tweaked = run_simulation(
            dataclasses.replace(
                config, degraded_read_retries=7, degraded_read_backoff=0.5
            )
        )
        assert to_json(baseline) == to_json(tweaked)


class TestMidReadSourceLoss:
    """A source dying mid-read cancels flows; the reader re-plans and wins."""

    # Tight bandwidth stretches degraded reads, so the second failure at
    # t=15 catches reads in flight whose sources include node 5 (seed 1).
    def _config(self):
        return _small_config(
            seed=1,
            rack_bandwidth=mbps(150),
            failure_schedule=FailureSchedule(
                events=(FailEvent(at=0.0, node=0), FailEvent(at=15.0, node=5))
            ),
        )

    def test_replans_and_completes(self):
        collector = ObservabilityCollector()
        result = run_simulation(self._config(), observer=collector)
        kinds = [event.kind for event in collector.events]
        assert kinds.count("degraded.replan") >= 1
        assert kinds.count("flow.cancel") >= 1
        job = result.job(0)
        assert not job.failed
        assert len([t for t in job.tasks if t.kind.value == "map"]) == 96

    def test_replan_event_names_the_lost_source(self):
        collector = ObservabilityCollector()
        run_simulation(self._config(), observer=collector)
        replans = [
            event for event in collector.events if event.kind == "degraded.replan"
        ]
        assert replans
        assert all(5 in event.fields["lost_sources"] for event in replans)


class TestDataUnavailable:
    """More than n-k overlapping failures fail the job with a typed error."""

    def test_initial_overload_raises_before_run(self):
        config = _tiny_code_config(
            failure_schedule=FailureSchedule(
                events=(FailEvent(at=0.0, node=0), FailEvent(at=0.0, node=2))
            )
        )
        with pytest.raises(DataUnavailableError):
            run_simulation(config)

    def test_mid_run_overload_fails_job_with_partial_result(self):
        config = _tiny_code_config(
            failure_schedule=FailureSchedule(
                events=(FailEvent(at=20.0, node=0), FailEvent(at=26.0, node=2))
            )
        )
        with pytest.raises(DataUnavailableError) as excinfo:
            run_simulation(config)
        result = excinfo.value.result
        assert result is not None
        job = result.job(0)
        assert job.failed
        assert job.failure_kind == "data-unavailable"
        # The partial result retains the tasks that did complete.
        assert len(job.tasks) > 0

    def test_wait_for_repair_parks_until_recovery(self):
        config = _tiny_code_config(
            wait_for_repair=True,
            failure_schedule=FailureSchedule(
                events=(
                    FailEvent(at=20.0, node=0),
                    FailEvent(at=26.0, node=2),
                    RecoverEvent(at=120.0, node=2),
                )
            ),
        )
        collector = ObservabilityCollector()
        result = run_simulation(config, observer=collector)
        job = result.job(0)
        assert not job.failed
        kinds = [event.kind for event in collector.events]
        assert kinds.count("degraded.park") >= 1
        assert kinds.count("degraded.unpark") >= 1
        # Parked tasks resumed only after the recovery restored decodability.
        first_unpark = min(
            event.time
            for event in collector.events
            if event.kind == "degraded.unpark"
        )
        assert first_unpark >= 120.0


class TestRepairDriver:
    """Repairs run in the background, reclassify tasks and share bandwidth."""

    def test_repairs_complete_and_update_block_map(self):
        config = _small_config(
            failure=FailurePattern.SINGLE_NODE,
            repair=RepairConfig(bandwidth_cap=mbps(800), concurrent_repairs=4),
        )
        result = run_simulation(config)
        failed = next(iter(result.failed_nodes))
        assert result.faults.repairs
        assert result.faults.repaired_bytes > 0
        for record in result.faults.repairs:
            assert record.destination != failed
            assert record.finished_at > record.started_at

    def test_repair_reclassifies_pending_degraded_tasks(self):
        # LF schedules degraded tasks last, leaving them pending long
        # enough for repairs to land and reclaim them.
        config = _small_config(
            scheduler="LF",
            seed=7,
            jobs=(
                JobConfig(
                    num_blocks=192,
                    num_reduce_tasks=4,
                    map_time_mean=10.0,
                    map_time_std=0.5,
                ),
            ),
            failure=FailurePattern.SINGLE_NODE,
            repair=RepairConfig(bandwidth_cap=mbps(800), concurrent_repairs=4),
        )
        result = run_simulation(config)
        reclaimed = sum(r.reclaimed_tasks for r in result.faults.repairs)
        assert reclaimed > 0
        # Reclaimed tasks ran as normal reads, shrinking the degraded count
        # relative to the same trial without a repair driver.
        unrepaired = run_simulation(dataclasses.replace(config, repair=None))
        assert (
            result.job(0).degraded_task_count
            < unrepaired.job(0).degraded_task_count
        )

    def test_repair_traffic_competes_for_bandwidth(self):
        base = _small_config(
            failure=FailurePattern.SINGLE_NODE, rack_bandwidth=mbps(300)
        )
        quiet = run_simulation(base)
        collector = ObservabilityCollector()
        busy = run_simulation(
            dataclasses.replace(
                base,
                repair=RepairConfig(
                    bandwidth_cap=mbps(600), concurrent_repairs=4
                ),
            ),
            observer=collector,
        )
        # Repair flows ride the same links as map/shuffle traffic, so the
        # foreground job measurably slows down...
        assert busy.job(0).runtime > quiet.job(0).runtime
        # ...and the throttle link reports nonzero utilization.
        report = collector.render_utilization_report()
        throttle_lines = [
            line for line in report.splitlines() if "repair:cap" in line
        ]
        assert throttle_lines
        assert "avg   0.0%" not in throttle_lines[0]


class TestCorruption:
    def test_read_detection_triggers_degraded_read_and_in_place_repair(self):
        config = _small_config(
            jobs=(
                JobConfig(
                    num_blocks=96,
                    num_reduce_tasks=4,
                    submit_time=10.0,
                    map_time_mean=10.0,
                    map_time_std=0.5,
                ),
            ),
            failure_schedule=FailureSchedule(
                events=(CorruptEvent(at=2.0, stripe=0, position=0),)
            ),
            repair=RepairConfig(bandwidth_cap=mbps(400)),
        )
        collector = ObservabilityCollector()
        result = run_simulation(config, observer=collector)
        assert [c.via for c in result.faults.corruptions] == ["read"]
        assert len(result.faults.repairs) == 1
        repaired = result.faults.repairs[0]
        # Corruption on a live node is rewritten in place.
        assert repaired.destination == result.faults.corruptions[0].node
        kinds = [event.kind for event in collector.events]
        assert "block.corrupt" in kinds
        assert "degraded.start" in kinds

    def test_scrubber_finds_unread_corruption(self):
        # Parity blocks are never read by map tasks; only the scrubber
        # can notice them going bad.
        config = _small_config(
            failure_schedule=FailureSchedule(
                events=(CorruptEvent(at=1.0, stripe=2, position=5),)
            ),
            repair=RepairConfig(
                bandwidth_cap=mbps(400), scrub_interval=10.0
            ),
        )
        result = run_simulation(config)
        assert [c.via for c in result.faults.corruptions] == ["scrub"]
        assert len(result.faults.repairs) == 1


class TestEventLog:
    def test_repair_events_reach_the_jsonl_export(self):
        config = _small_config(
            seed=1,
            rack_bandwidth=mbps(150),
            failure_schedule=FailureSchedule(
                events=(
                    FailEvent(at=0.0, node=0),
                    FailEvent(at=15.0, node=5),
                    CorruptEvent(at=1.0, stripe=2, position=5),
                )
            ),
            repair=RepairConfig(
                bandwidth_cap=mbps(300), scrub_interval=10.0
            ),
        )
        collector = ObservabilityCollector()
        run_simulation(config, observer=collector)
        kinds = {
            json.loads(line)["kind"]
            for line in events_jsonl(collector.events).splitlines()
        }
        for expected in (
            "repair.start",
            "repair.end",
            "degraded.replan",
            "block.corrupt",
        ):
            assert expected in kinds, f"missing {expected} in event log"
