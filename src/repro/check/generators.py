"""Determinism checks for stochastic generators.

The failure models (:mod:`repro.faults.models`) and arrival processes
(:mod:`repro.mapreduce.workload`) promise that a ``(config, seed)`` pair
always produces the same event stream -- the property every reliability
result in this repo leans on for reproducibility and resumability.  The
checks here *regenerate and compare*: run the generator twice from fresh
:class:`~repro.sim.rng.RngStreams` and raise an
:class:`~repro.check.invariants.InvariantViolationError` on any divergence
(a generator that reads global randomness, draw-order-dependent streams, or
mutable shared state fails here long before it corrupts a campaign).
"""

from __future__ import annotations

import json

from repro.check.invariants import InvariantViolation, InvariantViolationError
from repro.cluster.topology import ClusterTopology
from repro.sim.rng import RngStreams


def check_generator_determinism(
    model,
    topology: ClusterTopology,
    seed: int,
    horizon: float,
    runs: int = 2,
) -> dict:
    """Generate ``runs`` times from ``seed``; raise on any divergence.

    Returns the canonical schedule dict of the (verified) generation so
    callers can reuse it without generating a third time.
    """
    baseline = None
    payload = None
    for attempt in range(runs):
        schedule = model.generate(topology, RngStreams(seed), horizon)
        payload = schedule.to_dict()
        canonical = json.dumps(payload, sort_keys=True)
        if baseline is None:
            baseline = canonical
        elif canonical != baseline:
            violation = InvariantViolation(
                time=0.0,
                invariant="generator-determinism",
                message=(
                    f"{type(model).__name__} produced a different event stream"
                    f" on regeneration {attempt + 1} from seed {seed}"
                ),
                details={"seed": seed, "horizon": horizon},
            )
            raise InvariantViolationError([violation])
    return payload


def check_arrivals_determinism(
    process,
    seed: int,
    horizon: float,
    runs: int = 2,
) -> tuple:
    """Same contract as :func:`check_generator_determinism`, for arrivals.

    Returns the (verified) job tuple.
    """
    baseline = None
    jobs = ()
    for attempt in range(runs):
        jobs = process.generate(RngStreams(seed), horizon)
        if baseline is None:
            baseline = jobs
        elif jobs != baseline:
            violation = InvariantViolation(
                time=0.0,
                invariant="generator-determinism",
                message=(
                    f"{type(process).__name__} produced a different arrival"
                    f" stream on regeneration {attempt + 1} from seed {seed}"
                ),
                details={"seed": seed, "horizon": horizon},
            )
            raise InvariantViolationError([violation])
    return jobs
