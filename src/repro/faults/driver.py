"""Replaying a failure schedule and detecting dead trackers.

Two pieces run against a live simulation:

* :func:`install_schedule` registers the schedule's deferred events as
  simulator callbacks: crashes stop a slave's heartbeat loop and kill its
  task processes *silently* (the master is not told), recoveries respawn
  the slave, slowdowns scale its processing speed.
* :func:`failure_detector_process` is the master-side monitor: it scans
  last-heartbeat timestamps every check interval and declares a tracker
  dead once it has been silent longer than ``heartbeat_expiry`` -- the
  Hadoop model.  Detection latency (declare time minus ground-truth crash
  time) is recorded in the trial's :class:`~repro.faults.records.FaultTimeline`.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.cluster.topology import ClusterTopology
from repro.faults.records import SlowdownRecord
from repro.faults.schedule import (
    CorruptEvent,
    FailEvent,
    FailureSchedule,
    RecoverEvent,
    SlowdownEvent,
)
from repro.storage.block import BlockId
from repro.sim.engine import Timeout

if TYPE_CHECKING:  # imported for typing only; avoids a runtime import cycle
    from repro.mapreduce.slave import SlaveRuntime


def install_schedule(
    schedule: FailureSchedule, runtime: "SlaveRuntime", topology: ClusterTopology
) -> None:
    """Register every deferred schedule event as a simulator callback.

    ``t == 0`` fail events are *not* registered here: they are the
    down-before-start case and must be passed to the :class:`JobTracker`
    as its initial ``failed_nodes`` (see
    :meth:`FailureSchedule.initial_failures`).
    """
    block_map = runtime.tracker.hdfs.block_map
    schedule.validate(
        topology,
        num_stripes=block_map.num_stripes,
        stripe_width=block_map.params.n,
    )
    sim = runtime.sim
    for event in schedule.deferred_events():
        if isinstance(event, FailEvent):
            targets = schedule.fail_targets(event, topology)
            sim.call_at(
                event.at,
                lambda targets=targets: [runtime.crash_node(n) for n in targets],
            )
        elif isinstance(event, RecoverEvent):
            sim.call_at(event.at, lambda node=event.node: runtime.recover_node(node))
        elif isinstance(event, SlowdownEvent):

            def begin(event: SlowdownEvent = event) -> None:
                runtime.begin_slowdown(event.node, event.factor)
                runtime.tracker.faults.slowdowns.append(
                    SlowdownRecord(
                        node=event.node,
                        at=event.at,
                        factor=event.factor,
                        duration=event.duration,
                    )
                )

            sim.call_at(event.at, begin)
            sim.call_at(
                event.at + event.duration,
                lambda event=event: runtime.end_slowdown(event.node, event.factor),
            )
        elif isinstance(event, CorruptEvent):
            # Coordinates were range-checked by validate() above.
            params = block_map.params
            block = BlockId(stripe_id=event.stripe, position=event.position, k=params.k)
            sim.call_at(event.at, lambda block=block: runtime.corrupt_block(block))
        else:  # pragma: no cover - the schedule type union is closed
            raise AssertionError(f"unhandled event {event!r}")


def failure_detector_process(runtime: "SlaveRuntime") -> Generator:
    """The master's heartbeat monitor.

    Wakes every heartbeat interval and declares dead any live node whose
    last heartbeat is older than ``heartbeat_expiry``.  Ground-truth crash
    times (which the *master* does not know) come from the runtime's crash
    log, purely so detection latency can be reported.
    """
    tracker = runtime.tracker
    expiry = runtime.config.heartbeat_expiry
    interval = runtime.config.heartbeat_interval
    while not tracker.finished:
        now = runtime.sim.now
        for node_id in sorted(tracker.last_heartbeat):
            if node_id in tracker.failed_nodes:
                continue
            if now - tracker.last_heartbeat[node_id] > expiry:
                failed_at = runtime.crash_times.get(
                    node_id, tracker.last_heartbeat[node_id]
                )
                tracker.declare_dead(node_id, failed_at=failed_at)
        if runtime.sim.peek() is None:
            # Nothing else is scheduled, ever: every slave loop, task and
            # recovery callback is gone, so the trial can make no further
            # progress.  Exit instead of ticking an empty simulation forever.
            return
        yield Timeout(interval)
