#!/usr/bin/env python
"""What happens when the node dies mid-job?

The paper's experiments fail a node before the job starts; real failures
strike anywhere.  This example sweeps the failure instant across the map
phase and shows how the penalty shrinks as the strike comes later -- the
failed node's already-processed blocks never need degraded reads -- and
that degraded-first scheduling helps at every strike time.

Run:  python examples/midrun_failure.py
"""

from dataclasses import replace

from repro import CodeParams, FailurePattern, JobConfig, SimulationConfig, run_simulation
from repro.cluster.network import MB, mbps

BASE = SimulationConfig(
    num_nodes=12,
    num_racks=4,
    map_slots=2,
    code=CodeParams(8, 6),
    block_size=64 * MB,
    # A constrained network makes degraded reads expensive, as in the
    # paper's 100 Mbps motivating example.
    rack_bandwidth=mbps(200),
    jobs=(JobConfig(num_blocks=240, num_reduce_tasks=6),),
    seed=13,
)


def main() -> None:
    normal = run_simulation(BASE.with_failure(FailurePattern.NONE)).job(0).runtime
    print(f"normal-mode runtime: {normal:.1f} s\n")
    print(f"{'strike time':>12}  {'LF':>8}  {'EDF':>8}  {'LF degraded':>11}  {'EDF saves':>9}")
    for strike in (0.0, 100.0, 200.0, 300.0):
        row = {}
        degraded = 0
        for scheduler in ("LF", "EDF"):
            config = replace(BASE, failure_time=strike, scheduler=scheduler)
            result = run_simulation(config)
            row[scheduler] = result.job(0).runtime
            if scheduler == "LF":
                degraded = result.job(0).degraded_task_count
        saving = (row["LF"] - row["EDF"]) / row["LF"]
        print(
            f"{strike:>10.0f} s  {row['LF']:8.1f}  {row['EDF']:8.1f}  "
            f"{degraded:>11d}  {saving:>8.1%}"
        )
    print(
        "\nLater failures lose less work (fewer blocks still need degraded"
        "\nreads); EDF's advantage is largest for early strikes and fades to"
        "\nzero once no degraded work remains to schedule."
    )


if __name__ == "__main__":
    main()
