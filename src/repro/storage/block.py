"""Block identities and stored-block metadata.

A :class:`BlockId` names a block by its stripe coordinates; a
:class:`StoredBlock` adds where it lives.  Payloads are kept out of these
types on purpose: the event-driven simulator only moves metadata, while the
functional testbed (:mod:`repro.testbed`) stores real bytes keyed by
:class:`BlockId`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.stripe import BlockKind, block_name


@dataclass(frozen=True, order=True)
class BlockId:
    """Identity of one block: ``(stripe_id, position)`` within a file.

    Positions ``0 .. k-1`` are native, the rest parity; ``k`` is carried so
    the id can classify and print itself the way the paper does
    (``B_{i,j}`` / ``P_{i,j}``).
    """

    stripe_id: int
    position: int
    k: int

    def __post_init__(self) -> None:
        if self.stripe_id < 0 or self.position < 0:
            raise ValueError(f"negative stripe coordinates ({self.stripe_id}, {self.position})")

    @property
    def kind(self) -> BlockKind:
        """Whether this block is native data or parity."""
        if self.position < self.k:
            return BlockKind.NATIVE
        return BlockKind.PARITY

    @property
    def is_native(self) -> bool:
        """True for native (data) blocks."""
        return self.kind is BlockKind.NATIVE

    @property
    def native_index(self) -> int:
        """Sequence number among native blocks; only valid for natives."""
        if not self.is_native:
            raise ValueError(f"{self} is a parity block and has no native index")
        return self.stripe_id * self.k + self.position

    def __str__(self) -> str:
        return block_name(self.stripe_id, self.position, self.k)


@dataclass(frozen=True)
class StoredBlock:
    """A block plus the node holding it."""

    block: BlockId
    node_id: int

    def __str__(self) -> str:
        return f"{self.block}@node{self.node_id}"
