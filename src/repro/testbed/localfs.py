"""In-memory datanodes and the HDFS-RAID filesystem of the testbed.

Real bytes, real coding: ``write_file`` splits a byte string into blocks,
encodes each group of ``k`` into parity with the Reed-Solomon coder, and
scatters the stripe over per-node stores via a placement policy.  Reads in
failure mode perform genuine degraded reads -- download ``k`` surviving
blocks over the emulated network and decode.
"""

from __future__ import annotations

import threading

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams, ErasureCodec
from repro.sim.rng import RngStreams
from repro.storage.block import BlockId
from repro.storage.degraded import DegradedReadPlanner, SourceSelection
from repro.storage.namenode import BlockMap
from repro.storage.placement import make_placement_policy
from repro.storage.repair import RepairPlan, RepairPlanner
from repro.testbed.netem import EmulatedNetwork


class BlockNotFoundError(KeyError):
    """Raised when a block is absent from a datanode store."""


class DataNodeStore:
    """Thread-safe block payload store of one node."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._blocks: dict[BlockId, bytes] = {}
        self._lock = threading.Lock()

    def put(self, block: BlockId, payload: bytes) -> None:
        """Store a block payload."""
        with self._lock:
            self._blocks[block] = payload

    def get(self, block: BlockId) -> bytes:
        """Fetch a block payload."""
        with self._lock:
            try:
                return self._blocks[block]
            except KeyError:
                raise BlockNotFoundError(
                    f"node {self.node_id} does not hold {block}"
                ) from None

    def block_count(self) -> int:
        """Number of blocks stored."""
        with self._lock:
            return len(self._blocks)


class HdfsRaidFilesystem:
    """An erasure-coded file over in-memory datanodes.

    Parameters
    ----------
    topology:
        Cluster layout.
    params:
        Erasure-code parameters.
    block_size:
        Bytes per block.
    netem:
        The emulated network all transfers cross.
    placement:
        Placement policy name (the paper's testbed used round-robin).
    rng:
        Random streams (placement and degraded source selection).
    source_selection:
        How degraded reads pick their ``k`` sources.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        params: CodeParams,
        block_size: int,
        netem: EmulatedNetwork,
        placement: str = "round-robin",
        rng: RngStreams | None = None,
        source_selection: SourceSelection = SourceSelection.RACK_LOCAL_FIRST,
    ) -> None:
        self.topology = topology
        self.params = params
        self.block_size = block_size
        self.netem = netem
        self.rng = rng or RngStreams(0)
        self.codec = ErasureCodec(params)
        self._placement_name = placement
        self._source_selection = source_selection
        self.stores = {node.node_id: DataNodeStore(node.node_id) for node in topology.nodes}
        self.block_map: BlockMap | None = None
        self.planner: DegradedReadPlanner | None = None
        self._block_lengths: dict[BlockId, int] = {}

    # -- writing -----------------------------------------------------------

    def split_blocks(self, data: bytes) -> list[bytes]:
        """Split ``data`` into blocks of at most ``block_size`` bytes.

        Splits fall on line boundaries (as Hadoop's TextInputFormat
        guarantees records never straddle a task's input), so map functions
        see whole lines; a single line longer than a block is split
        mid-line as a last resort.
        """
        blocks: list[bytes] = []
        offset = 0
        while offset < len(data):
            end = min(offset + self.block_size, len(data))
            if end < len(data):
                newline = data.rfind(b"\n", offset, end)
                if newline > offset:
                    end = newline + 1
            blocks.append(data[offset:end])
            offset = end
        if not blocks:
            blocks = [b""]
        return blocks

    def write_file(self, data: bytes) -> BlockMap:
        """Encode ``data`` into erasure-coded stripes and place them.

        Returns the resulting block map; also retained as
        ``self.block_map``.
        """
        blocks = self.split_blocks(data)
        num_native = len(blocks)
        # One batched kernel pass produces every stripe's parity at once.
        stripes = self.codec.encode_stripes(
            [
                blocks[start : start + self.params.k]
                for start in range(0, num_native, self.params.k)
            ]
        )
        # The testbed (like the paper's) tolerates node failures only: with
        # 12 slaves and (12,10) stripes the Section III rack rule cannot hold.
        policy = make_placement_policy(
            self._placement_name, self.topology, self.params, rack_fault_tolerant=False
        )
        assignment = policy.place_file(len(stripes), self.rng)
        self._block_lengths: dict[BlockId, int] = {}
        for stripe_id, stripe in enumerate(stripes):
            for position, payload in enumerate(stripe):
                block = BlockId(stripe_id=stripe_id, position=position, k=self.params.k)
                self.stores[assignment[block]].put(block, payload)
                self._block_lengths[block] = len(payload)
        self.block_map = BlockMap(self.params, assignment, num_native)
        self.planner = DegradedReadPlanner(
            self.block_map, self.topology, self._source_selection
        )
        return self.block_map

    # -- reading -----------------------------------------------------------

    def read_block(
        self,
        block: BlockId,
        reader_node: int,
        failed_nodes: frozenset[int] = frozenset(),
    ) -> tuple[bytes, float]:
        """Read one native block from ``reader_node``'s point of view.

        Performs a plain (possibly remote) read when the block's node is
        alive, or a degraded read when it is down.  Returns the payload and
        the simulated seconds spent transferring data.
        """
        if self.block_map is None:
            raise RuntimeError("no file written yet")
        home = self.block_map.node_of(block)
        if home not in failed_nodes:
            payload = self.stores[home].get(block)
            elapsed = self.netem.transfer(home, reader_node, len(payload))
            return payload, elapsed
        return self.degraded_read(block, reader_node, failed_nodes)

    def degraded_read(
        self,
        block: BlockId,
        reader_node: int,
        failed_nodes: frozenset[int],
    ) -> tuple[bytes, float]:
        """Reconstruct a lost block: fetch ``k`` survivors, then decode.

        The ``k`` downloads run sequentially in the calling worker thread
        (as a single HDFS-RAID client read does) over the emulated network;
        decoding uses the real Reed-Solomon implementation.
        """
        if self.planner is None:
            raise RuntimeError("no file written yet")
        plan = self.planner.plan(block, reader_node, failed_nodes, self.rng)
        elapsed = 0.0
        available: dict[int, bytes] = {}
        for source in plan.sources:
            payload = self.stores[source.node_id].get(source.block)
            elapsed += self.netem.transfer(source.node_id, reader_node, len(payload))
            available[source.block.position] = payload
        rebuilt = self.codec.degraded_read(
            block.position, available, lost_length=self._block_lengths.get(block)
        )
        return rebuilt, elapsed

    # -- repair ------------------------------------------------------------

    def repair_failed_nodes(self, failed_nodes: frozenset[int]) -> RepairPlan:
        """Rebuild every block lost to ``failed_nodes`` with real bytes.

        Plans the reconstruction with :class:`RepairPlanner`, then executes
        it: for each lost block the ``k`` planned source payloads are read
        from their stores, the block is rebuilt through the coder (every
        stripe with the same surviving pattern hits the cached single-row
        decode plan, so the sub-matrix inversion is paid once per pattern),
        stored on the planned destination, and reassigned in the block map
        so subsequent reads find the repaired copy.  Returns the executed
        plan for traffic accounting.
        """
        if self.block_map is None:
            raise RuntimeError("no file written yet")
        failed_nodes = frozenset(failed_nodes)
        planner = RepairPlanner(self.block_map, self.topology)
        plan = planner.plan(failed_nodes, self.rng)
        for repair in plan.repairs:
            available = {
                source.block.position: self.stores[source.node_id].get(source.block)
                for source in repair.sources
            }
            payload = self.codec.degraded_read(
                repair.block.position,
                available,
                lost_length=self._block_lengths.get(repair.block),
            )
            self.stores[repair.destination].put(repair.block, payload)
            self.block_map.reassign(repair.block, repair.destination)
        return plan

    def stored_blocks_per_node(self) -> dict[int, int]:
        """Blocks held by each node (for load-balance assertions)."""
        return {node_id: store.block_count() for node_id, store in self.stores.items()}
