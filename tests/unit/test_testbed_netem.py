"""Unit tests for the wall-clock emulated network."""

from __future__ import annotations

import threading

import pytest

from repro.cluster.network import NetworkSpec
from repro.testbed.netem import EmulatedNetwork


@pytest.fixture
def netem(small_topology):
    # 1 MB/s links, 1000x compressed time -> 1 KB transfers take ~1 ms real.
    return EmulatedNetwork(
        small_topology, NetworkSpec(rack_download_bw=1_000_000.0), time_scale=0.001
    )


class TestPaths:
    def test_same_node_no_links(self, netem):
        assert netem.path(0, 0) == []

    def test_intra_rack(self, netem):
        assert netem.path(0, 1) == ["node0:out", "node1:in"]

    def test_cross_rack(self, netem):
        assert netem.path(0, 4) == ["node0:out", "rack0:up", "rack1:down", "node4:in"]

    def test_bad_time_scale(self, small_topology):
        with pytest.raises(ValueError):
            EmulatedNetwork(
                small_topology, NetworkSpec(rack_download_bw=1.0), time_scale=0.0
            )


class TestTransfers:
    def test_duration_scales_with_size(self, small_topology):
        # A generous time scale keeps scheduler jitter small relative to
        # the transfer itself.
        netem = EmulatedNetwork(
            small_topology, NetworkSpec(rack_download_bw=1_000_000.0), time_scale=0.25
        )
        elapsed = netem.transfer(0, 4, 400_000)  # 0.4 simulated s
        assert 0.3 <= elapsed <= 0.8

    def test_same_node_instant(self, netem):
        assert netem.transfer(2, 2, 10_000_000) < 0.05

    def test_bytes_accounted(self, netem):
        netem.transfer(0, 1, 5000)
        netem.transfer(0, 4, 7000)
        assert netem.transferred_bytes == 12_000

    def test_contention_serialises(self, small_topology):
        """Two transfers into the same rack share the downlink lock."""
        netem = EmulatedNetwork(
            small_topology, NetworkSpec(rack_download_bw=1_000_000.0), time_scale=0.25
        )
        results = []
        lock = threading.Lock()

        def worker():
            # 400 KB at 1 MB/s = 0.4 simulated s (0.1 s real at scale 0.25).
            elapsed = netem.transfer(0, 4, 400_000)
            with lock:
                results.append(elapsed)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # One finishes in ~0.4 simulated s; the other queued behind it and
        # reports ~0.8 simulated s including the wait.
        assert min(results) < 0.65
        assert max(results) >= 0.65

    def test_disjoint_paths_parallel(self, small_topology):
        netem = EmulatedNetwork(
            small_topology, NetworkSpec(rack_download_bw=1_000_000.0), time_scale=0.25
        )
        results = []
        lock = threading.Lock()

        def worker(src, dst):
            elapsed = netem.transfer(src, dst, 400_000)
            with lock:
                results.append(elapsed)

        threads = [
            threading.Thread(target=worker, args=(0, 1)),
            threading.Thread(target=worker, args=(2, 3)),  # rack 0 too but other NICs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Both ran concurrently: neither reports queueing delay.
        assert all(elapsed < 0.65 for elapsed in results)
        assert len(results) == 2
