"""Benchmark: Figure 3, the motivating example (LF 40 s vs DF 30 s)."""

from __future__ import annotations

import pytest

from conftest import one_shot
from repro.experiments.fig3_motivating import (
    degraded_first_schedule,
    locality_first_schedule,
    map_phase_duration,
    run_schedule,
)


def test_fig3_locality_first(benchmark):
    timings = one_shot(benchmark, run_schedule, locality_first_schedule())
    duration = map_phase_duration(timings)
    print(f"\nFigure 3(a) locality-first map phase: {duration:.0f} s (paper: 40 s)")
    assert duration == pytest.approx(40.0)


def test_fig3_degraded_first(benchmark):
    timings = one_shot(benchmark, run_schedule, degraded_first_schedule())
    duration = map_phase_duration(timings)
    print(f"\nFigure 3(b) degraded-first map phase: {duration:.0f} s (paper: 30 s)")
    assert duration == pytest.approx(30.0)
