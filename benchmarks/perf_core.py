"""Fixed workloads for the simulation-core performance suite.

Three workloads probe the hot paths the core optimisation targeted:

* :func:`engine_churn` -- raw event-loop throughput: processes that sleep,
  signal events and join each other, measured as dispatched callbacks per
  wall-second.
* :func:`fluid_churn` -- FluidNetwork reallocation pressure: hundreds of
  staggered multi-link flows over a two-tier rack/NIC topology, with a
  fraction cancelled mid-flight, measured as rate reallocations per
  wall-second.
* :func:`fig7_single_trial` -- one end-to-end paper trial (the unit of work
  every figure's sweep repeats thousands of times).

The workloads are deterministic (fixed LCG streams, no wall-clock
dependence inside the simulated world) so before/after timings compare the
implementation, not the workload.  ``benchmarks/test_perf_core.py`` runs
them, writes ``BENCH_sim.json`` and enforces the regression floor;
``python benchmarks/perf_core.py`` prints one sample per workload.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.mapreduce.config import SimulationConfig
from repro.mapreduce.simulation import run_simulation
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import FluidNetwork


def _lcg(seed: int):
    """A tiny deterministic integer stream (workload shaping only)."""
    state = seed & 0x7FFFFFFF
    while True:
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        yield state


def engine_churn(num_processes: int = 300, rounds: int = 400) -> dict:
    """Timeout/event/join churn through the engine's dispatch loop.

    Each process alternates sleeping and signalling a partner event, so the
    run exercises timeout scheduling, event waiter management and process
    joins in roughly the mix the MapReduce simulator produces.
    """
    sim = Simulator()
    gates = [sim.event(name=f"gate{i}") for i in range(num_processes)]

    def worker(index: int):
        stream = _lcg(index + 1)
        for round_no in range(rounds):
            yield Timeout((next(stream) % 97 + 1) * 0.001)
            if round_no == rounds // 2:
                gates[index].succeed(index)
            if round_no == rounds - 1 and index + 1 < num_processes:
                yield gates[index + 1]

    for index in range(num_processes):
        sim.spawn(worker(index), name=f"worker{index}")
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "dispatched": sim.dispatched,
        "seconds": elapsed,
        "events_per_sec": sim.dispatched / elapsed,
    }


def fluid_churn(
    num_racks: int = 4,
    nodes_per_rack: int = 10,
    num_flows: int = 800,
    cancel_every: int = 5,
) -> dict:
    """Concurrent multi-link flows with mid-flight cancels.

    Mirrors a degraded-read storm: most flows cross four links (source NIC,
    source rack uplink, destination rack downlink, destination NIC), start
    within a short window so hundreds are concurrently active, and every
    ``cancel_every``-th flow is aborted mid-flight -- the workload the
    paper's multi-run sweeps hammer hardest.
    """
    sim = Simulator()
    network = FluidNetwork(sim)
    capacity = 125e6  # 1 Gbps in bytes/s
    for rack in range(num_racks):
        network.add_link(f"rack{rack}:up", capacity)
        network.add_link(f"rack{rack}:down", capacity)
    num_nodes = num_racks * nodes_per_rack
    for node in range(num_nodes):
        network.add_link(f"node{node}:in", capacity)
        network.add_link(f"node{node}:out", capacity)

    stream = _lcg(42)
    completions = {"done": 0, "cancelled": 0}

    def launch(flow_id: int):
        src = next(stream) % num_nodes
        dst = (src + 1 + next(stream) % (num_nodes - 1)) % num_nodes
        src_rack, dst_rack = src // nodes_per_rack, dst // nodes_per_rack
        links = [f"node{src}:out"]
        if src_rack != dst_rack:
            links += [f"rack{src_rack}:up", f"rack{dst_rack}:down"]
        links.append(f"node{dst}:in")
        size = (8 + next(stream) % 56) * 1e6
        start_delay = (next(stream) % 2000) * 0.01

        def flow_process():
            yield Timeout(start_delay)
            done = network.transfer(links, size)
            if flow_id % cancel_every == 0:
                cancel_after = (next(stream) % 100 + 1) * 0.05

                def canceller():
                    yield Timeout(cancel_after)
                    if network.cancel(done):
                        completions["cancelled"] += 1

                sim.spawn(canceller())
            yield done
            completions["done"] += 1

        sim.spawn(flow_process())

    for flow_id in range(num_flows):
        launch(flow_id)
    start = time.perf_counter()
    sim.run(until=1e7)
    elapsed = time.perf_counter() - start
    reallocations = completions["done"] + completions["cancelled"] + num_flows
    return {
        "flows": num_flows,
        "completed": completions["done"],
        "cancelled": completions["cancelled"],
        "dispatched": sim.dispatched,
        "seconds": elapsed,
        "reallocations_per_sec": reallocations / elapsed,
    }


def fig7_single_trial(num_blocks: int = 1440) -> dict:
    """One end-to-end fig7-style trial (EDF, single-node failure)."""
    config = SimulationConfig(scheduler="EDF", seed=1)
    config = replace(
        config, jobs=tuple(replace(job, num_blocks=num_blocks) for job in config.jobs)
    )
    start = time.perf_counter()
    result = run_simulation(config)
    elapsed = time.perf_counter() - start
    return {
        "num_blocks": num_blocks,
        "simulated_runtime": result.total_runtime,
        "seconds": elapsed,
    }


def main() -> None:
    for name, fn in (
        ("engine_churn", engine_churn),
        ("fluid_churn", fluid_churn),
        ("fig7_single_trial", fig7_single_trial),
    ):
        print(name, fn())


if __name__ == "__main__":
    main()
