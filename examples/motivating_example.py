#!/usr/bin/env python
"""The paper's motivating example (Section III, Figures 2-3), step by step.

A five-node, two-rack cluster stores 12 native + 12 parity blocks under a
(4,2) code.  Node 1 fails while a map-only job runs.  Locality-first
scheduling launches the four degraded tasks together at the end of the map
phase, so the two readers in rack 1 compete for the rack downlink and the
phase stretches to 40 s.  Moving two degraded tasks to the front removes
all competition and finishes in 30 s -- a 25% saving, the observation that
motivates degraded-first scheduling.

Run:  python examples/motivating_example.py
"""

from repro.experiments.fig3_motivating import (
    degraded_first_schedule,
    locality_first_schedule,
    map_phase_duration,
    run_schedule,
)


def show_timeline(label: str, schedule) -> float:
    timings = run_schedule(schedule)
    print(f"{label}:")
    for timing in sorted(timings, key=lambda t: (t.node, t.launch)):
        download = ""
        if timing.download_done > timing.launch:
            download = f"  (download {timing.launch:.0f}-{timing.download_done:.0f} s)"
        print(
            f"  node {timing.node + 1}: {timing.name:9s} "
            f"runs {timing.launch:5.1f} -> {timing.finish:5.1f} s{download}"
        )
    duration = map_phase_duration(timings)
    print(f"  map phase: {duration:.0f} s\n")
    return duration


def main() -> None:
    lf = show_timeline("Locality-first (Figure 3a)", locality_first_schedule())
    df = show_timeline("Degraded-first (Figure 3b)", degraded_first_schedule())
    print(f"Degraded-first saves {(lf - df) / lf:.0%} of the map phase (paper: 25%).")


if __name__ == "__main__":
    main()
