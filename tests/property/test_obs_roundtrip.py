"""Property tests: the JSONL event log round-trips through its own reader.

The exporter's contract is *sanitised* round-tripping: any payload the
simulator can produce -- including NaN/Infinity at arbitrary depth and
dicts keyed by ints, bools, floats, or None -- serialises to strict JSON
and parses back to exactly ``sanitize(...)`` of the original.  Hypothesis
drives the payload space far wider than the simulator ever will.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.events import ObsEvent
from repro.obs.export import events_jsonl, read_events_jsonl, sanitize

#: Scalar payload values, non-finite floats very much included.
scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=16),
)

#: Dict keys a careless emitter might use: JSON coerces these silently
#: (or raises, for non-finite floats) -- sanitize must never raise.
odd_keys = st.one_of(
    st.text(max_size=8),
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=True, allow_infinity=True),
)

nested_payloads = st.recursive(
    scalar_values,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(odd_keys, children, max_size=4),
        st.frozensets(
            st.one_of(st.integers(min_value=-50, max_value=50), st.text(max_size=4)),
            max_size=4,
        ),
    ),
    max_leaves=12,
)

#: Top-level field names come from keyword arguments in the real emitters,
#: so they are identifiers -- but never the reserved "t"/"kind".
field_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10
).filter(lambda name: name not in ("t", "kind"))

event_strategy = st.builds(
    ObsEvent,
    time=st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    kind=st.sampled_from(
        ["task.launch", "task.finish", "sched.decision", "repair.end", "x"]
    ),
    fields=st.dictionaries(field_names, nested_payloads, max_size=4),
)


@settings(max_examples=150, deadline=None)
@given(st.lists(event_strategy, max_size=6))
def test_events_round_trip_up_to_sanitisation(events):
    text = events_jsonl(events)
    parsed = read_events_jsonl(text)
    assert len(parsed) == len(events)
    for original, back in zip(events, parsed):
        assert back.time == original.time
        assert back.kind == original.kind
        expected = sanitize(original.to_dict())
        expected.pop("t")
        expected.pop("kind")
        assert back.fields == expected


@settings(max_examples=150, deadline=None)
@given(st.lists(event_strategy, max_size=6))
def test_every_line_is_strict_json(events):
    for line in events_jsonl(events).splitlines():
        record = json.loads(line)
        assert isinstance(record, dict)
        # Strict JSON would re-serialise without the non-standard tokens.
        json.dumps(record, allow_nan=False)


@settings(max_examples=100, deadline=None)
@given(event_strategy)
def test_sanitize_is_idempotent(event):
    once = sanitize(event.to_dict())
    assert sanitize(once) == once


@settings(max_examples=100, deadline=None)
@given(st.lists(event_strategy, max_size=4))
def test_round_trip_is_stable_after_one_pass(events):
    """A second export of the parsed events reproduces the first byte-for-byte."""
    first = events_jsonl(events)
    second = events_jsonl(read_events_jsonl(first))
    assert second == first


class TestReaderErrors:
    def test_garbage_line_is_reported_with_its_number(self):
        text = '{"t": 0.0, "kind": "a"}\nnot json\n'
        with pytest.raises(ValueError, match="line 2 is not valid JSON"):
            read_events_jsonl(text)

    def test_record_without_reserved_fields_is_rejected(self):
        with pytest.raises(ValueError, match="needs 't' and 'kind'"):
            read_events_jsonl('{"kind": "a"}\n')
        with pytest.raises(ValueError, match="needs 't' and 'kind'"):
            read_events_jsonl('{"t": 1.0}\n')

    def test_non_object_line_is_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            read_events_jsonl("[1, 2, 3]\n")

    def test_blank_lines_and_trailing_newlines_are_fine(self):
        events = read_events_jsonl('\n{"t": 1.5, "kind": "a", "x": 2}\n\n')
        assert len(events) == 1
        assert events[0].time == 1.5
        assert events[0].fields == {"x": 2}
