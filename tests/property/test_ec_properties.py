"""Property-based tests of the erasure-coding stack's core invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.codec import CodeParams, ErasureCodec
from repro.ec.reed_solomon import ReedSolomon


@st.composite
def code_params(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    parity = draw(st.integers(min_value=1, max_value=4))
    return CodeParams(k + parity, k)


@settings(max_examples=30, deadline=None)
@given(code_params(), st.binary(min_size=1, max_size=512), st.integers(min_value=1, max_value=64))
def test_encode_file_roundtrips_original_bytes(params, data, block_size):
    """Concatenating the native blocks of every stripe returns the file."""
    codec = ErasureCodec(params)
    stripes = codec.encode_file(data, block_size)
    natives = []
    remaining = -(-len(data) // block_size) if data else 1
    for stripe in stripes:
        take = min(params.k, remaining)
        natives.extend(stripe[:take])
        remaining -= take
    assert b"".join(natives) == data


@settings(max_examples=30, deadline=None)
@given(
    code_params(),
    st.binary(min_size=1, max_size=256),
    st.integers(min_value=1, max_value=48),
    st.randoms(use_true_random=False),
)
def test_degraded_read_survives_max_erasures(params, data, block_size, pyrandom):
    """Erase n-k random blocks of a stripe; every lost block reconstructs."""
    codec = ErasureCodec(params)
    stripes = codec.encode_file(data, block_size)
    stripe = stripes[0]
    erased = pyrandom.sample(range(params.n), params.parity)
    available = {
        index: stripe[index] for index in range(params.n) if index not in erased
    }
    for lost in erased:
        rebuilt = codec.degraded_read(lost, available, lost_length=len(stripe[lost]))
        assert rebuilt == stripe[lost]


@settings(max_examples=30, deadline=None)
@given(code_params(), st.binary(min_size=0, max_size=128))
def test_parity_blocks_all_same_length(params, data):
    codec = ErasureCodec(params)
    stripe = codec.encode_stripe([data.ljust(1, b"\0")])
    parities = stripe[params.k:]
    assert len({len(parity) for parity in parities}) == 1


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=2, max_value=4),
    st.randoms(use_true_random=False),
)
def test_decode_is_invariant_to_survivor_choice(k, parity, pyrandom):
    """Any two valid survivor subsets decode to the same natives."""
    coder = ReedSolomon(k + parity, k)
    natives = [bytes(pyrandom.randrange(256) for _ in range(20)) for _ in range(k)]
    stripe = natives + coder.encode(natives)
    subset_a = pyrandom.sample(range(k + parity), k)
    subset_b = pyrandom.sample(range(k + parity), k)
    decoded_a = coder.decode({i: stripe[i] for i in subset_a})
    decoded_b = coder.decode({i: stripe[i] for i in subset_b})
    assert decoded_a == decoded_b == natives
