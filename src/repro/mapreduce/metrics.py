"""Per-task records, per-job summaries and boxplot statistics.

The paper reports MapReduce runtime (first task launch to last reduce
completion), normalized runtime (failure mode over normal mode), remote task
counts, degraded read times, and per-task-type average runtimes (Table I).
Everything needed for those is collected here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.faults.records import FaultTimeline
from repro.mapreduce.job import MapTaskCategory, TaskKind


@dataclass
class TaskRecord:
    """Lifecycle of one task.

    Times are simulation seconds.  ``download_time`` is the degraded-read
    or remote-fetch duration (0 for node-local tasks); for reduce tasks it
    is the total time spent with shuffle flows outstanding.  ``attempt``
    counts launches of the same task (1 = first try); ``speculative`` marks
    a backup attempt that won the race against a straggler.
    """

    job_id: int
    kind: TaskKind
    category: MapTaskCategory | None
    slave_id: int
    launch_time: float
    download_time: float = 0.0
    finish_time: float = math.nan
    attempt: int = 1
    speculative: bool = False

    @property
    def runtime(self) -> float:
        """Launch-to-completion duration (the paper's task runtime)."""
        return self.finish_time - self.launch_time


@dataclass
class JobMetrics:
    """Summary of one job's execution."""

    job_id: int
    submit_time: float
    first_launch_time: float = math.nan
    finish_time: float = math.nan
    tasks: list[TaskRecord] = field(default_factory=list)
    #: True when the job was abandoned (a task exhausted its retry budget).
    failed: bool = False
    failure_reason: str | None = None
    #: Failure class: ``"retry-budget"`` or ``"data-unavailable"``.
    failure_kind: str | None = None
    #: Attempts killed by node failures (requeued for re-execution).
    killed_attempts: int = 0
    #: Speculative backups launched / interrupted because the other copy won.
    speculative_launched: int = 0
    speculative_killed: int = 0

    @property
    def runtime(self) -> float:
        """The paper's MapReduce runtime: first launch to last completion."""
        return self.finish_time - self.first_launch_time

    @property
    def total_attempts(self) -> int:
        """Every attempt launched for this job: completions plus kills."""
        return len(self.tasks) + self.killed_attempts + self.speculative_killed

    @property
    def max_task_attempt(self) -> int:
        """Highest attempt number any completed task needed."""
        return max((task.attempt for task in self.tasks), default=0)

    @property
    def makespan(self) -> float:
        """Submit-to-finish duration (includes queueing in multi-job runs)."""
        return self.finish_time - self.submit_time

    def tasks_of(self, *categories: MapTaskCategory) -> list[TaskRecord]:
        """Map tasks whose category is one of ``categories``."""
        return [task for task in self.tasks if task.category in categories]

    @property
    def remote_task_count(self) -> int:
        """Number of map tasks that ran remote (cross-rack fetch)."""
        return len(self.tasks_of(MapTaskCategory.REMOTE))

    @property
    def stolen_task_count(self) -> int:
        """Normal map tasks that ran off their home node (rack-local + remote).

        This is the interpretation of the paper's Figure 8(a) "number of
        remote tasks": tasks whose input block had to leave its storage
        node.  Our simulator distinguishes a rack-local tier (as Hadoop
        does), so the strictly-cross-rack count is also available as
        :attr:`remote_task_count`.
        """
        return len(self.tasks_of(MapTaskCategory.RACK_LOCAL, MapTaskCategory.REMOTE))

    @property
    def degraded_task_count(self) -> int:
        """Number of degraded map tasks."""
        return len(self.tasks_of(MapTaskCategory.DEGRADED))

    def mean_runtime(self, kind: TaskKind, *categories: MapTaskCategory) -> float:
        """Average task runtime for a kind (and optional map categories)."""
        if kind is TaskKind.REDUCE:
            selected = [task for task in self.tasks if task.kind is TaskKind.REDUCE]
        else:
            selected = self.tasks_of(*categories) if categories else [
                task for task in self.tasks if task.kind is TaskKind.MAP
            ]
        if not selected:
            return math.nan
        return sum(task.runtime for task in selected) / len(selected)

    def mean_degraded_read_time(self) -> float:
        """Average degraded-read (download) time over degraded tasks."""
        degraded = self.tasks_of(MapTaskCategory.DEGRADED)
        if not degraded:
            return math.nan
        return sum(task.download_time for task in degraded) / len(degraded)


@dataclass
class SimulationResult:
    """Everything one simulation trial produced."""

    jobs: dict[int, JobMetrics]
    failed_nodes: frozenset[int]
    scheduler: str
    seed: int
    #: Per-job (deposited, drained) shuffle byte totals; equal when every
    #: reducer fetched everything the maps emitted.
    shuffle_totals: dict[int, tuple[float, float]] = field(default_factory=dict)
    #: Fault-tolerance observations: detection latencies, blacklistings,
    #: recoveries, slowdowns (empty timeline for failure-free trials).
    faults: FaultTimeline = field(default_factory=FaultTimeline)

    @property
    def total_runtime(self) -> float:
        """First launch of any job to last completion of any job."""
        first = min(job.first_launch_time for job in self.jobs.values())
        last = max(job.finish_time for job in self.jobs.values())
        return last - first

    def job(self, job_id: int) -> JobMetrics:
        """Metrics for one job."""
        return self.jobs[job_id]


@dataclass(frozen=True)
class BoxplotStats:
    """The five-number summary the paper's boxplots show, plus outliers."""

    minimum: float
    lower_quartile: float
    median: float
    upper_quartile: float
    maximum: float
    mean: float
    outliers: tuple[float, ...] = ()

    @classmethod
    def from_samples(cls, samples: list[float]) -> "BoxplotStats":
        """Compute Tukey boxplot statistics from raw samples."""
        if not samples:
            raise ValueError("cannot summarise zero samples")
        ordered = sorted(samples)
        q1 = _percentile(ordered, 25)
        q2 = _percentile(ordered, 50)
        q3 = _percentile(ordered, 75)
        iqr = q3 - q1
        low_fence = q1 - 1.5 * iqr
        high_fence = q3 + 1.5 * iqr
        inliers = [value for value in ordered if low_fence <= value <= high_fence]
        outliers = tuple(value for value in ordered if value < low_fence or value > high_fence)
        return cls(
            minimum=inliers[0] if inliers else ordered[0],
            lower_quartile=q1,
            median=q2,
            upper_quartile=q3,
            maximum=inliers[-1] if inliers else ordered[-1],
            mean=sum(ordered) / len(ordered),
            outliers=outliers,
        )


def _percentile(ordered: list[float], percent: float) -> float:
    """Linear-interpolation percentile of an already sorted list."""
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * percent / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction
