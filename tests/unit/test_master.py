"""Unit tests for the JobTracker (master) beyond full-simulation coverage."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.scheduler import SchedulerContext, make_scheduler
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import (
    MapAssignment,
    MapTaskCategory,
    ReduceAssignment,
    TaskKind,
)
from repro.mapreduce.master import JobTracker
from repro.mapreduce.metrics import TaskRecord
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster


@pytest.fixture
def tracker():
    sim = Simulator()
    topology = ClusterTopology.from_rack_sizes([3, 3], map_slots=2)
    hdfs = HdfsRaidCluster(
        topology, CodeParams(4, 2), num_native_blocks=12,
        placement="declustered", rng=RngStreams(4),
    )
    failed = frozenset({0})
    scheduler = make_scheduler(
        "LF",
        SchedulerContext(
            topology=topology,
            live_nodes=set(topology.node_ids()) - failed,
            expected_degraded_read_time=2.0,
            map_time_mean=20.0,
            reduce_slowstart=0.0,
        ),
    )
    return JobTracker(sim, topology, hdfs, scheduler, failed)


class TestJobLifecycle:
    def test_expect_jobs_validation(self, tracker):
        with pytest.raises(ValueError):
            tracker.expect_jobs(0)

    def test_heartbeat_without_jobs_is_empty(self, tracker):
        assert tracker.heartbeat(1, 2, 1) == ([], [])

    def test_submit_creates_state_and_metrics(self, tracker):
        tracker.expect_jobs(1)
        state = tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=1))
        assert state.M == 12
        assert tracker.metrics[0].submit_time == 0.0
        assert tracker.job_state(0) is state

    def test_job_state_unknown(self, tracker):
        with pytest.raises(KeyError):
            tracker.job_state(7)

    def test_truncated_view_for_small_job(self, tracker):
        tracker.expect_jobs(1)
        state = tracker.submit_job(0, JobConfig(num_blocks=5, num_reduce_tasks=0))
        assert state.M == 5

    def test_completion_flow(self, tracker):
        tracker.expect_jobs(1)
        state = tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=1))
        for index in range(12):
            record = TaskRecord(
                job_id=0, kind=TaskKind.MAP, category=MapTaskCategory.NODE_LOCAL,
                slave_id=1, launch_time=0.0, finish_time=10.0 + index,
            )
            tracker.on_map_complete(record, shuffle_bytes=0.0)
        assert state.maps_all_completed()
        assert not tracker.finished
        reduce_record = TaskRecord(
            job_id=0, kind=TaskKind.REDUCE, category=None,
            slave_id=1, launch_time=0.0, finish_time=50.0,
        )
        tracker.on_reduce_complete(reduce_record)
        assert tracker.finished
        assert tracker.all_done.fired
        assert tracker.metrics[0].finish_time == tracker.sim.now


class TestMidRunFailureBookkeeping:
    def test_fail_node_converts_pending(self, tracker):
        tracker.expect_jobs(1)
        state = tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
        victim = 1
        pending_before = state.pending_node_local_count(victim)
        degraded_before = state.M_d
        tracker.fail_node(victim)
        assert victim in tracker.failed_nodes
        assert state.pending_node_local_count(victim) == 0
        assert state.M_d == degraded_before + pending_before

    def test_fail_node_idempotent(self, tracker):
        tracker.expect_jobs(1)
        tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
        tracker.fail_node(1)
        snapshot = tracker.failed_nodes
        tracker.fail_node(1)
        assert tracker.failed_nodes == snapshot

    def test_fail_node_updates_live_view(self, tracker):
        tracker.expect_jobs(1)
        tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
        tracker.fail_node(2)
        assert 2 not in tracker.scheduler.context.live_nodes

    def test_killed_map_requeues(self, tracker):
        tracker.expect_jobs(1)
        state = tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
        picked = state.pop_local(1)
        assert picked is not None
        block, _ = picked
        launched = state.m
        assignment = MapAssignment(
            job_id=0, block=block, category=MapTaskCategory.NODE_LOCAL, slave_id=1
        )
        tracker.on_map_task_killed(assignment)
        assert state.m == launched - 1
        assert tracker.killed_tasks == 1

    def test_killed_map_on_dead_home_becomes_degraded(self, tracker):
        tracker.expect_jobs(1)
        state = tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
        picked = state.pop_local(1)
        assert picked is not None
        block, _ = picked
        home = tracker.hdfs.node_of(block)
        tracker.fail_node(home)  # converts the home's *pending* blocks
        degraded_after_failure = state.M_d
        assignment = MapAssignment(
            job_id=0, block=block, category=MapTaskCategory.NODE_LOCAL, slave_id=1
        )
        tracker.on_map_task_killed(assignment)
        # The killed running task's block is now lost too: one more degraded.
        assert state.M_d == degraded_after_failure + 1

    def test_killed_reduce_requeues_and_resets_shuffle(self, tracker):
        tracker.expect_jobs(1)
        state = tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=2))
        state.completed_map_tasks = 1  # pass slow-start
        index = state.pop_reduce()
        shuffle = tracker.shuffles[0]
        shuffle.deposit(1, 100.0)
        shuffle.take(index)  # the reducer drained it, then dies
        assignment = ReduceAssignment(job_id=0, reduce_index=index, slave_id=3)
        tracker.on_reduce_task_killed(assignment)
        assert state.pending_reduce_tasks[0] == index
        assert shuffle.take(index) != {}  # backlog restored

    def test_unrecoverable_mid_run_failure_marks_stripe_unavailable(self, tracker):
        # Losing a whole stripe no longer raises at failure time: detection is
        # deferred to read time (DataUnavailableError or parking), so the
        # master just tracks the failures and the stripe drops below k.
        tracker.expect_jobs(1)
        tracker.submit_job(0, JobConfig(num_blocks=12, num_reduce_tasks=0))
        stripe_nodes = [
            stored.node_id for stored in tracker.hdfs.block_map.stripe_blocks(0)
        ]
        for node in stripe_nodes:
            tracker.fail_node(node)
        assert not tracker.hdfs.block_map.is_decodable(0, tracker.failed_nodes)
        assert 0 in tracker.hdfs.block_map.unavailable_stripes(tracker.failed_nodes)
