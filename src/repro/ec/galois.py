"""Arithmetic over the finite field GF(2^8).

The field is realised as polynomials over GF(2) modulo the primitive
polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the same polynomial used by
most storage erasure-code implementations (e.g. Jerasure, ISA-L).  Field
elements are the integers ``0..255``.

Multiplication and division go through precomputed log/antilog tables, which
makes single-element operations O(1) and lets the vectorised helpers
(:func:`mul_bytes`, :func:`addmul_bytes`) run over numpy arrays for
block-sized payloads.
"""

from __future__ import annotations

import numpy as np

#: Primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLYNOMIAL = 0x11D

#: The multiplicative order of the field, i.e. ``2**8 - 1``.
FIELD_ORDER = 255

#: Number of elements in the field.
FIELD_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build the antilog (exponent) and log tables for GF(2^8).

    Returns a pair ``(exp, log)`` where ``exp[i] == g**i`` for the generator
    ``g = 2`` and ``log[exp[i]] == i``.  The ``exp`` table is doubled in
    length so that ``exp[log[a] + log[b]]`` never needs an explicit modulo.
    """
    exp = np.zeros(2 * FIELD_ORDER, dtype=np.uint8)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    value = 1
    for power in range(FIELD_ORDER):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLYNOMIAL
    exp[FIELD_ORDER:] = exp[:FIELD_ORDER]
    return exp, log


_EXP, _LOG = _build_tables()

#: Full 256x256 multiplication table, used by the vectorised helpers.
_MUL_TABLE = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
_MUL_TABLE[1:, 1:] = _EXP[_LOG[1:, None] + _LOG[None, 1:]]

#: Elementwise multiplicative inverses; ``_INV_TABLE[0]`` is 0 and must be
#: guarded by callers (0 has no inverse).
_INV_TABLE = np.zeros(FIELD_SIZE, dtype=np.uint8)
_INV_TABLE[1:] = _EXP[FIELD_ORDER - _LOG[1:]]


def gf_add(a: int, b: int) -> int:
    """Return ``a + b`` in GF(2^8); addition is XOR."""
    return a ^ b


def gf_sub(a: int, b: int) -> int:
    """Return ``a - b`` in GF(2^8); identical to addition."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Return the product of two field elements."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_div(a: int, b: int) -> int:
    """Return ``a / b`` in GF(2^8).

    Raises :class:`ZeroDivisionError` when ``b`` is zero.
    """
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] - _LOG[b]) % FIELD_ORDER])


def gf_inv(a: int) -> int:
    """Return the multiplicative inverse of ``a``.

    Raises :class:`ZeroDivisionError` for ``a == 0``, which has no inverse.
    """
    if a == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(2^8)")
    return int(_EXP[FIELD_ORDER - _LOG[a]])


def gf_pow(a: int, exponent: int) -> int:
    """Return ``a`` raised to an arbitrary integer power."""
    if a == 0:
        if exponent == 0:
            return 1
        if exponent < 0:
            raise ZeroDivisionError("0 cannot be raised to a negative power")
        return 0
    reduced = (_LOG[a] * exponent) % FIELD_ORDER
    return int(_EXP[reduced])


def mul_bytes(coefficient: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``coefficient``; returns a new array."""
    if coefficient == 0:
        return np.zeros_like(data)
    if coefficient == 1:
        return data.copy()
    return _MUL_TABLE[coefficient][data]


#: Rows a packed pair-table can carry: four ``uint16`` product lanes fit in
#: the widest (``uint64``) table entry.
PACK_ROWS = 4

#: Narrowest table dtype that fits ``span`` packed rows (two product bytes
#: per row: one per input byte of the pair index).
_PACK_DTYPES = {1: np.uint16, 2: np.uint32, 3: np.uint64, 4: np.uint64}


def packed_pair_table(coefficients: np.ndarray) -> np.ndarray:
    """Build the pair-indexed product table for up to :data:`PACK_ROWS` rows.

    The returned table ``T`` has 65536 entries of the narrowest unsigned
    dtype that fits the rows.  Indexing it with the little-endian ``uint16``
    view of a byte block gives, in one gather, the products of *both* bytes
    of the pair by *every* coefficient: ``uint16`` lane ``r`` of ``T[pair]``
    is ``coefficients[r] * low_byte | (coefficients[r] * high_byte) << 8``
    — i.e. lane ``r`` is already the output byte pair of row ``r``.  One
    gather therefore performs up to ``2 * PACK_ROWS`` scalar multiplications
    and the result de-interleaves with a single ``uint16`` transpose, which
    is what makes the batched matvec kernel fast: gather cost is per
    *element*, not per byte of output.
    """
    span = len(coefficients)
    if not 0 < span <= PACK_ROWS:
        raise ValueError(f"can pack 1..{PACK_ROWS} rows, got {span}")
    dtype = _PACK_DTYPES[span]
    table = np.zeros(FIELD_SIZE * FIELD_SIZE, dtype=dtype)
    for row, coefficient in enumerate(coefficients):
        products = _MUL_TABLE[coefficient]
        # Axis 0 is the high byte of the little-endian uint16 index, axis 1
        # the low byte, so ravel order matches ``uint16 = low | high << 8``.
        lane = products[None, :].astype(np.uint16) | (
            products[:, None].astype(np.uint16) << 8
        )
        table |= lane.astype(dtype).ravel() << dtype(16 * row)
    return table


def addmul_bytes(accumulator: np.ndarray, coefficient: int, data: np.ndarray) -> None:
    """In-place ``accumulator ^= coefficient * data`` over byte arrays.

    This is the inner loop of Reed-Solomon encoding and decoding; keeping it
    as a single fused numpy expression is what makes block-sized coding
    practical in pure Python.
    """
    if coefficient == 0:
        return
    if coefficient == 1:
        np.bitwise_xor(accumulator, data, out=accumulator)
        return
    np.bitwise_xor(accumulator, _MUL_TABLE[coefficient][data], out=accumulator)
