"""Property tests of the sanitizer over fuzzer-generated scenarios.

``scenario_strategy()`` is the same generator ``repro fuzz`` uses, driven
here by hypothesis: any scenario it can produce must build a valid
:class:`SimulationConfig`, survive serialization round-tripping, and run
to a clean outcome under the invariant monitor -- both under the paper's
scheduler triple and under the scenario's own *drawn* policy, which the
generator samples from the full registry (so zoo policies are covered the
moment they register).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.check import SCHEDULERS, run_checked_trial, scenario_strategy
from repro.mapreduce.serialization import config_from_dict, config_to_dict

# Whole-trial examples are expensive; a handful per run is plenty -- the CI
# fuzz job covers volume, hypothesis covers shrinking and edge-case bias.
_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(config=scenario_strategy())
@_SETTINGS
def test_generated_scenarios_round_trip_serialization(config):
    assert config_from_dict(config_to_dict(config)) == config


@given(config=scenario_strategy())
@_SETTINGS
def test_generated_scenarios_run_clean_under_monitor(config):
    for scheduler in sorted({*SCHEDULERS, config.scheduler}):
        report = run_checked_trial(config, scheduler)
        assert not report.failed, (
            f"{scheduler} on generated scenario: {report.status}\n{report.message}"
        )
