"""Policy tournament: every registered scheduler over a shared scenario set.

The tournament is the research-platform payoff of the policy framework
(ROADMAP item 1): take a scenario set -- figure-7/figure-8 style
configurations plus, optionally, the fuzzer's corpus -- and run *every*
policy over every scenario and seed through the crash-safe campaign engine
(journaled, cached, resumable).  Per-policy makespan and degraded-read
:class:`~repro.obs.digest.LatencyDigest` aggregates feed a ranked
leaderboard emitted as a ``repro.tournament-report/v1`` JSON document and
an HTML dashboard (``repro obs report``).

Determinism contract: the trial grid is in canonical order
(scenario-major, then seed, then policy) and digests merge in grid order,
so the ranked report is bit-identical across reruns and across
serial-vs-parallel execution -- the same property the campaign layer
guarantees, inherited wholesale.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace

from repro.core.scheduler import registered_schedulers
from repro.experiments.cache import ResultCache
from repro.experiments.campaign import (
    CampaignEngine,
    CampaignOutcome,
    CampaignPolicy,
    sweep_trial,
)
from repro.mapreduce.config import SimulationConfig
from repro.mapreduce.serialization import config_to_dict
from repro.obs.digest import LatencyDigest

#: Schema tag of the ranked tournament report.
TOURNAMENT_SCHEMA = "repro.tournament-report/v1"


def default_scenarios(
    base: SimulationConfig | None = None,
) -> tuple[tuple[str, SimulationConfig], ...]:
    """The built-in scenario set, derived from the paper's fig-7/fig-8 axes.

    Every scenario is a variation of ``base`` (the paper's default cluster
    when omitted): the default single-node-failure run, the halved block
    size and rack-failure points of Figure 7, the half-speed-nodes
    heterogeneous cluster of Figure 8, and the ten-job open stream of
    Figure 7(f).  Names are stable identifiers used in reports and
    journals.
    """
    from repro.experiments.fig7_simulation import multi_job_config

    if base is None:
        base = SimulationConfig()
    half_block = replace(base, block_size=base.block_size / 2)
    heterogeneous = replace(
        base,
        speed_factors=tuple(
            1.0 if index % 2 == 0 else 0.5 for index in range(base.num_nodes)
        ),
    )
    from repro.cluster.failures import FailurePattern

    return (
        ("fig7-default", base),
        ("fig7-half-block", half_block),
        ("fig7-rack-failure", replace(base, failure=FailurePattern.RACK)),
        ("fig8-heterogeneous", heterogeneous),
        ("fig7f-multi-job", multi_job_config(base, 0)),
    )


def corpus_scenarios(corpus_dir: str) -> tuple[tuple[str, SimulationConfig], ...]:
    """Fuzzer-corpus scenarios: one per repro JSON, sorted by file name.

    The corpus entry's own scheduler is ignored -- the tournament runs
    *every* policy over each scenario; its embedded seed is likewise
    overridden by the tournament's seed axis.
    """
    from repro.check.fuzz import load_repro

    scenarios = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        config, _scheduler = load_repro(os.path.join(corpus_dir, name))
        scenarios.append((f"corpus-{name[:-len('.json')]}", config))
    return tuple(scenarios)


@dataclass(frozen=True)
class TournamentSpec:
    """A declarative tournament: scenarios x seeds x policies."""

    scenarios: tuple[tuple[str, SimulationConfig], ...] = field(
        default_factory=default_scenarios
    )
    policies: tuple[str, ...] = ()
    seeds: tuple[int, ...] = tuple(range(3))

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("tournament needs at least one scenario")
        if not self.seeds:
            raise ValueError("tournament needs at least one seed")
        if len({name for name, _ in self.scenarios}) != len(self.scenarios):
            raise ValueError("scenario names must be unique")
        if not self.policies:
            # Freeze the registry contents at spec-construction time so the
            # spec (and hence the report) is self-describing.
            object.__setattr__(self, "policies", tuple(registered_schedulers()))
        for name in self.policies:
            if name not in registered_schedulers():
                raise ValueError(
                    f"unknown policy {name!r}; choose from {registered_schedulers()}"
                )

    def grid(self) -> tuple[list[SimulationConfig], list[tuple[str, int, str]]]:
        """The trial grid and its (scenario, seed, policy) keys, in the
        canonical scenario-major order that makes reports bit-identical
        across serial, parallel, and resumed runs."""
        configs: list[SimulationConfig] = []
        keys: list[tuple[str, int, str]] = []
        for scenario_name, scenario in self.scenarios:
            for seed in self.seeds:
                for policy in self.policies:
                    configs.append(scenario.with_scheduler(policy).with_seed(seed))
                    keys.append((scenario_name, seed, policy))
        return configs, keys

    def to_dict(self) -> dict:
        return {
            "scenarios": [
                {"name": name, "config": config_to_dict(config)}
                for name, config in self.scenarios
            ],
            "policies": list(self.policies),
            "seeds": list(self.seeds),
        }


def run_tournament(
    spec: TournamentSpec,
    policy: CampaignPolicy | None = None,
    journal_path: str | None = None,
    cache: ResultCache | None = None,
    progress=None,
) -> tuple[dict, CampaignOutcome]:
    """Run (or resume) a tournament; returns (report, outcome).

    The report (schema ``repro.tournament-report/v1``) contains only
    quantities that are a pure function of the spec and the terminal trial
    outcomes, so interrupted-and-resumed and serial-vs-parallel runs emit
    byte-identical JSON.
    """
    if policy is None:
        policy = CampaignPolicy(on_error="collect")
    configs, keys = spec.grid()
    engine = CampaignEngine(
        runner=sweep_trial,
        policy=policy,
        journal_path=journal_path,
        cache=cache,
        progress=progress,
    )
    outcome = engine.run(configs)

    rows: dict[str, dict] = {}
    for name in spec.policies:
        merged = {
            "degraded_read": LatencyDigest(),
            "sojourn": LatencyDigest(),
            "makespan": LatencyDigest(),
        }
        trials = done = refused = 0
        jobs = {"submitted": 0, "completed": 0, "failed": 0}
        scenarios_done: dict[str, int] = {
            scenario_name: 0 for scenario_name, _ in spec.scenarios
        }
        # Merge in grid order -- the canonical order shared with the
        # campaign layer that keeps every execution mode bit-identical.
        for (scenario_name, _seed, key_policy), payload in zip(keys, outcome.results):
            if key_policy != name:
                continue
            trials += 1
            if payload is None:
                continue
            done += 1
            if payload["refused"]:
                refused += 1
                continue
            scenarios_done[scenario_name] += 1
            for counter in jobs:
                jobs[counter] += payload["jobs"][counter]
            for digest_name, digest in merged.items():
                digest.merge(LatencyDigest.from_dict(payload["digests"][digest_name]))
        rows[name] = {
            "trials": trials,
            "done": done,
            "refused": refused,
            "jobs": jobs,
            "scenarios": scenarios_done,
            "makespan_mean_s": merged["makespan"].mean,
            "makespan_seconds": merged["makespan"].percentiles(),
            "degraded_read_seconds": merged["degraded_read"].percentiles(),
            "telemetry": {
                digest_name: digest.to_dict()
                for digest_name, digest in merged.items()
            },
        }

    report = {
        "schema": TOURNAMENT_SCHEMA,
        "tournament": spec.to_dict(),
        "accounting": {
            "submitted": outcome.counters.submitted,
            "done": outcome.counters.done,
            "failed": outcome.counters.failed,
            "quarantined": outcome.counters.quarantined,
        },
        "failures": [failure.to_dict() for failure in outcome.failures],
        "policies": rows,
        "leaderboard": _rank(rows),
    }
    return report, outcome


def _rank(rows: dict[str, dict]) -> list[dict]:
    """Ranked leaderboard entries: lowest mean makespan wins.

    Ties break on degraded-read p99, then name; policies with no completed
    work rank last (alphabetically among themselves).  Composite jobs
    scores are carried along for the report reader.
    """
    import math

    def sort_key(item: tuple[str, dict]):
        name, row = item
        mean = row["makespan_mean_s"]
        p99 = row["degraded_read_seconds"]["p99"]
        return (
            mean if mean is not None else math.inf,
            p99 if p99 is not None else math.inf,
            name,
        )

    entries = []
    for rank, (name, row) in enumerate(sorted(rows.items(), key=sort_key), start=1):
        entries.append(
            {
                "rank": rank,
                "policy": name,
                "makespan_mean_s": row["makespan_mean_s"],
                "makespan_p50_s": row["makespan_seconds"]["p50"],
                "degraded_p99_s": row["degraded_read_seconds"]["p99"],
                "jobs_completed": row["jobs"]["completed"],
                "trials_done": row["done"],
                "refused": row["refused"],
            }
        )
    return entries


def report_to_json(report: dict) -> str:
    """Canonical JSON for a tournament report (bit-identical across runs)."""
    return json.dumps(report, sort_keys=True, indent=2, allow_nan=False) + "\n"


def render_leaderboard(report: dict) -> str:
    """Human-readable ranked leaderboard (the CLI's default output)."""
    accounting = report["accounting"]
    scenario_count = len(report["tournament"]["scenarios"])
    seed_count = len(report["tournament"]["seeds"])
    lines = [
        "== tournament ==",
        f"{len(report['policies'])} policies x {scenario_count} scenario(s)"
        f" x {seed_count} seed(s):"
        f" {accounting['submitted']} submitted, {accounting['done']} done,"
        f" {accounting['failed']} failed, {accounting['quarantined']} quarantined",
        f"{'rank':>4}  {'policy':<14} {'makespan mean':>14} {'p50':>9}"
        f" {'degraded p99':>13} {'jobs':>9}",
    ]

    def _fmt(value, pattern="{:.1f}s"):
        return pattern.format(value) if value is not None else "-"

    for entry in report["leaderboard"]:
        lines.append(
            f"{entry['rank']:>4}  {entry['policy']:<14}"
            f" {_fmt(entry['makespan_mean_s']):>14}"
            f" {_fmt(entry['makespan_p50_s']):>9}"
            f" {_fmt(entry['degraded_p99_s'], '{:.2f}s'):>13}"
            f" {entry['jobs_completed']:>9,}"
        )
    for failure in report["failures"]:
        lines.append(
            f"  FAILED trial {failure['index']} [{failure['kind']}] "
            f"after {failure['attempts']} attempt(s): {failure['message']}"
        )
    return "\n".join(lines)
