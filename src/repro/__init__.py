"""Degraded-first scheduling for MapReduce in erasure-coded storage clusters.

A full reproduction of Li, Lee & Hu (DSN 2014): the LF / BDF / EDF
schedulers (:mod:`repro.core`), the erasure-coding and HDFS-RAID storage
substrates (:mod:`repro.ec`, :mod:`repro.storage`), a discrete-event
MapReduce simulator (:mod:`repro.sim`, :mod:`repro.mapreduce`), the
closed-form analysis (:mod:`repro.analysis`), a functional threaded testbed
(:mod:`repro.testbed`), and per-figure experiment harnesses
(:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import SimulationConfig, run_simulation
>>> result = run_simulation(SimulationConfig(scheduler="EDF", seed=1))
>>> result.job(0).runtime  # doctest: +SKIP
270.9
"""

from repro.cluster.failures import FailurePattern
from repro.ec.codec import CodeParams
from repro.faults import (
    CorruptEvent,
    DataUnavailableError,
    FailEvent,
    FailureSchedule,
    JobFailedError,
    RecoverEvent,
    SlowdownEvent,
)
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.storage.repair_driver import RepairConfig

__version__ = "1.0.0"

__all__ = [
    "CodeParams",
    "CorruptEvent",
    "DataUnavailableError",
    "FailEvent",
    "FailurePattern",
    "FailureSchedule",
    "JobConfig",
    "JobFailedError",
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "RecoverEvent",
    "RepairConfig",
    "SimulationConfig",
    "SlowdownEvent",
    "run_simulation",
    "__version__",
]

#: Names resolved on first touch to keep ``import repro`` light.
_LAZY = {
    "run_simulation": ("repro.mapreduce.simulation", "run_simulation"),
    "InvariantMonitor": ("repro.check", "InvariantMonitor"),
    "InvariantViolation": ("repro.check", "InvariantViolation"),
    "InvariantViolationError": ("repro.check", "InvariantViolationError"),
}


def __getattr__(name: str):
    """Lazily expose the simulation entry point and the sanitizer types."""
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
