"""The three I/O-heavy MapReduce jobs of the paper's testbed.

Each job supplies a ``map_fn`` (block bytes -> key/value pairs) and a
``reduce_fn`` (key + values -> output records), mirroring the Hadoop
programs the paper runs:

* **WordCount** -- word -> occurrence count;
* **Grep** -- lines containing a given word;
* **LineCount** -- line -> occurrence count (like WordCount but keyed by
  whole lines, so it shuffles more data than Grep).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from collections.abc import Iterable


class MapReduceJob(ABC):
    """Interface every testbed job implements."""

    #: Short name used in reports.
    name = "abstract"

    @abstractmethod
    def map_fn(self, payload: bytes) -> Iterable[tuple[str, int | str]]:
        """Turn one input block into intermediate key/value pairs."""

    @abstractmethod
    def reduce_fn(self, key: str, values: list) -> list[tuple[str, int | str]]:
        """Merge all values of one key into output records."""

    def combine(self, pairs: Iterable[tuple[str, int | str]]) -> list[tuple[str, int | str]]:
        """Optional map-side combiner; default is a no-op passthrough."""
        return list(pairs)


class WordCountJob(MapReduceJob):
    """Count the occurrences of each word."""

    name = "WordCount"

    def map_fn(self, payload: bytes) -> Iterable[tuple[str, int]]:
        counts = Counter(payload.decode("ascii", errors="replace").split())
        return counts.items()

    def reduce_fn(self, key: str, values: list) -> list[tuple[str, int]]:
        return [(key, sum(values))]

    def combine(self, pairs: Iterable[tuple[str, int]]) -> list[tuple[str, int]]:
        combined: Counter = Counter()
        for word, count in pairs:
            combined[word] += count
        return list(combined.items())


class GrepJob(MapReduceJob):
    """Emit the lines containing a given word."""

    name = "Grep"

    def __init__(self, word: str = "the") -> None:
        if not word:
            raise ValueError("grep needs a non-empty word")
        self.word = word

    def map_fn(self, payload: bytes) -> Iterable[tuple[str, int]]:
        needle = self.word
        emitted = []
        for line in payload.decode("ascii", errors="replace").splitlines():
            if needle in line.split():
                emitted.append((line, 1))
        return emitted

    def reduce_fn(self, key: str, values: list) -> list[tuple[str, int]]:
        return [(key, sum(values))]


class LineCountJob(MapReduceJob):
    """Count the occurrences of each whole line."""

    name = "LineCount"

    def map_fn(self, payload: bytes) -> Iterable[tuple[str, int]]:
        counts = Counter(payload.decode("ascii", errors="replace").splitlines())
        return counts.items()

    def reduce_fn(self, key: str, values: list) -> list[tuple[str, int]]:
        return [(key, sum(values))]

    def combine(self, pairs: Iterable[tuple[str, int]]) -> list[tuple[str, int]]:
        combined: Counter = Counter()
        for line, count in pairs:
            combined[line] += count
        return list(combined.items())
