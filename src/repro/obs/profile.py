"""Wall-clock profiling hooks for the simulator itself.

The ROADMAP's north star (run as fast as the hardware allows) needs a
baseline before any hot path can be optimised.  The :class:`Profiler`
measures *host* time -- ``time.perf_counter`` spans around the phases of
``run_simulation`` -- and pairs it with the engine's always-on dispatch
counter to report events processed, events per wall-second, and
per-subsystem time.  It observes the host clock only, never the simulation
clock, so profiling cannot perturb results.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class Profiler:
    """Named wall-clock spans plus engine throughput figures."""

    def __init__(self) -> None:
        self.spans: dict[str, float] = {}
        #: Engine callbacks dispatched (copied from ``Simulator.dispatched``).
        self.events_dispatched = 0
        #: Observability events emitted (copied from ``EventBus.emitted``).
        self.events_emitted = 0

    @contextmanager
    def span(self, name: str):
        """Accumulate the wall-clock duration of the enclosed block."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.spans[name] = self.spans.get(name, 0.0) + (
                time.perf_counter() - started
            )

    @property
    def events_per_second(self) -> float:
        """Engine callbacks dispatched per wall-second of the ``run`` span."""
        run_seconds = self.spans.get("run", 0.0)
        if run_seconds <= 0.0:
            return 0.0
        return self.events_dispatched / run_seconds

    def report(self) -> dict:
        """JSON-friendly summary of everything measured."""
        return {
            "events_dispatched": self.events_dispatched,
            "events_emitted": self.events_emitted,
            "events_per_second": self.events_per_second,
            "spans_seconds": dict(sorted(self.spans.items())),
        }

    def render(self) -> str:
        """Plain-text summary, one line per figure."""
        lines = ["profile:"]
        for name, seconds in sorted(self.spans.items()):
            lines.append(f"  {name:<12} {seconds * 1000.0:10.2f} ms")
        lines.append(f"  engine callbacks dispatched: {self.events_dispatched}")
        lines.append(f"  observability events emitted: {self.events_emitted}")
        lines.append(f"  callbacks per wall-second: {self.events_per_second:,.0f}")
        return "\n".join(lines)
