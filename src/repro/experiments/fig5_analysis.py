"""Figure 5: numerical results of the analytical model.

Three sweeps over the Section IV-B formulas, each reporting the normalized
runtimes of locality-first and degraded-first scheduling:

* 5(a) -- erasure-coding scheme in {(8,6), (12,9), (16,12), (20,15)};
* 5(b) -- number of blocks F in {720, 1440, 2160, 2880};
* 5(c) -- download bandwidth W in {100, 250, 500, 1000} Mbps.

Paper shapes to reproduce: DF never exceeds LF; LF grows with k while DF is
flat whenever degraded reads fit in one round; reductions span ~15-43%.
"""

from __future__ import annotations

from repro.analysis.model import AnalysisParams
from repro.analysis.sweep import SweepPoint, sweep_bandwidth, sweep_blocks, sweep_code


def _format(points: list[SweepPoint], title: str) -> str:
    lines = [title, "=" * len(title)]
    lines.append(f"{'setting':>12}  {'LF':>8}  {'DF':>8}  {'reduction':>10}")
    for point in points:
        lines.append(
            f"{point.label:>12}  {point.normalized_lf:8.3f}  "
            f"{point.normalized_df:8.3f}  {point.reduction:9.1%}"
        )
    return "\n".join(lines)


def run_fig5a(base: AnalysisParams | None = None) -> list[SweepPoint]:
    """Figure 5(a): normalized runtime vs coding scheme."""
    return sweep_code(base)


def run_fig5b(base: AnalysisParams | None = None) -> list[SweepPoint]:
    """Figure 5(b): normalized runtime vs number of blocks."""
    return sweep_blocks(base)


def run_fig5c(base: AnalysisParams | None = None) -> list[SweepPoint]:
    """Figure 5(c): normalized runtime vs download bandwidth."""
    return sweep_bandwidth(base)


def main() -> str:
    """Run all three sweeps and return the printable report."""
    sections = [
        _format(run_fig5a(), "Figure 5(a): runtime vs erasure coding scheme"),
        _format(run_fig5b(), "Figure 5(b): runtime vs number of blocks"),
        _format(run_fig5c(), "Figure 5(c): runtime vs download bandwidth"),
    ]
    return "\n\n".join(sections)


if __name__ == "__main__":
    print(main())
