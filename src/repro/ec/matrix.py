"""Dense matrices over GF(2^8), with batched block kernels.

Matrices are represented as 2-D numpy ``uint8`` arrays.  Only the operations
that Reed-Solomon coding needs are provided: multiplication, identity,
Gauss-Jordan inversion, sub-matrix selection, and the Vandermonde / Cauchy
generator constructions.

The block-application primitive (:func:`matvec_blocks` /
:class:`BatchedMatvec`) is the erasure-coding hot path: every encode,
decode and degraded-read reduces to it.  It is implemented as a packed
pair-indexed table kernel (see :func:`repro.ec.galois.packed_pair_table`):
the block is viewed as ``uint16`` pairs and one 65536-entry gather yields
the products of both bytes by up to four matrix rows at once, so gather
work per output row drops by ~8x compared with one 256-entry gather per
``(row, column)`` coefficient.  The pre-kernel implementations are retained
verbatim as ``*_reference`` oracles (the PR-4
``_recompute_rates_reference`` idiom); the Hypothesis suite
``tests/property/test_ec_kernel_equivalence.py`` holds the kernels
byte-identical to them.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ec import galois
from repro.ec.galois import _MUL_TABLE, PACK_ROWS, packed_pair_table


class SingularMatrixError(ValueError):
    """Raised when a matrix that must be invertible turns out singular."""


#: Below this block length the packed kernel's table build is not worth it
#: and the per-column gather path is used instead.
PACKED_MIN_BLOCK = 4096


def identity(size: int) -> np.ndarray:
    """Return the ``size`` x ``size`` identity matrix over GF(2^8)."""
    return np.eye(size, dtype=np.uint8)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two matrices over GF(2^8).

    One 3-D table gather produces every pairwise product and a single
    ``bitwise_xor.reduce`` contracts the shared axis; no Python-level loop.
    """
    rows_a, cols_a = a.shape
    rows_b, cols_b = b.shape
    if cols_a != rows_b:
        raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
    if cols_a == 0:
        return np.zeros((rows_a, cols_b), dtype=np.uint8)
    products = _MUL_TABLE[a[:, :, None], b[None, :, :]]
    return np.bitwise_xor.reduce(products, axis=1)


def matmul_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pre-kernel row-by-row multiplication, kept as the equivalence oracle."""
    rows_a, cols_a = a.shape
    rows_b, cols_b = b.shape
    if cols_a != rows_b:
        raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
    result = np.zeros((rows_a, cols_b), dtype=np.uint8)
    for i in range(rows_a):
        row = result[i]
        for j in range(cols_a):
            galois.addmul_bytes(row, int(a[i, j]), b[j])
    return result


class BatchedMatvec:
    """A matrix compiled for repeated application to byte blocks.

    Compilation splits rows into *unit* rows (exactly one coefficient equal
    to 1 — the systematic passthrough rows every decode matrix of a
    systematic code contains), *zero* rows, and *dense* rows.  Unit rows
    are served by a copy, zero rows by ``zeros``; dense rows are grouped
    into bands of up to :data:`~repro.ec.galois.PACK_ROWS` and each band
    gets one packed pair table per column, built lazily on the first
    large-block apply.  A cached decode plan therefore pays the table cost
    on its first stripe and pure gather cost on every stripe after that.
    """

    __slots__ = ("matrix", "_row_kinds", "_dense_rows", "_bands", "_tables")

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
        rows, cols = self.matrix.shape
        # Per row: ("unit", source column) | ("zero", None) | ("dense", band slot).
        self._row_kinds: list[tuple[str, int | None]] = []
        dense: list[int] = []
        for i in range(rows):
            row = self.matrix[i]
            nonzero = np.nonzero(row)[0]
            if nonzero.size == 0:
                self._row_kinds.append(("zero", None))
            elif nonzero.size == 1 and row[nonzero[0]] == 1:
                self._row_kinds.append(("unit", int(nonzero[0])))
            else:
                self._row_kinds.append(("dense", len(dense)))
                dense.append(i)
        self._dense_rows = self.matrix[dense] if dense else np.zeros((0, cols), np.uint8)
        self._bands = [
            slice(base, min(base + PACK_ROWS, len(dense)))
            for base in range(0, len(dense), PACK_ROWS)
        ]
        self._tables: list[list[np.ndarray]] | None = None

    def _build_tables(self) -> list[list[np.ndarray]]:
        cols = self.matrix.shape[1]
        tables = [
            [packed_pair_table(self._dense_rows[band, j]) for j in range(cols)]
            for band in self._bands
        ]
        self._tables = tables
        return tables

    def apply(self, blocks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Apply the matrix to equal-length 1-D uint8 blocks, one per column.

        Returns one fresh array per matrix row (safe to mutate).
        """
        rows, cols = self.matrix.shape
        if len(blocks) != cols:
            raise ValueError(f"matrix has {cols} columns but got {len(blocks)} blocks")
        length = len(blocks[0]) if cols else 0
        for block in blocks:
            if len(block) != length:
                raise ValueError("all blocks must have equal length")
        if rows == 0:
            return []
        if cols == 0 or length == 0:
            return [np.zeros(length, dtype=np.uint8) for _ in range(rows)]
        if self._bands and length >= PACKED_MIN_BLOCK:
            dense = self._apply_packed(blocks, length)
        elif self._bands:
            dense = self._apply_small(blocks, length)
        else:
            dense = []
        out: list[np.ndarray] = []
        for kind, slot in self._row_kinds:
            if kind == "unit":
                out.append(np.array(blocks[slot], dtype=np.uint8))
            elif kind == "zero":
                out.append(np.zeros(length, dtype=np.uint8))
            else:
                out.append(dense[slot])
        return out

    def _apply_packed(self, blocks: Sequence[np.ndarray], length: int) -> list[np.ndarray]:
        """Packed pair-gather path: one table gather per (band, column)."""
        tables = self._tables or self._build_tables()
        pairs = []
        for block in blocks:
            if length % 2 or not block.flags.c_contiguous:
                padded = np.zeros(length + length % 2, dtype=np.uint8)
                padded[:length] = block
                block = padded
            pairs.append(block.view(np.uint16))
        cols = self.matrix.shape[1]
        take = np.take
        dense: list[np.ndarray] = []
        for band, band_tables in zip(self._bands, tables):
            accumulator = take(band_tables[0], pairs[0])
            for j in range(1, cols):
                accumulator ^= take(band_tables[j], pairs[j])
            span = band.stop - band.start
            # uint16 lane r of the accumulator is row r's output byte pair,
            # so de-interleaving is one uint16 transpose per band (and a
            # single-row band is already laid out correctly).
            if accumulator.itemsize == 2:
                dense.append(accumulator.view(np.uint8)[:length])
                continue
            lane_count = accumulator.itemsize // 2
            rows16 = np.ascontiguousarray(
                accumulator.view(np.uint16).reshape(-1, lane_count).T[:span]
            )
            row_bytes = rows16.view(np.uint8).reshape(span, -1)
            dense.extend(row_bytes[r, :length] for r in range(span))
        return dense

    def _apply_small(self, blocks: Sequence[np.ndarray], length: int) -> list[np.ndarray]:
        """Per-column gather path for payloads too small to amortise tables."""
        out = np.zeros((self._dense_rows.shape[0], length), dtype=np.uint8)
        for j in range(self.matrix.shape[1]):
            out ^= _MUL_TABLE[self._dense_rows[:, j][:, None], blocks[j][None, :]]
        return list(out)


def matvec_blocks(matrix: np.ndarray, blocks: list[np.ndarray]) -> list[np.ndarray]:
    """Apply ``matrix`` to a column vector of byte blocks.

    ``blocks`` holds one byte array per matrix column; the result holds one
    byte array per matrix row.  This is the generic encode/decode primitive:
    each output block is a GF-linear combination of the input blocks.
    """
    rows, cols = matrix.shape
    if cols != len(blocks):
        raise ValueError(f"matrix has {cols} columns but got {len(blocks)} blocks")
    if not blocks:
        return []
    return BatchedMatvec(matrix).apply(
        [np.ascontiguousarray(block, dtype=np.uint8) for block in blocks]
    )


def matvec_blocks_reference(
    matrix: np.ndarray, blocks: list[np.ndarray]
) -> list[np.ndarray]:
    """Pre-kernel per-(row, column) accumulation, kept as the oracle."""
    rows, cols = matrix.shape
    if cols != len(blocks):
        raise ValueError(f"matrix has {cols} columns but got {len(blocks)} blocks")
    if not blocks:
        return []
    length = len(blocks[0])
    for block in blocks:
        if len(block) != length:
            raise ValueError("all blocks must have equal length")
    outputs: list[np.ndarray] = []
    for i in range(rows):
        accumulator = np.zeros(length, dtype=np.uint8)
        for j in range(cols):
            galois.addmul_bytes(accumulator, int(matrix[i, j]), blocks[j])
        outputs.append(accumulator)
    return outputs


def invert(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination.

    Pivot selection matches :func:`invert_reference` exactly (first nonzero
    entry at or below the diagonal), so singular inputs raise
    :class:`SingularMatrixError` naming the same column; per-column row
    elimination is a whole-matrix table gather instead of nested loops.
    """
    size, cols = matrix.shape
    if size != cols:
        raise ValueError(f"cannot invert non-square matrix of shape {matrix.shape}")
    work = np.ascontiguousarray(matrix, dtype=np.uint8).copy()
    inverse = np.eye(size, dtype=np.uint8)
    for col in range(size):
        nonzero = np.nonzero(work[col:, col])[0]
        if nonzero.size == 0:
            raise SingularMatrixError(f"matrix is singular at column {col}")
        pivot_row = col + int(nonzero[0])
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        pivot_scale = _MUL_TABLE[galois.gf_inv(int(work[col, col]))]
        work[col] = pivot_scale[work[col]]
        inverse[col] = pivot_scale[inverse[col]]
        factors = work[:, col].copy()
        factors[col] = 0
        # Every remaining row eliminates in one shot; rows whose factor is
        # zero (including the pivot row itself) xor with zeros.
        work ^= _MUL_TABLE[factors[:, None], work[col][None, :]]
        inverse ^= _MUL_TABLE[factors[:, None], inverse[col][None, :]]
    return inverse


def invert_reference(matrix: np.ndarray) -> np.ndarray:
    """Pre-kernel scalar Gauss-Jordan elimination, kept as the oracle."""
    size, cols = matrix.shape
    if size != cols:
        raise ValueError(f"cannot invert non-square matrix of shape {matrix.shape}")
    work = matrix.astype(np.int32).copy()
    inverse = np.eye(size, dtype=np.int32)
    for col in range(size):
        pivot_row = -1
        for row in range(col, size):
            if work[row, col] != 0:
                pivot_row = row
                break
        if pivot_row < 0:
            raise SingularMatrixError(f"matrix is singular at column {col}")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        pivot_inv = galois.gf_inv(int(work[col, col]))
        for j in range(size):
            work[col, j] = galois.gf_mul(int(work[col, j]), pivot_inv)
            inverse[col, j] = galois.gf_mul(int(inverse[col, j]), pivot_inv)
        for row in range(size):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            for j in range(size):
                work[row, j] ^= galois.gf_mul(factor, int(work[col, j]))
                inverse[row, j] ^= galois.gf_mul(factor, int(inverse[col, j]))
    return inverse.astype(np.uint8)


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Return the ``rows`` x ``cols`` Vandermonde matrix ``V[i, j] = i**j``."""
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            matrix[i, j] = galois.gf_pow(i, j)
    return matrix


def cauchy(x_values: list[int], y_values: list[int]) -> np.ndarray:
    """Return the Cauchy matrix ``C[i, j] = 1 / (x_i + y_j)`` over GF(2^8).

    The element sets must be disjoint so that no denominator is zero.
    """
    overlap = set(x_values) & set(y_values)
    if overlap:
        raise ValueError(f"x and y values must be disjoint; both contain {overlap}")
    x = np.asarray(x_values, dtype=np.uint8)
    y = np.asarray(y_values, dtype=np.uint8)
    if x.size == 0 or y.size == 0:
        return np.zeros((x.size, y.size), dtype=np.uint8)
    return galois._INV_TABLE[x[:, None] ^ y[None, :]]


def systematic_encoding_matrix(n: int, k: int) -> np.ndarray:
    """Build the ``n`` x ``k`` systematic generator matrix for RS(n, k).

    The construction starts from an ``n`` x ``k`` Vandermonde matrix and
    column-reduces it so the top ``k`` x ``k`` sub-matrix is the identity.
    Any ``k`` rows of the result remain linearly independent (the defining
    MDS property), which is what guarantees decode-from-any-k.
    """
    if not 0 < k <= n:
        raise ValueError(f"require 0 < k <= n, got n={n} k={k}")
    if n > galois.FIELD_SIZE:
        raise ValueError(f"n={n} exceeds field size {galois.FIELD_SIZE}")
    base = vandermonde(n, k)
    top = base[:k, :k]
    top_inverse = invert(top)
    return matmul(base, top_inverse)
