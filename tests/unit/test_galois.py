"""Unit and property tests for GF(2^8) arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec import galois

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestBasics:
    def test_add_is_xor(self):
        assert galois.gf_add(0b1010, 0b0110) == 0b1100

    def test_sub_equals_add(self):
        assert galois.gf_sub(17, 42) == galois.gf_add(17, 42)

    def test_mul_by_zero(self):
        assert galois.gf_mul(0, 123) == 0
        assert galois.gf_mul(123, 0) == 0

    def test_mul_by_one(self):
        for value in (1, 2, 77, 255):
            assert galois.gf_mul(1, value) == value

    def test_known_product(self):
        # 2 * 2 = 4 as polynomials (no reduction needed).
        assert galois.gf_mul(2, 2) == 4
        # x^7 * x = x^8 = x^4 + x^3 + x^2 + 1 = 0x1D under 0x11D.
        assert galois.gf_mul(0x80, 2) == 0x1D

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            galois.gf_div(5, 0)

    def test_inv_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            galois.gf_inv(0)

    def test_pow_zero_exponent(self):
        assert galois.gf_pow(0, 0) == 1
        assert galois.gf_pow(7, 0) == 1

    def test_pow_of_zero(self):
        assert galois.gf_pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            galois.gf_pow(0, -1)

    def test_pow_matches_repeated_mul(self):
        value = 1
        for exponent in range(1, 10):
            value = galois.gf_mul(value, 3)
            assert galois.gf_pow(3, exponent) == value

    def test_pow_negative_exponent(self):
        assert galois.gf_pow(7, -1) == galois.gf_inv(7)


class TestFieldAxioms:
    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert galois.gf_mul(a, b) == galois.gf_mul(b, a)

    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        left = galois.gf_mul(galois.gf_mul(a, b), c)
        right = galois.gf_mul(a, galois.gf_mul(b, c))
        assert left == right

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        left = galois.gf_mul(a, galois.gf_add(b, c))
        right = galois.gf_add(galois.gf_mul(a, b), galois.gf_mul(a, c))
        assert left == right

    @given(nonzero)
    def test_inverse_roundtrip(self, a):
        assert galois.gf_mul(a, galois.gf_inv(a)) == 1

    @given(elements, nonzero)
    def test_div_inverts_mul(self, a, b):
        assert galois.gf_div(galois.gf_mul(a, b), b) == a

    @given(elements)
    def test_additive_inverse_is_self(self, a):
        assert galois.gf_add(a, a) == 0


class TestVectorised:
    def test_mul_bytes_zero_coefficient(self):
        data = np.array([1, 2, 3], dtype=np.uint8)
        assert galois.mul_bytes(0, data).tolist() == [0, 0, 0]

    def test_mul_bytes_one_copies(self):
        data = np.array([9, 8, 7], dtype=np.uint8)
        out = galois.mul_bytes(1, data)
        assert out.tolist() == [9, 8, 7]
        out[0] = 0
        assert data[0] == 9  # copy, not view

    @given(nonzero, st.lists(elements, min_size=1, max_size=32))
    def test_mul_bytes_matches_scalar(self, coefficient, values):
        data = np.array(values, dtype=np.uint8)
        expected = [galois.gf_mul(coefficient, value) for value in values]
        assert galois.mul_bytes(coefficient, data).tolist() == expected

    @given(elements, st.lists(elements, min_size=1, max_size=32))
    def test_addmul_matches_scalar(self, coefficient, values):
        data = np.array(values, dtype=np.uint8)
        accumulator = np.zeros(len(values), dtype=np.uint8)
        galois.addmul_bytes(accumulator, coefficient, data)
        expected = [galois.gf_mul(coefficient, value) for value in values]
        assert accumulator.tolist() == expected

    def test_addmul_accumulates_xor(self):
        accumulator = np.array([0xFF, 0x00], dtype=np.uint8)
        galois.addmul_bytes(accumulator, 1, np.array([0x0F, 0xF0], dtype=np.uint8))
        assert accumulator.tolist() == [0xF0, 0xF0]
