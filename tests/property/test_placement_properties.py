"""Property-based tests of placement-policy invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.sim.rng import RngStreams
from repro.storage.placement import PlacementError, make_placement_policy


@st.composite
def feasible_setup(draw):
    """A topology + code where the rack constraint is satisfiable."""
    num_racks = draw(st.integers(min_value=2, max_value=5))
    nodes_per_rack = draw(st.integers(min_value=2, max_value=5))
    parity = draw(st.integers(min_value=2, max_value=4))
    max_n = min(num_racks * min(nodes_per_rack, parity), num_racks * nodes_per_rack)
    if max_n < 3:
        n = 3
    else:
        n = draw(st.integers(min_value=3, max_value=max_n))
    k = n - parity
    if k < 1:
        k = 1
        n = k + parity
    topology = ClusterTopology.from_rack_sizes([nodes_per_rack] * num_racks)
    return topology, CodeParams(n, k)


@settings(max_examples=30, deadline=None)
@given(
    feasible_setup(),
    st.sampled_from(["random", "round-robin", "declustered"]),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=1, max_value=8),
)
def test_placement_invariants(setup, policy_name, seed, num_stripes):
    """Every policy: distinct nodes per stripe, at most n-k per rack."""
    topology, params = setup
    try:
        policy = make_placement_policy(policy_name, topology, params)
    except PlacementError:
        return  # some drawn setups are infeasible for this policy; fine
    assignment = policy.place_file(num_stripes, RngStreams(seed))
    assert len(assignment) == num_stripes * params.n
    for stripe_id in range(num_stripes):
        nodes = [
            node for block, node in assignment.items() if block.stripe_id == stripe_id
        ]
        assert len(set(nodes)) == params.n
        per_rack: dict[int, int] = {}
        for node in nodes:
            rack = topology.rack_of(node)
            per_rack[rack] = per_rack.get(rack, 0) + 1
        assert max(per_rack.values()) <= params.parity


@settings(max_examples=20, deadline=None)
@given(feasible_setup(), st.integers(min_value=0, max_value=2**16))
def test_single_rack_failure_always_survivable(setup, seed):
    """The Section III guarantee: any one rack can vanish."""
    topology, params = setup
    try:
        policy = make_placement_policy("random", topology, params)
    except PlacementError:
        return
    assignment = policy.place_file(4, RngStreams(seed))
    from repro.storage.namenode import BlockMap

    block_map = BlockMap(params, assignment, num_native_blocks=4 * params.k)
    for rack in topology.racks:
        block_map.check_recoverable(set(rack.node_ids))  # must not raise


@settings(max_examples=20, deadline=None)
@given(feasible_setup(), st.integers(min_value=0, max_value=2**16))
def test_double_node_failure_always_survivable(setup, seed):
    topology, params = setup
    try:
        policy = make_placement_policy("declustered", topology, params)
    except PlacementError:
        return
    assignment = policy.place_file(3, RngStreams(seed))
    from repro.storage.namenode import BlockMap

    block_map = BlockMap(params, assignment, num_native_blocks=3 * params.k)
    nodes = sorted(topology.node_ids())
    for first in nodes[:4]:
        for second in nodes[-3:]:
            if first != second:
                block_map.check_recoverable({first, second})
