"""Configuration for one simulation run.

:class:`SimulationConfig` captures every knob the paper varies; its defaults
are the paper's default simulation configuration (Section V-B): 40 nodes in
4 racks, 4 map + 1 reduce slot per node, 1 Gbps rack bandwidth, 128 MB
blocks, a (20, 15) code, 1440 blocks, map times ~ N(20, 1), reduce times
~ N(30, 2), 30 reduce tasks, 1% shuffle, heartbeats every 3 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.failures import FailurePattern
from repro.cluster.network import MB, NetworkSpec, gbps
from repro.ec.codec import CodeParams
from repro.faults.schedule import FailureSchedule
from repro.storage.degraded import SourceSelection
from repro.storage.repair_driver import RepairConfig

#: The paper's three schedulers (the full accepted set, including ablation
#: variants and user registrations, comes from
#: :func:`repro.core.scheduler.registered_schedulers`).
SCHEDULERS = ("LF", "BDF", "EDF")


@dataclass(frozen=True)
class JobConfig:
    """One MapReduce job in a simulation.

    Parameters
    ----------
    num_blocks:
        Native blocks processed by this job (= number of map tasks).
    map_time_mean, map_time_std:
        Normal distribution of map processing time, seconds (for a node
        with ``speed_factor`` 1.0).
    reduce_time_mean, reduce_time_std:
        Normal distribution of reduce processing time, seconds.
    num_reduce_tasks:
        Reduce task count; 0 makes the job map-only.
    shuffle_ratio:
        Intermediate data emitted by each map task, as a fraction of the
        block size, split evenly across the reduce tasks.
    submit_time:
        Simulation time at which the job enters the FIFO queue.
    """

    num_blocks: int = 1440
    map_time_mean: float = 20.0
    map_time_std: float = 1.0
    reduce_time_mean: float = 30.0
    reduce_time_std: float = 2.0
    num_reduce_tasks: int = 30
    shuffle_ratio: float = 0.01
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("job needs at least one block")
        if self.num_reduce_tasks < 0:
            raise ValueError("negative reduce task count")
        if not 0 <= self.shuffle_ratio:
            raise ValueError("shuffle ratio must be non-negative")
        if self.submit_time < 0:
            raise ValueError("negative submit time")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to run one simulation trial."""

    # Cluster
    num_nodes: int = 40
    num_racks: int = 4
    map_slots: int = 4
    reduce_slots: int = 1
    speed_factors: tuple[float, ...] | None = None

    # Network
    rack_bandwidth: float = gbps(1)
    network_model: str = "fluid"

    # Storage
    code: CodeParams = field(default_factory=lambda: CodeParams(20, 15))
    block_size: float = 128 * MB
    placement: str = "random"
    source_selection: SourceSelection = SourceSelection.RANDOM

    # Workload
    jobs: tuple[JobConfig, ...] = field(default_factory=lambda: (JobConfig(),))

    # Failure
    failure: FailurePattern = FailurePattern.SINGLE_NODE
    failure_eligible: tuple[int, ...] | None = None
    failure_time: float | None = None
    #: Scripted churn timeline; when set it replaces ``failure`` /
    #: ``failure_time`` entirely (t=0 fail events are down-before-start,
    #: later events are crashes the master detects from heartbeat expiry).
    failure_schedule: FailureSchedule | None = None

    # Scheduling
    scheduler: str = "EDF"
    heartbeat_interval: float = 3.0
    heartbeat_stagger: bool = True
    reduce_slowstart: float = 0.05
    shuffle_drain_interval: float = 3.0

    # Fault tolerance
    #: Seconds of heartbeat silence before the master declares a node dead.
    heartbeat_expiry: float = 30.0
    #: Retry budget per task; exhausting it fails the job (JobFailedError).
    max_attempts: int = 4
    #: Consecutive declared deaths before a node is blacklisted (None = off).
    blacklist_threshold: int | None = 3
    #: Launch speculative backups for straggling map tasks.
    speculative: bool = False
    #: Straggler threshold: elapsed > multiplier x median completed map time.
    speculative_multiplier: float = 1.5

    # Online repair and resilient degraded reads
    #: Online repair driver knobs; None leaves lost blocks unrepaired (the
    #: paper's setting: degraded reads serve everything).
    repair: RepairConfig | None = None
    #: Park tasks whose stripe dropped below ``k`` readable blocks until
    #: repair/recovery restores decodability, instead of failing the job.
    wait_for_repair: bool = False
    #: Times a degraded read re-plans after losing a source mid-flight
    #: before the attempt is handed back to the master.
    degraded_read_retries: int = 3
    #: Base backoff (seconds) before a degraded read re-plans; scales
    #: linearly with the retry number.
    degraded_read_backoff: float = 1.0

    # Reproducibility
    seed: int = 0

    def __post_init__(self) -> None:
        # Imported here: the scheduler registry imports this module's types.
        from repro.core.scheduler import registered_schedulers

        if self.scheduler not in registered_schedulers():
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {registered_schedulers()}"
            )
        if self.num_nodes <= 1:
            raise ValueError("need at least two nodes")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if not 0 <= self.reduce_slowstart <= 1:
            raise ValueError("reduce slowstart must be in [0, 1]")
        if self.speed_factors is not None and len(self.speed_factors) != self.num_nodes:
            raise ValueError(
                f"expected {self.num_nodes} speed factors, got {len(self.speed_factors)}"
            )
        if self.failure_time is not None and self.failure_time < 0:
            raise ValueError(f"negative failure time {self.failure_time}")
        if self.heartbeat_expiry <= 0:
            raise ValueError("heartbeat expiry must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.blacklist_threshold is not None and self.blacklist_threshold < 1:
            raise ValueError("blacklist threshold must be at least 1 (or None)")
        if self.speculative_multiplier <= 1.0:
            raise ValueError("speculative multiplier must exceed 1")
        if self.degraded_read_retries < 0:
            raise ValueError("degraded_read_retries must be non-negative")
        if self.degraded_read_backoff <= 0:
            raise ValueError("degraded_read_backoff must be positive")

    @property
    def total_blocks(self) -> int:
        """Native blocks summed over all jobs (each job reads its own file)."""
        return sum(job.num_blocks for job in self.jobs)

    def network_spec(self) -> NetworkSpec:
        """The link capacities implied by ``rack_bandwidth``."""
        return NetworkSpec(rack_download_bw=self.rack_bandwidth)

    def with_scheduler(self, scheduler: str) -> "SimulationConfig":
        """Copy of this config using a different scheduler."""
        return replace(self, scheduler=scheduler)

    def with_failure(self, failure: FailurePattern) -> "SimulationConfig":
        """Copy of this config using a different failure pattern."""
        return replace(self, failure=failure)

    def with_failure_schedule(self, schedule: FailureSchedule) -> "SimulationConfig":
        """Copy of this config driven by a scripted failure schedule."""
        return replace(self, failure_schedule=schedule)

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Copy of this config using a different master seed."""
        return replace(self, seed=seed)
