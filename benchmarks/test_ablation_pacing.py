"""Ablation: the pacing rule and the one-per-heartbeat cap.

Compares LF, EAGER (all degraded first, no pacing), BDF-UNCAPPED (pacing
but no per-heartbeat cap) and BDF on the default simulated cluster.

Expected: BDF <= BDF-UNCAPPED <= EAGER <= LF on average -- pacing beats
eager launching, and the cap squeezes out a further gain by never running
two degraded reads on one slave at once.
"""

from __future__ import annotations

import statistics

from conftest import one_shot
from repro.experiments.common import default_seeds, run_many
from repro.mapreduce.config import SimulationConfig

SCHEDULERS = ("LF", "EAGER", "BDF-UNCAPPED", "BDF")


def run_ablation() -> dict[str, float]:
    seeds = default_seeds()
    configs = [
        SimulationConfig().with_scheduler(name).with_seed(seed)
        for seed in seeds
        for name in SCHEDULERS
    ]
    results = run_many(configs)
    means: dict[str, list[float]] = {name: [] for name in SCHEDULERS}
    for config, result in zip(configs, results):
        means[config.scheduler].append(result.job(0).runtime)
    return {name: statistics.mean(samples) for name, samples in means.items()}


def test_ablation_pacing(benchmark):
    means = one_shot(benchmark, run_ablation)
    print("\nAblation: pacing and the per-heartbeat cap (mean runtime, s)")
    for name in SCHEDULERS:
        print(f"  {name:>12}: {means[name]:8.1f}")
    assert means["BDF"] < means["LF"], "pacing must beat locality-first"
    assert means["EAGER"] < means["LF"], "even eager degraded launch beats LF"
    assert means["BDF"] <= means["EAGER"] * 1.02, "pacing should not lose to eager"
