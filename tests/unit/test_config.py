"""Unit tests for simulation configuration."""

from __future__ import annotations

import pytest

from repro.cluster.failures import FailurePattern
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig, SimulationConfig


class TestJobConfig:
    def test_defaults_match_paper(self):
        job = JobConfig()
        assert job.num_blocks == 1440
        assert job.map_time_mean == 20.0
        assert job.reduce_time_mean == 30.0
        assert job.num_reduce_tasks == 30
        assert job.shuffle_ratio == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            JobConfig(num_blocks=0)
        with pytest.raises(ValueError):
            JobConfig(num_reduce_tasks=-1)
        with pytest.raises(ValueError):
            JobConfig(shuffle_ratio=-0.1)
        with pytest.raises(ValueError):
            JobConfig(submit_time=-1.0)


class TestSimulationConfig:
    def test_defaults_match_paper(self):
        config = SimulationConfig()
        assert config.num_nodes == 40
        assert config.num_racks == 4
        assert config.map_slots == 4
        assert config.code == CodeParams(20, 15)
        assert config.heartbeat_interval == 3.0
        assert config.failure is FailurePattern.SINGLE_NODE

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError):
            SimulationConfig(scheduler="NOT-A-POLICY")

    def test_bad_cluster(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_nodes=1)
        with pytest.raises(ValueError):
            SimulationConfig(heartbeat_interval=0)

    def test_speed_factor_count(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_nodes=4, num_racks=2, speed_factors=(1.0,))

    def test_with_helpers(self):
        config = SimulationConfig()
        assert config.with_scheduler("LF").scheduler == "LF"
        assert config.with_seed(9).seed == 9
        assert config.with_failure(FailurePattern.RACK).failure is FailurePattern.RACK
        # original untouched (frozen dataclass copies)
        assert config.scheduler == "EDF"

    def test_network_spec(self):
        spec = SimulationConfig().network_spec()
        assert spec.rack_download_bw == SimulationConfig().rack_bandwidth

    def test_total_blocks(self):
        config = SimulationConfig(jobs=(JobConfig(num_blocks=10), JobConfig(num_blocks=20)))
        assert config.total_blocks == 30
