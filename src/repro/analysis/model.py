"""The paper's closed-form runtime model (Section IV-B).

Setting: ``N`` homogeneous nodes in ``R`` racks, ``L`` map slots per node,
map processing time ``T``, block size ``S``, per-rack download bandwidth
``W``, an ``(n, k)`` code with stripes spread evenly (parity declustering),
``F`` native blocks, a map-only job, and a single failed node.

Derived quantities:

* normal mode:          ``FT / (NL)``
* locality-first:       ``FT/(NL) + F/(NR) * (R-1)kS/(RW) + T``
* degraded-first:       ``max( FT/((N-1)L) + T ,  F/(NR) * (R-1)kS/(RW) + T )``

All three are exposed both as absolute seconds and normalized over the
normal-mode runtime, which is how Figure 5 plots them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.network import MB, gbps
from repro.ec.codec import CodeParams


@dataclass(frozen=True)
class AnalysisParams:
    """Inputs of the analytical model, defaulting to the paper's values.

    The paper's default setting (Section IV-B, "Numerical results"):
    ``N=40``, ``R=4``, ``L=4``, ``S=128MB``, ``W=1Gbps``, ``T=20s``,
    ``F=1440``, ``(n,k)=(16,12)``.
    """

    num_nodes: int = 40
    num_racks: int = 4
    map_slots: int = 4
    map_time: float = 20.0
    block_size: float = 128 * MB
    rack_bandwidth: float = gbps(1)
    code: CodeParams = CodeParams(16, 12)
    num_blocks: int = 1440

    def __post_init__(self) -> None:
        if self.num_nodes <= 1:
            raise ValueError("the failure-mode analysis needs at least two nodes")
        if self.num_racks < 1:
            raise ValueError("need at least one rack")
        if self.map_slots < 1:
            raise ValueError("need at least one map slot per node")
        if min(self.map_time, self.block_size, self.rack_bandwidth) <= 0:
            raise ValueError("times, sizes and bandwidths must be positive")
        if self.num_blocks <= 0:
            raise ValueError("need at least one block")

    def with_code(self, code: CodeParams) -> "AnalysisParams":
        """Copy with a different erasure code."""
        return replace(self, code=code)

    def with_blocks(self, num_blocks: int) -> "AnalysisParams":
        """Copy with a different file size."""
        return replace(self, num_blocks=num_blocks)

    def with_bandwidth(self, rack_bandwidth: float) -> "AnalysisParams":
        """Copy with a different rack download bandwidth."""
        return replace(self, rack_bandwidth=rack_bandwidth)


class AnalyticalModel:
    """Evaluates the Section IV-B formulas for a parameter set."""

    def __init__(self, params: AnalysisParams) -> None:
        self.params = params

    # -- building blocks -----------------------------------------------------

    def degraded_tasks_per_rack(self) -> float:
        """``F / (N R)``: degraded tasks each rack hosts after one node fails."""
        p = self.params
        return p.num_blocks / (p.num_nodes * p.num_racks)

    def expected_degraded_read_time(self) -> float:
        """``(R-1) k S / (R W)``: expected cross-rack download per lost block."""
        p = self.params
        return (p.num_racks - 1) * p.code.k * p.block_size / (p.num_racks * p.rack_bandwidth)

    def total_degraded_read_time_per_rack(self) -> float:
        """Serial time for one rack to download all its degraded reads."""
        return self.degraded_tasks_per_rack() * self.expected_degraded_read_time()

    # -- the three runtimes ---------------------------------------------------

    def normal_mode_runtime(self) -> float:
        """``F T / (N L)``: the map phase with no failures."""
        p = self.params
        return p.num_blocks * p.map_time / (p.num_nodes * p.map_slots)

    def locality_first_runtime(self) -> float:
        """LF in failure mode: local phase, then serialized degraded reads."""
        p = self.params
        return (
            self.normal_mode_runtime()
            + self.total_degraded_read_time_per_rack()
            + p.map_time
        )

    def degraded_first_runtime(self) -> float:
        """DF in failure mode: the max of the two bottleneck cases.

        Case 1 (reads fit inside the map phase): ``FT/((N-1)L) + T``.
        Case 2 (reads are the bottleneck): rack download time ``+ T``.
        """
        p = self.params
        compute_bound = (
            p.num_blocks * p.map_time / ((p.num_nodes - 1) * p.map_slots) + p.map_time
        )
        network_bound = self.total_degraded_read_time_per_rack() + p.map_time
        return max(compute_bound, network_bound)

    # -- normalized views --------------------------------------------------------

    def normalized_locality_first(self) -> float:
        """LF runtime over normal-mode runtime."""
        return self.locality_first_runtime() / self.normal_mode_runtime()

    def normalized_degraded_first(self) -> float:
        """DF runtime over normal-mode runtime."""
        return self.degraded_first_runtime() / self.normal_mode_runtime()

    def runtime_reduction(self) -> float:
        """Fractional runtime saved by DF relative to LF."""
        lf = self.locality_first_runtime()
        return (lf - self.degraded_first_runtime()) / lf

    def is_network_bound(self) -> bool:
        """Whether DF's runtime is dominated by degraded-read downloads."""
        p = self.params
        compute_bound = (
            p.num_blocks * p.map_time / ((p.num_nodes - 1) * p.map_slots) + p.map_time
        )
        return self.degraded_first_runtime() > compute_bound or (
            self.total_degraded_read_time_per_rack() + p.map_time >= compute_bound
        )
