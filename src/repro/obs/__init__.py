"""Simulator-wide observability: events, decision traces, metrics, profiling.

Opt-in instrumentation for the whole simulator.  Create an
:class:`ObservabilityCollector`, pass it to
``run_simulation(config, observer=collector)``, and read the structured
event log, scheduler decision trace, utilization metrics, and profiling
figures afterwards::

    from repro import SimulationConfig, run_simulation
    from repro.obs import ObservabilityCollector

    collector = ObservabilityCollector()
    result = run_simulation(SimulationConfig(scheduler="EDF"), observer=collector)
    print(collector.render_utilization_report())

Instrumentation is zero-overhead when off and provably passive when on:
the collector never schedules simulator callbacks and never draws
randomness, so ``result`` is bit-identical either way.
"""

from repro.obs.collector import ObservabilityCollector
from repro.obs.events import WILDCARD, EventBus, ObsEvent
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    events_jsonl,
    sanitize,
    write_text,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimeWeightedSeries
from repro.obs.profile import Profiler

__all__ = [
    "Counter",
    "EventBus",
    "Gauge",
    "MetricsRegistry",
    "ObsEvent",
    "ObservabilityCollector",
    "Profiler",
    "TimeWeightedSeries",
    "WILDCARD",
    "chrome_trace",
    "chrome_trace_json",
    "events_jsonl",
    "sanitize",
    "write_text",
]
