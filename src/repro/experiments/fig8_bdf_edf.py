"""Figure 8: basic vs enhanced degraded-first scheduling.

Four sub-experiments comparing BDF and EDF against the LF baseline, in a
homogeneous cluster, a heterogeneous cluster (half the nodes at half
speed), and an extreme case (five very bad nodes, a small map-only job):

* 8(a) -- percentage change in the number of remote tasks vs LF;
* 8(b) -- percentage reduction in degraded read time vs LF;
* 8(c) -- percentage reduction in MapReduce runtime vs LF;
* 8(d) -- runtime reduction vs LF in the extreme case.

Paper shapes: BDF launches MORE remote tasks than LF while EDF launches
fewer; both cut degraded-read time by ~80-85% (EDF slightly more); runtime
savings ~25-34%; and in the extreme case EDF (~33%) far outperforms BDF
(~12%).

Metric note: our simulator distinguishes node-local, rack-local and
cross-rack map tasks.  The paper's "number of remote tasks" tracks tasks
that left their storage node, which corresponds to our
``stolen_task_count`` (rack-local + cross-rack); see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import (
    ExperimentTable,
    run_failure_and_normal,
)
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.metrics import SimulationResult

#: Schedulers compared against the LF baseline.
SCHEDULERS = ("LF", "BDF", "EDF")


def homogeneous_config() -> SimulationConfig:
    """The default homogeneous cluster of Section V-B."""
    return SimulationConfig()


def heterogeneous_config() -> SimulationConfig:
    """Half the nodes run at half speed (map 40 s, reduce 60 s means)."""
    base = SimulationConfig()
    factors = tuple(1.0 if index % 2 == 0 else 0.5 for index in range(base.num_nodes))
    return replace(base, speed_factors=factors)


def extreme_config() -> SimulationConfig:
    """Figure 8(d): five bad nodes (10x slower), 150 blocks, map-only job.

    Processing times are 3 s on regular nodes and 30 s on the bad ones; one
    of the *normal* nodes fails.  The paper does not state the slot count
    for this experiment; we use one map slot per node (as in its Figure 4
    walk-through), which gives the small job several scheduling rounds --
    with the default four slots the whole job launches in a single wave and
    no scheduler has any decision left to make.
    """
    base = SimulationConfig()
    bad_nodes = tuple(range(5))
    factors = tuple(0.1 if index in bad_nodes else 1.0 for index in range(base.num_nodes))
    job = JobConfig(
        num_blocks=150,
        map_time_mean=3.0,
        map_time_std=0.3,
        num_reduce_tasks=0,
        shuffle_ratio=0.0,
    )
    eligible = tuple(
        index for index in range(base.num_nodes) if index not in bad_nodes
    )
    return replace(
        base,
        map_slots=1,
        speed_factors=factors,
        jobs=(job,),
        failure_eligible=eligible,
    )


def _percent_change(results: list[SimulationResult], baseline: list[SimulationResult], metric) -> list[float]:
    """Per-seed percentage change of ``metric`` relative to the LF baseline."""
    samples = []
    for candidate, reference in zip(results, baseline):
        base_value = metric(reference.job(0))
        if base_value == 0:
            continue
        samples.append((metric(candidate.job(0)) - base_value) / base_value)
    if not samples:
        raise RuntimeError("baseline metric was zero in every trial")
    return samples


class Fig8Data:
    """The three Figure 8 scenarios' raw results, computed once.

    Each of the four sub-figures is a different statistic over the same
    simulation runs, so sharing the runs cuts the experiment's cost 4x.
    """

    def __init__(self, seeds: list[int] | None = None) -> None:
        self.homogeneous = run_failure_and_normal(homogeneous_config(), SCHEDULERS, seeds)
        self.heterogeneous = run_failure_and_normal(
            heterogeneous_config(), SCHEDULERS, seeds
        )
        self.extreme = run_failure_and_normal(extreme_config(), SCHEDULERS, seeds)

    def case(self, label: str):
        """Grouped results for a scenario label."""
        return getattr(self, label)


def run_fig8a(seeds: list[int] | None = None, data: Fig8Data | None = None) -> ExperimentTable:
    """Figure 8(a): change in remote-task count vs LF (negative = fewer)."""
    data = data or Fig8Data(seeds)
    table = ExperimentTable("Figure 8(a): remote tasks vs LF (fraction, + = more)")
    for label in ("homogeneous", "heterogeneous"):
        grouped = data.case(label)
        table.add_row(
            label,
            {
                name: _percent_change(
                    grouped[name], grouped["LF"], lambda job: job.stolen_task_count
                )
                for name in ("BDF", "EDF")
            },
        )
    return table


def run_fig8b(seeds: list[int] | None = None, data: Fig8Data | None = None) -> ExperimentTable:
    """Figure 8(b): reduction of degraded read time vs LF (+ = faster)."""
    data = data or Fig8Data(seeds)
    table = ExperimentTable("Figure 8(b): degraded read time reduction vs LF")
    for label in ("homogeneous", "heterogeneous"):
        grouped = data.case(label)
        table.add_row(
            label,
            {
                name: [
                    -delta
                    for delta in _percent_change(
                        grouped[name],
                        grouped["LF"],
                        lambda job: job.mean_degraded_read_time(),
                    )
                ]
                for name in ("BDF", "EDF")
            },
        )
    return table


def run_fig8c(seeds: list[int] | None = None, data: Fig8Data | None = None) -> ExperimentTable:
    """Figure 8(c): reduction of MapReduce runtime vs LF (+ = faster)."""
    data = data or Fig8Data(seeds)
    table = ExperimentTable("Figure 8(c): runtime reduction vs LF")
    for label in ("homogeneous", "heterogeneous"):
        grouped = data.case(label)
        table.add_row(
            label,
            {
                name: [
                    -delta
                    for delta in _percent_change(
                        grouped[name], grouped["LF"], lambda job: job.runtime
                    )
                ]
                for name in ("BDF", "EDF")
            },
        )
    return table


def run_fig8d(seeds: list[int] | None = None, data: Fig8Data | None = None) -> ExperimentTable:
    """Figure 8(d): runtime reduction vs LF in the extreme case."""
    data = data or Fig8Data(seeds)
    table = ExperimentTable("Figure 8(d): runtime reduction vs LF, extreme case")
    grouped = data.extreme
    table.add_row(
        "extreme",
        {
            name: [
                -delta
                for delta in _percent_change(
                    grouped[name], grouped["LF"], lambda job: job.runtime
                )
            ]
            for name in ("BDF", "EDF")
        },
    )
    return table


def main() -> str:
    """Run all four sub-experiments (sharing runs) and return the report."""
    data = Fig8Data()
    sections = [
        run_fig8a(data=data).format(),
        run_fig8b(data=data).format(),
        run_fig8c(data=data).format(),
        run_fig8d(data=data).format(),
    ]
    return "\n\n".join(sections)


if __name__ == "__main__":
    print(main())
