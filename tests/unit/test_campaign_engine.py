"""Unit tests for the crash-safe campaign engine.

Trial runners here are module-level (workers pickle them) and synthetic:
they return small JSON payloads, raise, kill their own worker, or hang on
deterministic schedules, so every fault path runs in milliseconds.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.experiments.campaign import (
    CampaignEngine,
    CampaignInterrupted,
    CampaignPolicy,
    CampaignTrialError,
    Journal,
    JOURNAL_SCHEMA,
    journal_status,
    trial_spec_hash,
)
from repro.experiments.cache import ResultCache
from repro.mapreduce.config import SimulationConfig


def configs_for(count: int) -> list[SimulationConfig]:
    return [SimulationConfig(seed=index) for index in range(count)]


def toy_runner(config: SimulationConfig) -> dict:
    return {"seed": config.seed, "square": config.seed * config.seed}


class ToyError(RuntimeError):
    pass


def failing_runner(config: SimulationConfig) -> dict:
    if config.seed == 1:
        raise ToyError(f"doomed trial {config.seed}")
    return toy_runner(config)


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def kill_runner(config: SimulationConfig) -> dict:
    if config.seed == 1 and _in_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return toy_runner(config)


def sleep_runner(config: SimulationConfig) -> dict:
    if config.seed == 1 and _in_worker():
        time.sleep(30.0)
    return toy_runner(config)


def fast_policy(**overrides) -> CampaignPolicy:
    merged = {"retries": 1, "backoff": 0.0, "workers": 2, "on_error": "collect"}
    merged.update(overrides)
    return CampaignPolicy(**merged)


class TestPolicyValidation:
    def test_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            CampaignPolicy(retries=-1)

    def test_zero_timeout(self):
        with pytest.raises(ValueError, match="trial_timeout"):
            CampaignPolicy(trial_timeout=0.0)

    def test_negative_backoff(self):
        with pytest.raises(ValueError, match="backoff"):
            CampaignPolicy(backoff=-0.1)

    def test_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            CampaignPolicy(workers=0)

    def test_bad_on_error(self):
        with pytest.raises(ValueError, match="on_error"):
            CampaignPolicy(on_error="ignore")


class TestSpecHash:
    def test_varies_with_config(self):
        assert trial_spec_hash(
            SimulationConfig(seed=0), toy_runner
        ) != trial_spec_hash(SimulationConfig(seed=1), toy_runner)

    def test_varies_with_runner(self):
        config = SimulationConfig(seed=0)
        assert trial_spec_hash(config, toy_runner) != trial_spec_hash(
            config, failing_runner
        )

    def test_stable(self):
        config = SimulationConfig(seed=0)
        assert trial_spec_hash(config, toy_runner) == trial_spec_hash(
            config, toy_runner
        )


class TestExecution:
    def test_serial_matches_parallel(self):
        configs = configs_for(6)
        serial = CampaignEngine(
            runner=toy_runner, policy=fast_policy(workers=1)
        ).run(configs)
        parallel = CampaignEngine(
            runner=toy_runner, policy=fast_policy(workers=3)
        ).run(configs)
        assert serial.results == parallel.results
        assert serial.counters.done == parallel.counters.done == 6

    def test_collect_mode_failure_rows(self):
        configs = configs_for(5)
        outcome = CampaignEngine(
            runner=failing_runner, policy=fast_policy()
        ).run(configs)
        assert outcome.counters.submitted == 5
        assert outcome.counters.done == 4
        assert outcome.counters.failed == 1
        assert outcome.counters.consistent()
        [failure] = outcome.failures
        assert failure.index == 1
        assert failure.kind == "error"
        assert failure.status == "failed"
        assert failure.attempts == 2  # first try + one retry
        assert "doomed" in failure.message
        assert outcome.results[1] is None
        assert outcome.results[0] == {"seed": 0, "square": 0}

    def test_raise_mode_propagates_real_exception(self):
        with pytest.raises(ToyError, match="doomed"):
            CampaignEngine(
                runner=failing_runner,
                policy=fast_policy(on_error="raise", workers=2),
            ).run(configs_for(5))

    def test_raise_mode_serial_propagates(self):
        with pytest.raises(ToyError):
            CampaignEngine(
                runner=failing_runner,
                policy=fast_policy(on_error="raise", workers=1),
            ).run(configs_for(5))

    def test_killed_worker_quarantines_trial_not_batch(self):
        configs = configs_for(5)
        outcome = CampaignEngine(runner=kill_runner, policy=fast_policy()).run(
            configs
        )
        assert outcome.counters.done == 4
        assert outcome.counters.quarantined == 1
        assert outcome.counters.consistent()
        [failure] = outcome.failures
        assert failure.index == 1
        assert failure.kind == "worker-lost"
        assert failure.status == "quarantined"
        # Every other trial's payload survived the fleet churn.
        for index in (0, 2, 3, 4):
            assert outcome.results[index] == toy_runner(configs[index])

    def test_killed_worker_raise_mode_is_typed(self):
        with pytest.raises(CampaignTrialError, match="worker-lost"):
            CampaignEngine(
                runner=kill_runner, policy=fast_policy(on_error="raise")
            ).run(configs_for(5))

    def test_timeout_quarantines_hanging_trial(self):
        outcome = CampaignEngine(
            runner=sleep_runner,
            policy=fast_policy(retries=0, trial_timeout=0.5),
        ).run(configs_for(4))
        assert outcome.counters.done == 3
        assert outcome.counters.quarantined == 1
        assert outcome.counters.consistent()
        [failure] = outcome.failures
        assert failure.kind == "timeout"
        assert "trial-timeout" in failure.message

    def test_request_stop_interrupts_with_checkpoint(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        engine = CampaignEngine(
            runner=toy_runner,
            policy=fast_policy(workers=1),
            journal_path=journal,
            progress=lambda index, status, attempts: engine.request_stop(),
        )
        with pytest.raises(CampaignInterrupted) as info:
            engine.run(configs_for(6))
        assert info.value.remaining > 0
        assert info.value.counters.done >= 1
        # The finished trial is checkpointed; a resume completes the rest.
        resumed = CampaignEngine(
            runner=toy_runner, policy=fast_policy(workers=1), journal_path=journal
        ).run(configs_for(6))
        assert resumed.counters.done == 6
        assert resumed.counters.replayed >= 1
        assert resumed.results == [toy_runner(config) for config in configs_for(6)]


class TestJournal:
    def test_resume_skips_done_trials(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        configs = configs_for(4)
        first = CampaignEngine(
            runner=toy_runner, policy=fast_policy(), journal_path=journal
        ).run(configs)
        second = CampaignEngine(
            runner=toy_runner, policy=fast_policy(), journal_path=journal
        ).run(configs)
        assert second.counters.replayed == 4
        assert second.results == first.results

    def test_replayed_payloads_bit_identical(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        configs = configs_for(4)
        first = CampaignEngine(
            runner=toy_runner, policy=fast_policy(), journal_path=journal
        ).run(configs)
        second = CampaignEngine(
            runner=toy_runner, policy=fast_policy(), journal_path=journal
        ).run(configs)
        assert json.dumps(first.results, sort_keys=True) == json.dumps(
            second.results, sort_keys=True
        )

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        CampaignEngine(
            runner=toy_runner, policy=fast_policy(), journal_path=journal
        ).run(configs_for(4))
        with open(journal, "a") as handle:
            handle.write('{"kind": "trial", "spec": "abc", "status": "done", ')
        state = Journal.load(journal)
        assert state.corrupt_lines == 1
        assert len(state.records) == 4

    def test_tampered_payload_is_skipped(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        CampaignEngine(
            runner=toy_runner, policy=fast_policy(), journal_path=journal
        ).run(configs_for(3))
        lines = open(journal).read().splitlines()
        record = json.loads(lines[1])
        record["payload"]["square"] = 999  # hash no longer matches
        lines[1] = json.dumps(record)
        with open(journal, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        state = Journal.load(journal)
        assert state.corrupt_lines == 1
        assert len(state.records) == 2
        # The tampered trial is simply recomputed on resume.
        resumed = CampaignEngine(
            runner=toy_runner, policy=fast_policy(), journal_path=journal
        ).run(configs_for(3))
        assert resumed.counters.replayed == 2
        assert resumed.counters.done == 3

    def test_header_binds_code_version(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        CampaignEngine(
            runner=toy_runner, policy=fast_policy(), journal_path=journal
        ).run(configs_for(3))
        header = json.loads(open(journal).read().splitlines()[0])
        assert header["schema"] == JOURNAL_SCHEMA
        # A journal from a different code version replays nothing.
        lines = open(journal).read().splitlines()
        header["code_version"] = "0.0.1"
        lines[0] = json.dumps(header)
        with open(journal, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        assert Journal.load(journal).records == {}

    def test_failures_are_journaled(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        CampaignEngine(
            runner=failing_runner, policy=fast_policy(), journal_path=journal
        ).run(configs_for(4))
        status = journal_status(journal)
        assert status["done"] == 3
        assert status["failed"] == 1
        assert status["trials"] == 4
        # Failed trials are re-attempted on resume, not replayed as done.
        resumed = CampaignEngine(
            runner=failing_runner, policy=fast_policy(), journal_path=journal
        ).run(configs_for(4))
        assert resumed.counters.replayed == 3
        assert resumed.counters.failed == 1
        assert resumed.counters.consistent()


class TestCacheIntegration:
    def test_second_campaign_hits_cache(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path / "cache"), code_version="test")
        configs = configs_for(4)
        first = CampaignEngine(runner=toy_runner, policy=fast_policy(), cache=cache).run(
            configs
        )
        second = CampaignEngine(
            runner=toy_runner, policy=fast_policy(), cache=cache
        ).run(configs)
        assert second.counters.cached == 4
        assert second.results == first.results

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path / "cache"), code_version="test")
        configs = configs_for(4)
        CampaignEngine(runner=toy_runner, policy=fast_policy(), cache=cache).run(
            configs
        )
        # Flip a byte in every stored entry.
        for root, _dirs, files in os.walk(cache.directory):
            for name in files:
                path = os.path.join(root, name)
                raw = bytearray(open(path, "rb").read())
                target = raw.find(b'"square"')
                raw[target + 1] = ord(b"x")
                open(path, "wb").write(bytes(raw))
        again = CampaignEngine(
            runner=toy_runner, policy=fast_policy(), cache=cache
        ).run(configs)
        assert again.counters.cached == 0
        assert again.counters.done == 4
        assert cache.stats.corrupt == 4
        assert again.results == [toy_runner(config) for config in configs]
