"""Ablation: delay scheduling vs degraded-first scheduling.

Delay scheduling (Zaharia et al.) is the classic locality improvement the
paper cites; it makes slaves wait briefly rather than take non-local tasks.
It addresses a different problem: it cannot move degraded reads off the end
of the map phase.  Expected: LF-DELAY tracks LF's failure-mode runtime
closely (within noise) while EDF clearly beats both -- evidence that the
paper's gain comes from degraded-task placement, not from generic locality
tuning.
"""

from __future__ import annotations

import statistics

from conftest import one_shot
from repro.experiments.common import default_seeds, run_many
from repro.mapreduce.config import SimulationConfig

SCHEDULERS = ("LF", "LF-DELAY", "EDF")


def run_ablation() -> dict[str, float]:
    seeds = default_seeds()
    configs = [
        SimulationConfig().with_scheduler(name).with_seed(seed)
        for seed in seeds
        for name in SCHEDULERS
    ]
    results = run_many(configs)
    samples: dict[str, list[float]] = {name: [] for name in SCHEDULERS}
    for config, result in zip(configs, results):
        samples[config.scheduler].append(result.job(0).runtime)
    return {name: statistics.mean(values) for name, values in samples.items()}


def test_ablation_delay_scheduling(benchmark):
    means = one_shot(benchmark, run_ablation)
    print("\nAblation: delay scheduling vs degraded-first (mean runtime, s)")
    for name in SCHEDULERS:
        print(f"  {name:>9}: {means[name]:8.1f}")
    assert means["EDF"] < means["LF"], "EDF must beat plain locality-first"
    assert means["EDF"] < means["LF-DELAY"], (
        "locality tuning alone must not match degraded-first scheduling"
    )