"""Name -> experiment runner registry used by the CLI.

Each runner is a zero-argument callable returning a printable report
string.  Experiment names follow the paper's figure/table numbering.
"""

from __future__ import annotations

from collections.abc import Callable


def _fig3() -> str:
    from repro.experiments.fig3_motivating import main

    return main()


def _fig5() -> str:
    from repro.experiments.fig5_analysis import main

    return main()


def _fig7() -> str:
    from repro.experiments.fig7_simulation import main

    return main()


def _fig8() -> str:
    from repro.experiments.fig8_bdf_edf import main

    return main()


def _fig9() -> str:
    from repro.experiments.fig9_testbed import main

    return main()


def _table1() -> str:
    from repro.experiments.table1_breakdown import main

    return main()


def _reliability() -> str:
    from repro.experiments.reliability import main

    return main()


_EXPERIMENTS: dict[str, Callable[[], str]] = {
    "fig3": _fig3,
    "fig5": _fig5,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "table1": _table1,
    "reliability": _reliability,
}


def list_experiments() -> list[str]:
    """Names of all registered experiments."""
    return sorted(_EXPERIMENTS)


def get_experiment(name: str) -> Callable[[], str]:
    """Look up an experiment runner by name."""
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {list_experiments()}"
        ) from None
