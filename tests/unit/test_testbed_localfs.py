"""Unit tests for the testbed filesystem and datanode stores."""

from __future__ import annotations

import pytest

from repro.cluster.network import NetworkSpec
from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.sim.rng import RngStreams
from repro.storage.block import BlockId
from repro.testbed.localfs import BlockNotFoundError, DataNodeStore, HdfsRaidFilesystem
from repro.testbed.netem import EmulatedNetwork


@pytest.fixture
def fs():
    topology = ClusterTopology.from_rack_sizes([3, 3])
    netem = EmulatedNetwork(
        topology, NetworkSpec(rack_download_bw=1e9), time_scale=1e-6
    )
    return HdfsRaidFilesystem(
        topology, CodeParams(4, 2), block_size=1000, netem=netem,
        placement="round-robin", rng=RngStreams(1),
    )


CORPUS = b"\n".join(b"line %d of the corpus body" % i for i in range(300)) + b"\n"


class TestDataNodeStore:
    def test_put_get(self):
        store = DataNodeStore(0)
        block = BlockId(0, 0, 2)
        store.put(block, b"payload")
        assert store.get(block) == b"payload"
        assert store.block_count() == 1

    def test_missing_block(self):
        store = DataNodeStore(0)
        with pytest.raises(BlockNotFoundError):
            store.get(BlockId(0, 0, 2))


class TestSplitBlocks:
    def test_line_aligned(self, fs):
        blocks = fs.split_blocks(CORPUS)
        assert all(len(block) <= 1000 for block in blocks)
        for block in blocks:
            assert block.endswith(b"\n")
        assert b"".join(blocks) == CORPUS

    def test_oversized_line_split(self, fs):
        data = b"x" * 2500
        blocks = fs.split_blocks(data)
        assert b"".join(blocks) == data
        assert all(len(block) <= 1000 for block in blocks)

    def test_empty(self, fs):
        assert fs.split_blocks(b"") == [b""]


class TestWriteAndRead:
    def test_write_places_all_blocks(self, fs):
        block_map = fs.write_file(CORPUS)
        stored = sum(fs.stored_blocks_per_node().values())
        assert stored == block_map.num_stripes * 4

    def test_local_read_roundtrip(self, fs):
        block_map = fs.write_file(CORPUS)
        block = block_map.native_blocks()[0]
        home = block_map.node_of(block)
        payload, elapsed = fs.read_block(block, reader_node=home)
        assert payload == fs.stores[home].get(block)
        assert elapsed >= 0.0

    def test_degraded_read_reconstructs_exact_bytes(self, fs):
        block_map = fs.write_file(CORPUS)
        natives = block_map.native_blocks()
        for block in natives:
            home = block_map.node_of(block)
            original = fs.stores[home].get(block)
            reader = next(
                node for node in fs.topology.node_ids() if node != home
            )
            rebuilt, _ = fs.read_block(block, reader, failed_nodes=frozenset({home}))
            assert rebuilt == original

    def test_degraded_read_of_short_final_block(self, fs):
        """The final (short, unpadded) block must reconstruct byte-exact."""
        data = CORPUS + b"tail without newline"
        block_map = fs.write_file(data)
        block = block_map.native_blocks()[-1]
        home = block_map.node_of(block)
        original = fs.stores[home].get(block)
        reader = (home + 1) % fs.topology.num_nodes
        rebuilt, _ = fs.degraded_read(block, reader, frozenset({home}))
        assert rebuilt == original

    def test_reassembled_file_matches(self, fs):
        block_map = fs.write_file(CORPUS)
        payloads = []
        for block in block_map.native_blocks():
            payload, _ = fs.read_block(block, reader_node=0)
            payloads.append(payload)
        assert b"".join(payloads) == CORPUS

    def test_read_before_write_raises(self, fs):
        with pytest.raises(RuntimeError):
            fs.read_block(BlockId(0, 0, 2), reader_node=0)


class TestRepair:
    def test_repair_restores_all_lost_blocks(self, fs):
        block_map = fs.write_file(CORPUS)
        failed = frozenset({0})
        lost_before = [
            stored.block
            for stored in block_map.all_blocks()
            if stored.node_id in failed
        ]
        originals = {block: fs.stores[0].get(block) for block in lost_before}
        plan = fs.repair_failed_nodes(failed)
        assert plan.lost_block_count == len(lost_before)
        for block in lost_before:
            new_home = block_map.node_of(block)
            assert new_home not in failed
            assert fs.stores[new_home].get(block) == originals[block]

    def test_reads_work_normally_after_repair(self, fs):
        block_map = fs.write_file(CORPUS)
        fs.repair_failed_nodes(frozenset({1}))
        payloads = []
        for block in block_map.native_blocks():
            # Node 1 is still marked failed by the caller; every block now
            # lives elsewhere, so no degraded read is needed.
            payload, _ = fs.read_block(block, reader_node=0, failed_nodes=frozenset({1}))
            payloads.append(payload)
        assert b"".join(payloads) == CORPUS

    def test_repair_hits_decode_plan_cache(self, fs):
        fs.write_file(CORPUS)
        fs.repair_failed_nodes(frozenset({2}))
        info = fs.codec.coder.plan_cache_info()
        assert info["row_misses"] >= 1
        assert info["row_misses"] + info["row_hits"] >= 1

    def test_repair_before_write_raises(self, fs):
        with pytest.raises(RuntimeError):
            fs.repair_failed_nodes(frozenset({0}))
