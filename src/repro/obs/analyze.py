"""Post-hoc trace analytics: timelines, critical paths, attribution.

PR 2's instrumentation is write-only: it records what happened but nothing
reads it back.  This module is the read side -- a pure post-hoc analysis
layer that answers the paper's central question (*where did a run's
makespan go?*) from either a finished :class:`SimulationResult` or an
exported JSONL event log, never touching the engine.

Three analyses come out of a :class:`Timeline`:

* **Critical path** -- the longest dependency chain gating makespan,
  walked backwards from the last-finishing task over slot-handoff edges
  (a task launched the instant another finished on the same node),
  shuffle-wait edges (a reduce whose finish was gated by the last map it
  drained), and submit edges (the chain's root).
* **Map-time attribution** -- the paper's Table-1 decomposition of map
  time into read (local/remote/degraded download) and compute components,
  per locality category; component sums reproduce each category's total
  measured task time to float precision by construction.
* **Decision audit** -- per-scheduler locality/degraded assignment rates,
  EDF guard hit/miss counts and BDF pacing deferrals, folded from the
  ``sched.decision`` event stream when one is available.

``analyze_run`` bundles the three into a :class:`RunAnalysis` whose
:meth:`~RunAnalysis.to_dict` is the versioned run-summary document
(:data:`RUN_SUMMARY_SCHEMA`) consumed by ``repro obs report`` /
``repro obs diff``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.mapreduce.job import MapTaskCategory, TaskKind
from repro.mapreduce.metrics import SimulationResult
from repro.obs.digest import LatencyDigest
from repro.obs.events import ObsEvent

#: Schema tag stamped on every run-summary document.
RUN_SUMMARY_SCHEMA = "repro.run-summary/v1"

#: Two spans closer than this (simulated seconds) are causally adjacent.
_EPS = 1e-6

#: Map categories in report order.
_CATEGORIES = ("node-local", "rack-local", "remote", "degraded")


@dataclass
class TaskSpan:
    """One task attempt's closed execution interval, with its phase split.

    ``read`` is the download phase: degraded-read or remote-fetch time for
    maps, total shuffle-outstanding time for reduces.  ``compute`` is the
    remainder, so ``read + compute == finish - launch`` exactly.
    """

    job_id: int
    kind: str  # "map" | "reduce"
    category: str | None
    node: int
    launch: float
    finish: float
    read: float = 0.0
    attempt: int = 1
    speculative: bool = False

    @property
    def runtime(self) -> float:
        return self.finish - self.launch

    @property
    def compute(self) -> float:
        return self.runtime - self.read


@dataclass
class JobWindow:
    """One job's submit/launch/finish envelope."""

    job_id: int
    submit: float
    first_launch: float
    finish: float

    @property
    def queue_wait(self) -> float:
        """Submit-to-first-launch delay (FIFO queueing in multi-job runs)."""
        return self.first_launch - self.submit

    @property
    def runtime(self) -> float:
        return self.finish - self.first_launch

    @property
    def makespan(self) -> float:
        return self.finish - self.submit


@dataclass
class Timeline:
    """Per-task and per-job spans reconstructed from a completed run."""

    spans: list[TaskSpan] = field(default_factory=list)
    jobs: dict[int, JobWindow] = field(default_factory=dict)
    scheduler: str = "?"
    seed: int | None = None
    failed_nodes: tuple[int, ...] = ()
    #: ``sched.decision`` payload dicts, in emission order (may be empty:
    #: a Timeline built from a bare ``SimulationResult`` has no decisions).
    decisions: list[dict] = field(default_factory=list)
    event_counts: dict[str, int] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Last finish over every span (the makespan's right edge)."""
        return max((span.finish for span in self.spans), default=0.0)

    @property
    def start(self) -> float:
        """Earliest job submission (the makespan's left edge)."""
        return min((window.submit for window in self.jobs.values()), default=0.0)

    @property
    def makespan(self) -> float:
        return self.end - self.start

    @classmethod
    def from_result(cls, result: SimulationResult) -> "Timeline":
        """Build a timeline from a trial's metrics (no event log needed)."""
        timeline = cls(
            scheduler=result.scheduler,
            seed=result.seed,
            failed_nodes=tuple(sorted(result.failed_nodes)),
        )
        for job_id in sorted(result.jobs):
            job = result.jobs[job_id]
            timeline.jobs[job_id] = JobWindow(
                job_id=job_id,
                submit=job.submit_time,
                first_launch=job.first_launch_time,
                finish=job.finish_time,
            )
            for task in job.tasks:
                if not math.isfinite(task.finish_time):
                    continue  # killed mid-flight; no closed interval
                timeline.spans.append(
                    TaskSpan(
                        job_id=job_id,
                        kind="reduce" if task.kind is TaskKind.REDUCE else "map",
                        category=task.category.value if task.category else None,
                        node=task.slave_id,
                        launch=task.launch_time,
                        finish=task.finish_time,
                        read=task.download_time,
                        attempt=task.attempt,
                        speculative=task.speculative,
                    )
                )
        timeline.spans.sort(key=lambda span: (span.launch, span.finish, span.node))
        return timeline

    @classmethod
    def from_events(cls, events: list[ObsEvent]) -> "Timeline":
        """Rebuild the timeline from an exported event log.

        ``task.launch`` / ``task.finish`` pairs are matched on
        ``(job, kind, node, block-or-reducer)`` in FIFO order; unmatched
        launches (killed attempts) leave no closed span, exactly like
        :meth:`from_result`.  Decision payloads and per-kind counts ride
        along.
        """
        timeline = cls()
        submits: dict[int, float] = {}
        finishes: dict[int, float] = {}
        first_launches: dict[int, float] = {}
        open_launches: dict[tuple, list[ObsEvent]] = {}
        for event in events:
            kind = event.kind
            timeline.event_counts[kind] = timeline.event_counts.get(kind, 0) + 1
            fields = event.fields
            if kind == "job.submit":
                submits[fields["job_id"]] = event.time
            elif kind == "job.finish":
                finishes[fields["job_id"]] = event.time
            elif kind == "task.launch":
                job_id = fields["job_id"]
                first_launches.setdefault(job_id, event.time)
                open_launches.setdefault(_task_key(fields), []).append(event)
            elif kind == "task.kill":
                queue = open_launches.get(_task_key(fields))
                if queue:
                    queue.pop(0)
            elif kind == "task.finish":
                queue = open_launches.get(_task_key(fields))
                if not queue:
                    continue  # finish without a recorded launch (truncated log)
                # ``task.finish`` carries the measured runtime, so the
                # matching launch is the one at finish - runtime; with
                # concurrent speculative attempts FIFO order can lie.
                expected = event.time - fields.get("runtime", 0.0)
                launch = min(queue, key=lambda entry: abs(entry.time - expected))
                queue.remove(launch)
                timeline.spans.append(
                    TaskSpan(
                        job_id=fields["job_id"],
                        kind=fields["task"],
                        category=fields.get("category"),
                        node=fields["node"],
                        launch=launch.time,
                        finish=event.time,
                        read=fields.get("download", 0.0),
                        attempt=launch.fields.get("attempt", 1),
                        speculative=launch.fields.get("speculative", False),
                    )
                )
            elif kind == "sched.decision":
                timeline.decisions.append(dict(fields, t=event.time))
                timeline.scheduler = fields.get("scheduler", timeline.scheduler)
        for job_id, submit in sorted(submits.items()):
            finish = finishes.get(job_id, math.nan)
            timeline.jobs[job_id] = JobWindow(
                job_id=job_id,
                submit=submit,
                first_launch=first_launches.get(job_id, math.nan),
                finish=finish,
            )
        timeline.spans.sort(key=lambda span: (span.launch, span.finish, span.node))
        return timeline


def _task_key(fields: dict) -> tuple:
    """Launch/finish/kill correlation key for one task identity."""
    which = fields.get("block", fields.get("reduce_index"))
    return (fields["job_id"], fields["task"], fields["node"], which)


# -- critical path -------------------------------------------------------------


@dataclass
class CriticalStep:
    """One link of the critical path: a span plus how it was gated.

    ``edge`` names the dependency that made the span start (or, for
    shuffle-gated reduces, finish) when it did: ``"slot-wait"`` (a task
    freed this node's slot at the launch instant), ``"shuffle-wait"``
    (a reduce drained the predecessor map's output), or ``"submit"``
    (nothing earlier gated it -- the chain's root).
    """

    span: TaskSpan
    edge: str

    def to_dict(self) -> dict:
        return {
            "job": self.span.job_id,
            "kind": self.span.kind,
            "category": self.span.category,
            "node": self.span.node,
            "launch": self.span.launch,
            "finish": self.span.finish,
            "read_s": self.span.read,
            "compute_s": self.span.compute,
            "edge": self.edge,
        }


def critical_path(timeline: Timeline) -> list[CriticalStep]:
    """The longest dependency chain ending at the run's last completion.

    Walks backwards from the last-finishing span.  Each hop prefers the
    strongest explanation of the current span's start: a slot handoff on
    the same node (predecessor finish within :data:`_EPS` of this launch),
    else -- for reduces that spent time waiting on shuffle -- the
    last-finishing map of the same job, else the job submission (root).
    Returned in execution order (root first).
    """
    if not timeline.spans:
        return []
    last = max(timeline.spans, key=lambda span: (span.finish, span.launch, span.node))
    by_node: dict[int, list[TaskSpan]] = {}
    maps_by_job: dict[int, list[TaskSpan]] = {}
    for span in timeline.spans:
        by_node.setdefault(span.node, []).append(span)
        if span.kind == "map":
            maps_by_job.setdefault(span.job_id, []).append(span)

    chain: list[CriticalStep] = []
    current = last
    visited: set[int] = set()
    while True:
        if id(current) in visited:
            break  # defensive: malformed timestamps must not loop forever
        visited.add(id(current))
        predecessor = None
        edge = "submit"
        # Slot handoff: a span on this node finished at our launch instant.
        for candidate in by_node[current.node]:
            if candidate is current:
                continue
            if abs(candidate.finish - current.launch) <= _EPS:
                predecessor, edge = candidate, "slot-wait"
                break
        if predecessor is None and current.kind == "reduce" and current.read > 0:
            # Shuffle-gated: this reduce idled on outstanding map output, so
            # the last map of its job finishing is what let it complete.
            candidates = [
                span
                for span in maps_by_job.get(current.job_id, ())
                if span.finish <= current.finish + _EPS and span is not current
            ]
            if candidates:
                predecessor = max(
                    candidates, key=lambda span: (span.finish, span.launch, span.node)
                )
                edge = "shuffle-wait"
        chain.append(CriticalStep(span=current, edge=edge))
        if predecessor is None:
            break
        current = predecessor
    chain.reverse()
    return chain


def path_coverage(timeline: Timeline, chain: list[CriticalStep]) -> float:
    """Fraction of the makespan the chain's spans cover (gaps excluded)."""
    if not chain or timeline.makespan <= 0:
        return 0.0
    covered = sum(step.span.runtime for step in chain)
    return min(covered / timeline.makespan, 1.0)


# -- map-time attribution ------------------------------------------------------


def map_time_breakdown(timeline: Timeline) -> dict:
    """The Table-1 decomposition: read/compute seconds per task category.

    Every map category row satisfies ``read_s + compute_s == total_s``
    exactly (compute is defined as the measured remainder), so summing the
    components reproduces the run's measured map time to float precision.
    The ``reduce`` row's read component is shuffle-outstanding time.
    """
    rows: dict[str, dict] = {}
    for label in (*_CATEGORIES, "reduce"):
        rows[label] = {"tasks": 0, "read_s": 0.0, "compute_s": 0.0, "total_s": 0.0}
    for span in timeline.spans:
        label = "reduce" if span.kind == "reduce" else (span.category or "node-local")
        row = rows.setdefault(
            label, {"tasks": 0, "read_s": 0.0, "compute_s": 0.0, "total_s": 0.0}
        )
        row["tasks"] += 1
        row["read_s"] += span.read
        row["compute_s"] += span.compute
        row["total_s"] += span.runtime
    for row in rows.values():
        row["mean_s"] = row["total_s"] / row["tasks"] if row["tasks"] else None
    return rows


# -- scheduler decision audit --------------------------------------------------


def decision_audit(decisions: list[dict]) -> dict | None:
    """Fold a ``sched.decision`` stream into per-policy counters.

    Reports assignment mix (local / rack-local / remote / degraded, with
    locality and degraded rates), EDF guard verdicts (degraded launches
    admitted vs rejected per guard), and BDF/EDF pacing deferrals.  Returns
    ``None`` when the run carried no decision trace.
    """
    if not decisions:
        return None
    audit = {
        "scheduler": decisions[0].get("scheduler", "?"),
        "decisions": len(decisions),
        "assigned": {label: 0 for label in _CATEGORIES},
        "skipped": {},
        "guard": {"admitted": 0, "slave_rejected": 0, "rack_rejected": 0},
        "pacing_deferrals": 0,
    }
    for decision in decisions:
        action = decision.get("action")
        if action == "assign":
            category = decision.get("category", "node-local")
            audit["assigned"][category] = audit["assigned"].get(category, 0) + 1
            if decision.get("reason") == "degraded-first":
                audit["guard"]["admitted"] += 1
        elif action == "skip-degraded":
            reason = decision.get("reason", "?")
            audit["skipped"][reason] = audit["skipped"].get(reason, 0) + 1
            if reason == "pacing":
                audit["pacing_deferrals"] += 1
            elif reason == "slave-guard":
                audit["guard"]["slave_rejected"] += 1
            elif reason == "rack-guard":
                audit["guard"]["rack_rejected"] += 1
    assigned = audit["assigned"]
    total = sum(assigned.values())
    audit["assignments"] = total
    local = assigned.get("node-local", 0) + assigned.get("rack-local", 0)
    audit["locality_rate"] = local / total if total else None
    audit["degraded_rate"] = assigned.get("degraded", 0) / total if total else None
    return audit


# -- the bundled analysis ------------------------------------------------------


@dataclass
class RunAnalysis:
    """Everything ``repro obs analyze`` derives from one run."""

    timeline: Timeline
    chain: list[CriticalStep]
    breakdown: dict
    audit: dict | None
    digests: dict[str, LatencyDigest]

    def to_dict(self) -> dict:
        """The versioned run-summary document (pure simulated-time data)."""
        timeline = self.timeline
        return {
            "schema": RUN_SUMMARY_SCHEMA,
            "scheduler": timeline.scheduler,
            "seed": timeline.seed,
            "failed_nodes": list(timeline.failed_nodes),
            "makespan_s": timeline.makespan,
            "tasks": len(timeline.spans),
            "jobs": {
                str(job_id): {
                    "submit": window.submit,
                    "first_launch": window.first_launch,
                    "finish": window.finish,
                    "queue_wait_s": window.queue_wait,
                    "runtime_s": window.runtime,
                }
                for job_id, window in sorted(timeline.jobs.items())
            },
            "breakdown": self.breakdown,
            "critical_path": {
                "steps": [step.to_dict() for step in self.chain],
                "coverage": path_coverage(timeline, self.chain),
            },
            "audit": self.audit,
            "digests": {
                name: digest.to_dict() for name, digest in sorted(self.digests.items())
            },
            "event_counts": dict(sorted(timeline.event_counts.items())),
        }

    # -- rendering ------------------------------------------------------------

    def summary_paragraph(self) -> str:
        """The one-paragraph makespan + breakdown line (``--summary``)."""
        timeline = self.timeline
        rows = self.breakdown
        map_total = sum(rows[label]["total_s"] for label in _CATEGORIES if label in rows)
        parts = []
        for label in _CATEGORIES:
            row = rows.get(label)
            if not row or not row["tasks"]:
                continue
            share = 100.0 * row["total_s"] / map_total if map_total else 0.0
            parts.append(
                f"{label} {row['total_s']:.1f}s ({row['tasks']} tasks, {share:.0f}%)"
            )
        degraded = rows.get("degraded", {})
        read = degraded.get("read_s", 0.0)
        sentences = [
            f"{timeline.scheduler} run"
            + (f" (seed {timeline.seed})" if timeline.seed is not None else "")
            + f": makespan {timeline.makespan:.1f} s over "
            f"{len(timeline.jobs)} job(s), {len(timeline.spans)} task(s).",
            f"Map time {map_total:.1f} s = " + " + ".join(parts)
            + (f"; degraded reads cost {read:.1f} s." if read else "."),
        ]
        if self.chain:
            dominant = max(
                self.chain, key=lambda step: step.span.runtime
            )
            sentences.append(
                f"Critical path: {len(self.chain)} step(s) covering "
                f"{100.0 * path_coverage(timeline, self.chain):.0f}% of the "
                f"makespan, longest step a {dominant.span.category or dominant.span.kind} "
                f"{dominant.span.kind} task ({dominant.span.runtime:.1f} s)."
            )
        if self.audit:
            guard = self.audit["guard"]
            sentences.append(
                f"Decisions: {self.audit['assignments']} assignment(s), "
                f"locality rate {_rate(self.audit['locality_rate'])}, degraded rate "
                f"{_rate(self.audit['degraded_rate'])}, EDF guard "
                f"{guard['admitted']} admitted / {guard['slave_rejected']} slave- "
                f"/ {guard['rack_rejected']} rack-rejected, "
                f"{self.audit['pacing_deferrals']} pacing deferral(s)."
            )
        return " ".join(sentences)

    def render_text(self) -> str:
        """The full plain-text analysis report (``repro obs analyze``)."""
        timeline = self.timeline
        lines = [
            "== run analysis ==",
            self.summary_paragraph(),
            "",
            "map-time breakdown (read + compute = total, per category):",
        ]
        for label, row in self.breakdown.items():
            if not row["tasks"]:
                continue
            mean = row["mean_s"] if row["mean_s"] is not None else float("nan")
            lines.append(
                f"  {label:<12} {row['tasks']:>5} tasks  read {row['read_s']:>9.1f}s"
                f"  compute {row['compute_s']:>9.1f}s  total {row['total_s']:>9.1f}s"
                f"  mean {mean:>7.2f}s"
            )
        lines.append("")
        lines.append(
            f"critical path ({len(self.chain)} steps, "
            f"{100.0 * path_coverage(timeline, self.chain):.1f}% coverage):"
        )
        for step in self.chain:
            span = step.span
            lines.append(
                f"  [{step.edge:<12}] t={span.launch:>8.1f}..{span.finish:>8.1f}"
                f"  job {span.job_id} {span.kind:<6} "
                f"{span.category or '-':<11} node {span.node:<3}"
                f" read {span.read:>6.1f}s compute {span.compute:>6.1f}s"
            )
        if self.audit:
            lines.append("")
            lines.append(f"decision audit ({self.audit['scheduler']}):")
            for category, count in self.audit["assigned"].items():
                if count:
                    lines.append(f"  assign {category:<12} {count}")
            for reason, count in sorted(self.audit["skipped"].items()):
                lines.append(f"  skip   {reason:<12} {count}")
        degraded = self.digests.get("degraded_read")
        if degraded is not None and degraded.count:
            p = degraded.percentiles()
            lines.append("")
            lines.append(
                f"degraded-read latency: n={p['count']} p50={p['p50']:.2f}s "
                f"p95={p['p95']:.2f}s p99={p['p99']:.2f}s"
            )
        return "\n".join(lines)


def _rate(value: float | None) -> str:
    return f"{100.0 * value:.0f}%" if value is not None else "n/a"


def analyze_timeline(timeline: Timeline) -> RunAnalysis:
    """Run the full analysis bundle over a prepared timeline."""
    digests = {
        "degraded_read": LatencyDigest(),
        "map_runtime": LatencyDigest(),
        "reduce_runtime": LatencyDigest(),
    }
    for span in timeline.spans:
        if span.kind == "map":
            digests["map_runtime"].add(span.runtime)
            if span.category == "degraded":
                digests["degraded_read"].add(span.read)
        else:
            digests["reduce_runtime"].add(span.runtime)
    return RunAnalysis(
        timeline=timeline,
        chain=critical_path(timeline),
        breakdown=map_time_breakdown(timeline),
        audit=decision_audit(timeline.decisions),
        digests=digests,
    )


def analyze_run(source) -> RunAnalysis:
    """Analyze a run from a :class:`SimulationResult` or an event list."""
    if isinstance(source, SimulationResult):
        timeline = Timeline.from_result(source)
    elif isinstance(source, Timeline):
        timeline = source
    else:
        timeline = Timeline.from_events(list(source))
    return analyze_timeline(timeline)


# -- process-pool helpers ------------------------------------------------------


def traced_decisions(config) -> list[dict]:
    """Run one trial and return its decision trace as plain dicts.

    Module-level so :func:`repro.experiments.common.run_many` can pickle
    it; the golden serial-vs-parallel decision-trace test is built on it.
    """
    from repro.mapreduce.simulation import run_simulation
    from repro.obs.collector import ObservabilityCollector

    collector = ObservabilityCollector(keep_events=False)
    run_simulation(config, observer=collector)
    return [decision.to_dict() for decision in collector.decisions]
