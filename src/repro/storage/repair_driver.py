"""The online repair driver: background reconstruction during jobs.

:mod:`repro.storage.repair` plans repairs *offline*; this module executes
them **inside the running simulation**, the way HDFS-RAID's RaidNode (or
Colossus' rebuilder) does: lost and corrupt blocks are queued, a small pool
of worker processes rebuilds them one block at a time, and the rebuilt
bytes travel over the same :class:`~repro.cluster.nodetree.NodeTree` links
that map and shuffle traffic uses -- so repair and foreground work contend
for bandwidth, the interaction the MDS-queue line of work models.

Mechanics
---------

* Every repair flow additionally crosses a virtual **throttle link**
  (:data:`RepairDriver.THROTTLE`) whose capacity is the configured
  bandwidth cap, so the combined repair rate never exceeds the cap while
  each flow still competes max-min fairly on the real links it crosses.
* When a rebuilt block lands, the :class:`~repro.storage.namenode.BlockMap`
  is updated in place; pending degraded map tasks waiting on that block
  reclassify back to normal locality
  (:meth:`~repro.core.tasks.JobTaskState.on_block_repaired`), and parked
  ``--wait-for-repair`` tasks are woken to re-check their stripe.
* A source or destination node dying mid-rebuild aborts the affected
  flows (the connection broke) and the block is re-planned against the
  current survivors after a backoff; stripes with fewer than ``k``
  readable survivors are *deferred* until a recovery or another repair
  makes them decodable again.
* An optional **scrubber** process walks the live nodes round-robin and
  proactively reports checksum-bad blocks (see
  :class:`~repro.faults.schedule.CorruptEvent`); without it, corruption is
  only discovered when a reader trips over the bad copy.

Repair runs only while jobs are active: once the last job finishes the
workers let in-flight rebuilds drain and stop dequeuing new work.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.nodetree import NodeTree
from repro.faults.errors import DataUnavailableError
from repro.faults.records import RepairRecord
from repro.sim.engine import Interrupt, Process, Simulator, Timeout
from repro.sim.rng import RngStreams
from repro.storage.block import BlockId
from repro.storage.namenode import BlockMap
from repro.storage.repair import RepairPlanner

if TYPE_CHECKING:  # typing only; avoids a runtime import cycle
    from repro.mapreduce.master import JobTracker

#: Interrupt cause thrown into a repair worker whose flow endpoints died.
REPAIR_ABORT_CAUSE = "repair-source-lost"


@dataclass(frozen=True)
class RepairConfig:
    """Knobs of the online repair driver.

    Parameters
    ----------
    bandwidth_cap:
        Combined repair bandwidth in bytes/s (the throttle-link capacity).
        Real clusters cap reconstruction traffic so it cannot starve
        foreground I/O; a generous cap repairs fast but visibly slows the
        map phase.
    concurrent_repairs:
        Worker processes rebuilding blocks in parallel.
    retry_backoff:
        Seconds a worker waits after a mid-rebuild abort before
        re-planning the block.
    scrub_interval:
        Period of the proactive corruption scrubber; ``None`` (default)
        disables scrubbing, leaving corruption to lazy read-time detection.
    """

    bandwidth_cap: float
    concurrent_repairs: int = 2
    retry_backoff: float = 5.0
    scrub_interval: float | None = None

    def __post_init__(self) -> None:
        if self.bandwidth_cap <= 0:
            raise ValueError(
                f"repair bandwidth cap must be positive, got {self.bandwidth_cap}"
            )
        if self.concurrent_repairs < 1:
            raise ValueError(
                f"need at least one repair worker, got {self.concurrent_repairs}"
            )
        if self.retry_backoff <= 0:
            raise ValueError(
                f"retry backoff must be positive, got {self.retry_backoff}"
            )
        if self.scrub_interval is not None and self.scrub_interval <= 0:
            raise ValueError(
                f"scrub interval must be positive, got {self.scrub_interval}"
            )


class RepairDriver:
    """Executes block rebuilds as background flows on the NodeTree.

    Parameters
    ----------
    sim, config, block_map, nodetree, rng:
        The simulation engine, driver knobs, placement metadata, network
        and random streams of the trial.
    tracker:
        The :class:`~repro.mapreduce.master.JobTracker`; the driver uses
        its failure/blacklist view for planning and notifies it when a
        block lands (task reclassification + parked-task wakeup).
    block_size:
        Bytes per block (every rebuild downloads ``k`` of them).
    bus:
        Optional observability event bus.
    """

    #: Name of the virtual throttle link capping combined repair bandwidth.
    THROTTLE = "repair:cap"

    def __init__(
        self,
        sim: Simulator,
        config: RepairConfig,
        block_map: BlockMap,
        nodetree: NodeTree,
        rng: RngStreams,
        tracker: "JobTracker",
        block_size: float,
        bus=None,
    ) -> None:
        if not nodetree.has_throttle(self.THROTTLE):
            raise RuntimeError(
                f"NodeTree lacks the {self.THROTTLE!r} throttle link; call "
                "nodetree.add_throttle(RepairDriver.THROTTLE, cap) before "
                "wiring the repair driver (and before set_observer)"
            )
        self.sim = sim
        self.config = config
        self.block_map = block_map
        self.nodetree = nodetree
        self.rng = rng
        self.tracker = tracker
        self.block_size = float(block_size)
        self.bus = bus
        self.planner = RepairPlanner(block_map, nodetree.topology)

        self._queue: deque[BlockId] = deque()
        self._queued: set[BlockId] = set()
        #: In-flight rebuilds by block: endpoints, flow events, worker process.
        self._in_flight: dict[BlockId, dict] = {}
        self._wakeup = None
        self._worker_procs: list[Process] = []

        # -- cumulative stats (also available per-block in faults.repairs) --
        self.blocks_repaired = 0
        self.bytes_moved = 0.0
        self.tasks_reclaimed = 0

    # -- wiring ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker pool (and the scrubber, if configured)."""
        for index in range(self.config.concurrent_repairs):
            process = self.sim.spawn(
                self._worker(index), name=f"repair:{index}"
            )
            self._worker_procs.append(process)
        if self.config.scrub_interval is not None:
            self.sim.spawn(self._scrubber(), name="scrubber")
        for node_id in sorted(self.tracker.failed_nodes):
            self.on_node_failed(node_id)

    # -- master-side notifications --------------------------------------------

    def on_node_failed(self, node_id: int) -> None:
        """A node left the live view: queue every block it held for rebuild."""
        for block in self.block_map.blocks_on_node(node_id):
            self.enqueue(block)

    def on_availability_changed(self) -> None:
        """A recovery or repair landed: deferred stripes may now be decodable."""
        self._kick()

    def enqueue(self, block: BlockId) -> None:
        """Queue one block for rebuild (idempotent while queued/in flight)."""
        if block in self._queued or block in self._in_flight:
            return
        self._queue.append(block)
        self._queued.add(block)
        self._note_backlog()
        self._kick()

    def _note_backlog(self) -> None:
        """Publish the repair backlog depth after a stable transition.

        The depth series is what reliability campaigns watch for
        boundedness: an open-loop failure stream whose repair rate cannot
        keep up shows up here as unbounded growth.
        """
        if self.bus is not None:
            self.bus.emit(
                "repair.backlog", self.sim.now,
                depth=self.pending_blocks, queued=len(self._queue),
                in_flight=len(self._in_flight),
            )

    def abort_flows_from(self, node_id: int) -> None:
        """A node died: break every in-flight rebuild it was an endpoint of.

        The affected flows are cancelled (their completion events never
        fire) and the worker is interrupted so it re-plans the block
        against current survivors after a backoff.
        """
        for entry in list(self._in_flight.values()):
            if entry["aborted"]:
                continue
            if node_id not in entry["sources"] and node_id != entry["destination"]:
                continue
            entry["aborted"] = True
            for flow in entry["flows"]:
                if not flow.fired:
                    self.nodetree.cancel(flow)
            entry["process"].interrupt(REPAIR_ABORT_CAUSE)

    @property
    def pending_blocks(self) -> int:
        """Blocks queued (including deferred) but not yet rebuilt."""
        return len(self._queue) + len(self._in_flight)

    # -- worker pool -----------------------------------------------------------

    def _worker(self, index: int) -> Generator:
        while True:
            if self.tracker.finished:
                return
            block = self._next_repairable()
            if block is None:
                yield self._wait_for_work()
                continue
            yield from self._repair_block(block, self._worker_procs[index])

    def _next_repairable(self) -> BlockId | None:
        """Pop the oldest queued block that can be rebuilt right now.

        Blocks that no longer need repair (their node recovered and the
        copy is clean) are dropped; undecodable stripes stay queued
        (*deferred*) until availability changes.
        """
        for block in list(self._queue):
            home = self.block_map.node_of(block)
            lost = home in self.tracker.failed_nodes
            corrupt = self.block_map.is_corrupt(block)
            if not lost and not corrupt:
                self._queue.remove(block)
                self._queued.discard(block)
                self._note_backlog()
                continue
            if self._can_repair(block):
                self._queue.remove(block)
                self._queued.discard(block)
                return block
        return None

    def _can_repair(self, block: BlockId) -> bool:
        """Whether ``block``'s stripe has ``k`` readable, assignable sources."""
        readable = [
            stored
            for stored in self.block_map.readable_stripe_blocks(
                block.stripe_id, self.tracker.failed_nodes
            )
            if stored.block != block
            and stored.node_id not in self.tracker.blacklisted
        ]
        return len(readable) >= self.block_map.params.k

    def _repair_block(self, block: BlockId, process: Process) -> Generator:
        sim = self.sim
        tracker = self.tracker
        started = sim.now
        attempts = 0
        while True:
            attempts += 1
            # Concurrent workers may be rebuilding other blocks of this
            # stripe right now; their planned destinations are not in the
            # BlockMap yet, so thread them through explicitly or two
            # rebuilds can land same-stripe units on one node (the batch
            # planner's distinct-node fix, applied to the online driver).
            in_flight_nodes = {
                entry["destination"]
                for other, entry in self._in_flight.items()
                if other.stripe_id == block.stripe_id
            }
            in_flight_racks: dict[int, int] = {}
            for node_id in in_flight_nodes:
                rack = self.nodetree.topology.rack_of(node_id)
                in_flight_racks[rack] = in_flight_racks.get(rack, 0) + 1
            try:
                repair = self.planner.plan_block(
                    block,
                    tracker.failed_nodes,
                    self.rng,
                    excluded=frozenset(tracker.blacklisted),
                    extra_rack_counts=in_flight_racks or None,
                    extra_stripe_nodes=in_flight_nodes or None,
                )
            except DataUnavailableError:
                # Raced with another failure: defer until availability changes.
                self._queue.append(block)
                self._queued.add(block)
                self._note_backlog()
                return
            sources = tuple(
                stored for stored in repair.sources
                if stored.node_id != repair.destination
            )
            if self.bus is not None:
                self.bus.emit(
                    "repair.start", sim.now,
                    block=str(block), destination=repair.destination,
                    sources=sorted(stored.node_id for stored in sources),
                    attempt=attempts, queued=len(self._queue),
                )
            flows = [
                self.nodetree.transfer_throttled(
                    stored.node_id, repair.destination, self.block_size,
                    self.THROTTLE,
                )
                for stored in sources
            ]
            self._in_flight[block] = {
                "sources": {stored.node_id for stored in sources},
                "destination": repair.destination,
                "flows": flows,
                "process": process,
                "aborted": False,
            }
            try:
                if flows:
                    yield sim.all_of(flows)
            except Interrupt as interrupt:
                self._in_flight.pop(block, None)
                if interrupt.cause != REPAIR_ABORT_CAUSE:
                    raise
                if self.bus is not None:
                    self.bus.emit(
                        "repair.retry", sim.now,
                        block=str(block), attempt=attempts,
                    )
                yield Timeout(self.config.retry_backoff)
                continue
            self._in_flight.pop(block, None)
            was_corrupt = self.block_map.is_corrupt(block)
            self.block_map.reassign(block, repair.destination)
            if was_corrupt:
                self.block_map.clear_corrupt(block)
            bytes_fetched = len(flows) * self.block_size
            reclaimed = tracker.on_block_repaired(block, repair.destination)
            self.blocks_repaired += 1
            self.bytes_moved += bytes_fetched
            self.tasks_reclaimed += reclaimed
            tracker.faults.repairs.append(
                RepairRecord(
                    block=str(block),
                    destination=repair.destination,
                    started_at=started,
                    finished_at=sim.now,
                    bytes_fetched=bytes_fetched,
                    reclaimed_tasks=reclaimed,
                    attempts=attempts,
                )
            )
            if self.bus is not None:
                self.bus.emit(
                    "repair.end", sim.now,
                    block=str(block), destination=repair.destination,
                    duration=sim.now - started, attempts=attempts,
                    reclaimed_tasks=reclaimed,
                )
            self._note_backlog()
            return

    def _wait_for_work(self):
        if self._wakeup is None or self._wakeup.fired:
            self._wakeup = self.sim.event(name="repair-wakeup")
        return self._wakeup

    def _kick(self) -> None:
        if self._wakeup is not None and not self._wakeup.fired:
            self._wakeup.succeed()

    # -- proactive scrubbing ----------------------------------------------------

    def _scrubber(self) -> Generator:
        """Walk live nodes round-robin, reporting checksum-bad blocks.

        One node is scanned per tick, the way real scrubbers pace
        themselves to bound verification I/O.
        """
        nodes = sorted(self.nodetree.topology.node_ids())
        cursor = 0
        while not self.tracker.finished:
            yield Timeout(self.config.scrub_interval)
            if self.tracker.finished:
                return
            node_id = nodes[cursor % len(nodes)]
            cursor += 1
            if node_id in self.tracker.failed_nodes:
                continue
            for block in self.block_map.blocks_on_node(node_id):
                if self.block_map.is_corrupt(block):
                    self.tracker.report_corruption(block, via="scrub")
