"""Erasure-coding substrate.

This package implements, from scratch, everything the paper's storage layer
(HDFS-RAID) needs from an erasure code:

* :mod:`repro.ec.galois` -- arithmetic over GF(2^8) with log/antilog tables.
* :mod:`repro.ec.matrix` -- dense matrices over GF(2^8), including inversion,
  Vandermonde, and Cauchy constructions.
* :mod:`repro.ec.reed_solomon` -- a systematic Reed-Solomon ``(n, k)`` coder
  able to decode the original data from *any* ``k`` of the ``n`` blocks.
* :mod:`repro.ec.codec` -- the :class:`~repro.ec.codec.ErasureCodec` facade
  used by the storage layer, parameterised by
  :class:`~repro.ec.codec.CodeParams`.
* :mod:`repro.ec.stripe` -- stripe layout helpers and the ``B_{i,j}`` /
  ``P_{i,j}`` block-naming scheme used throughout the paper's examples.
"""

from repro.ec.codec import CodeParams, ErasureCodec
from repro.ec.reed_solomon import ReedSolomon
from repro.ec.stripe import BlockKind, StripeLayout, block_name

__all__ = [
    "BlockKind",
    "CodeParams",
    "ErasureCodec",
    "ReedSolomon",
    "StripeLayout",
    "block_name",
]
