#!/usr/bin/env python
"""Analyze one failure-mode run: critical path, attribution, dashboard.

The write side (PR 2) records what happened; this example is the read
side.  It runs the paper's fig-7-style scenario -- a node dies five
seconds into an EDF job -- then asks *where the makespan went*:

* the Table-1 map-time breakdown (read vs compute per locality class),
* the critical path that gated completion,
* the scheduler decision audit (EDF guard verdicts, degraded rate),
* and a self-contained HTML dashboard you can open in any browser.

Run:  python examples/analyze_run.py
      open run-analysis.html
"""

from repro import FailurePattern, JobConfig, SimulationConfig, run_simulation
from repro.obs import ObservabilityCollector, analyze_run, report_html, write_text

CONFIG = SimulationConfig(
    scheduler="EDF",
    failure=FailurePattern.SINGLE_NODE,
    jobs=(JobConfig(num_blocks=400, num_reduce_tasks=8),),
    seed=7,
)


def main() -> None:
    # The collector is passive: the result is byte-identical with or
    # without it.  It adds the sched.decision stream the audit feeds on.
    collector = ObservabilityCollector()
    result = run_simulation(CONFIG, observer=collector)

    analysis = analyze_run(result)
    analysis.timeline.decisions = [d.to_dict() for d in collector.decisions]
    analysis = analyze_run(analysis.timeline)  # re-fold with the audit
    print(analysis.render_text())

    write_text("run-analysis.html", report_html(analysis.to_dict()))
    print("\nwrote run-analysis.html (self-contained; open it anywhere)")


if __name__ == "__main__":
    main()
