"""Property-based tests of the fluid network's conservation laws."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import ExclusivePathNetwork, FluidNetwork


@st.composite
def flow_plan(draw):
    """Random links, flows (with paths over those links) and start times."""
    num_links = draw(st.integers(min_value=1, max_value=4))
    capacities = [
        draw(st.floats(min_value=1.0, max_value=100.0)) for _ in range(num_links)
    ]
    num_flows = draw(st.integers(min_value=1, max_value=6))
    flows = []
    for _ in range(num_flows):
        path = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_links - 1),
                min_size=1,
                max_size=num_links,
                unique=True,
            )
        )
        size = draw(st.floats(min_value=1.0, max_value=500.0))
        start = draw(st.floats(min_value=0.0, max_value=50.0))
        flows.append((path, size, start))
    return capacities, flows


def run_plan(network_cls, capacities, flows):
    sim = Simulator()
    network = network_cls(sim)
    for index, capacity in enumerate(capacities):
        network.add_link(f"l{index}", capacity)
    completions = {}

    def launch(label, path, size, start):
        def process():
            yield Timeout(start)
            done = network.transfer([f"l{i}" for i in path], size)
            yield done
            completions[label] = sim.now

        sim.spawn(process())

    for label, (path, size, start) in enumerate(flows):
        launch(label, path, size, start)
    sim.run(until=1e7)
    return completions


@settings(max_examples=40, deadline=None)
@given(flow_plan())
def test_all_flows_complete(plan):
    capacities, flows = plan
    completions = run_plan(FluidNetwork, capacities, flows)
    assert len(completions) == len(flows)


@settings(max_examples=40, deadline=None)
@given(flow_plan())
def test_no_flow_beats_its_uncontended_time(plan):
    """A flow can never finish faster than size / bottleneck-capacity."""
    capacities, flows = plan
    completions = run_plan(FluidNetwork, capacities, flows)
    for label, (path, size, start) in enumerate(flows):
        bottleneck = min(capacities[i] for i in path)
        assert completions[label] >= start + size / bottleneck - 1e-6


@settings(max_examples=40, deadline=None)
@given(flow_plan())
def test_link_work_conservation(plan):
    """A single-link system finishes no later than total-bytes/capacity
    after the last arrival (the link is never idle while work remains)."""
    capacities, flows = plan
    if len(capacities) != 1:
        capacities = capacities[:1]
        flows = [([0], size, start) for _path, size, start in flows]
    completions = run_plan(FluidNetwork, capacities, flows)
    total = sum(size for _path, size, _start in flows)
    last_arrival = max(start for _path, _size, start in flows)
    upper_bound = last_arrival + total / capacities[0] + 1e-6
    assert max(completions.values()) <= upper_bound


@settings(max_examples=25, deadline=None)
@given(flow_plan())
def test_exclusive_never_faster_than_uncontended(plan):
    capacities, flows = plan
    completions = run_plan(ExclusivePathNetwork, capacities, flows)
    assert len(completions) == len(flows)
    for label, (path, size, start) in enumerate(flows):
        bottleneck = min(capacities[i] for i in path)
        assert completions[label] >= start + size / bottleneck - 1e-6
