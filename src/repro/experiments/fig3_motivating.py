"""Figure 3: the paper's motivating example, reproduced event by event.

A five-node, two-rack cluster (Figure 2) stores a 12-block file under a
(4, 2) code; node 1 fails, leaving four degraded tasks.  Each node has two
map slots; processing a block takes 10 s and transferring a block between
racks takes 10 s on an uncontended link.

* Under **locality-first** scheduling all eight local tasks run first
  (0-20 s); the four degraded tasks then start together and the two readers
  in rack 1 halve each other's download bandwidth, so the map phase lasts
  **40 s** (Figure 3(a)).
* Under **degraded-first** scheduling two degraded reads move to the front
  and the other two follow at 10 s; downloads never contend and the map
  phase lasts **30 s** (Figure 3(b)) -- the paper's 25% saving.

The timelines are executed on the real discrete-event engine and NodeTree
(not closed-form arithmetic), so they validate the network-contention model
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import NetworkSpec
from repro.cluster.nodetree import NodeTree
from repro.cluster.topology import ClusterTopology
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import Semaphore

#: Seconds to process one block in a map slot.
PROCESS_TIME = 10.0

#: Seconds to move one block across an uncontended link.
TRANSFER_TIME = 10.0

#: Normalised block size and bandwidth giving a 10 s uncontended transfer.
BLOCK_SIZE = 1.0
BANDWIDTH = BLOCK_SIZE / TRANSFER_TIME


@dataclass(frozen=True)
class ExampleTask:
    """One map task of the walk-through.

    ``download_from`` is the node holding the block (or parity block) the
    task must fetch first: None for node-local tasks, a surviving node id
    for degraded tasks (the example's degraded reads fetch exactly one
    block, because the second surviving block of the stripe already sits on
    the reading node).
    """

    name: str
    download_from: int | None = None

    @property
    def is_degraded(self) -> bool:
        """Whether the task performs a degraded read."""
        return self.download_from is not None


def example_topology() -> ClusterTopology:
    """Figure 2's cluster: nodes 1-3 in rack 0, nodes 4-5 in rack 1.

    Node ids are one less than the paper's labels (paper node 1 = id 0).
    """
    return ClusterTopology.from_rack_sizes([3, 2], map_slots=2, reduce_slots=0)


def locality_first_schedule() -> dict[int, list[ExampleTask]]:
    """Figure 3(a): two locals per node, then the degraded tasks.

    Degraded reads: nodes 2 and 3 fetch P_{0,0} and P_{1,0} from node 5 in
    rack 1 (contending on rack 0's downlink); node 4 fetches P_{2,0} from
    node 3 (cross-rack into rack 1); node 5 fetches P_{3,0} from node 4
    (rack-local, an otherwise idle path).
    """
    return {
        1: [ExampleTask("B_{0,1}"), ExampleTask("B_{4,0}"), ExampleTask("B_{0,0}", download_from=4)],
        2: [ExampleTask("B_{1,1}"), ExampleTask("B_{4,1}"), ExampleTask("B_{1,0}", download_from=4)],
        3: [ExampleTask("B_{2,1}"), ExampleTask("B_{5,0}"), ExampleTask("B_{2,0}", download_from=2)],
        4: [ExampleTask("B_{3,1}"), ExampleTask("B_{5,1}"), ExampleTask("B_{3,0}", download_from=3)],
    }


def degraded_first_schedule() -> dict[int, list[ExampleTask]]:
    """Figure 3(b): two degraded tasks move to the front of the map phase."""
    return {
        1: [ExampleTask("B_{0,0}", download_from=4), ExampleTask("B_{0,1}"), ExampleTask("B_{4,0}")],
        2: [ExampleTask("B_{1,1}"), ExampleTask("B_{4,1}"), ExampleTask("B_{1,0}", download_from=4)],
        3: [ExampleTask("B_{2,0}", download_from=2), ExampleTask("B_{2,1}"), ExampleTask("B_{5,0}")],
        4: [ExampleTask("B_{3,1}"), ExampleTask("B_{5,1}"), ExampleTask("B_{3,0}", download_from=3)],
    }


@dataclass
class TaskTiming:
    """Observed lifecycle of one walk-through task."""

    node: int
    name: str
    launch: float
    download_done: float
    finish: float


def run_schedule(schedule: dict[int, list[ExampleTask]]) -> list[TaskTiming]:
    """Execute a walk-through schedule on the event engine.

    Each node runs its task list in order on its two map slots; a task
    first performs its download (if any) over the NodeTree, then processes
    for :data:`PROCESS_TIME` seconds.
    """
    sim = Simulator()
    topology = example_topology()
    tree = NodeTree(sim, topology, NetworkSpec(rack_download_bw=BANDWIDTH))
    timings: list[TaskTiming] = []

    def node_process(node_id: int, tasks: list[ExampleTask]):
        slots = Semaphore(sim, topology.node(node_id).map_slots, name=f"slots:{node_id}")

        def task_process(task: ExampleTask):
            launch = sim.now
            if task.download_from is not None:
                yield tree.transfer(task.download_from, node_id, BLOCK_SIZE)
            download_done = sim.now
            yield Timeout(PROCESS_TIME)
            timings.append(
                TaskTiming(
                    node=node_id,
                    name=task.name,
                    launch=launch,
                    download_done=download_done,
                    finish=sim.now,
                )
            )
            slots.release()

        for task in tasks:
            yield slots.acquire()
            sim.spawn(task_process(task), name=f"task:{node_id}:{task.name}")

    for node_id, tasks in schedule.items():
        sim.spawn(node_process(node_id, tasks), name=f"node:{node_id}")
    sim.run()
    return timings


def map_phase_duration(timings: list[TaskTiming]) -> float:
    """Length of the map phase: latest task completion."""
    return max(timing.finish for timing in timings)


def main() -> str:
    """Run both schedules and report the paper's 40 s vs 30 s comparison."""
    lf = map_phase_duration(run_schedule(locality_first_schedule()))
    df = map_phase_duration(run_schedule(degraded_first_schedule()))
    saving = (lf - df) / lf
    lines = [
        "Figure 3: motivating example (5 nodes, 2 racks, (4,2) code, node 1 failed)",
        f"  locality-first map phase:  {lf:.0f} s (paper: 40 s)",
        f"  degraded-first map phase:  {df:.0f} s (paper: 30 s)",
        f"  saving: {saving:.0%} (paper: 25%)",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
