"""Named, independently seeded random streams.

Experiments in the paper repeat each configuration over 30 random seeds.  To
keep runs reproducible *and* structurally comparable (so changing how one
component draws randomness does not perturb another component's draws), each
consumer asks :class:`RngStreams` for its own named stream; streams are
derived from the master seed and the name, never from draw order.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent :class:`random.Random` streams.

    Parameters
    ----------
    master_seed:
        Seed for the whole experiment run.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def normal(self, name: str, mean: float, std: float, minimum: float = 1e-9) -> float:
        """Draw a normal variate from stream ``name``, floored at ``minimum``.

        Task processing times in the paper follow normal distributions; the
        floor guards against nonsensical non-positive durations in the tail.
        """
        value = self.stream(name).gauss(mean, std)
        return max(value, minimum)

    def exponential(self, name: str, mean: float) -> float:
        """Draw an exponential variate with the given mean from stream ``name``."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self.stream(name).expovariate(1.0 / mean)

    def choice(self, name: str, items: list):
        """Pick one item uniformly from stream ``name``."""
        return self.stream(name).choice(items)

    def sample(self, name: str, items: list, count: int) -> list:
        """Sample ``count`` distinct items from stream ``name``."""
        return self.stream(name).sample(items, count)

    def shuffle(self, name: str, items: list) -> None:
        """Shuffle ``items`` in place using stream ``name``."""
        self.stream(name).shuffle(items)

    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` from stream ``name``."""
        return self.stream(name).randint(low, high)
