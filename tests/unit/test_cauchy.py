"""Unit and property tests for the Cauchy Reed-Solomon construction."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import matrix as gfm
from repro.ec.cauchy import CauchyReedSolomon, cauchy_generator_matrix, crs_decode, crs_encode
from repro.ec.codec import CodeParams, ErasureCodec
from repro.ec.reed_solomon import ReedSolomon


class TestGenerator:
    def test_systematic_top(self):
        g = cauchy_generator_matrix(6, 4)
        assert np.array_equal(g[:4], gfm.identity(4))

    def test_no_parity_degenerates_to_identity(self):
        assert np.array_equal(cauchy_generator_matrix(3, 3), gfm.identity(3))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            cauchy_generator_matrix(2, 4)
        with pytest.raises(ValueError):
            cauchy_generator_matrix(300, 100)

    @pytest.mark.parametrize("n,k", [(4, 2), (6, 4), (9, 6), (12, 10)])
    def test_mds_property(self, n, k):
        g = cauchy_generator_matrix(n, k)
        combos = list(itertools.combinations(range(n), k))
        if len(combos) > 60:
            combos = combos[:30] + combos[-30:]
        for rows in combos:
            gfm.invert(g[list(rows), :])  # must not raise


class TestCoding:
    def test_roundtrip(self):
        coder = CauchyReedSolomon(6, 4)
        natives = [bytes([i] * 16) for i in range(4)]
        stripe = natives + coder.encode(natives)
        recovered = coder.decode({0: stripe[0], 3: stripe[3], 4: stripe[4], 5: stripe[5]})
        assert recovered == natives

    def test_differs_from_vandermonde_but_both_decode(self):
        natives = [b"block-one!!!", b"block-two!!!"]
        cauchy = CauchyReedSolomon(4, 2)
        vandermonde = ReedSolomon(4, 2)
        parity_c = cauchy.encode(natives)
        parity_v = vandermonde.encode(natives)
        assert parity_c != parity_v  # different constructions
        assert cauchy.decode({2: parity_c[0], 3: parity_c[1]}) == natives
        assert vandermonde.decode({2: parity_v[0], 3: parity_v[1]}) == natives

    def test_convenience_wrappers(self):
        natives = [b"aaaa", b"bbbb"]
        parity = crs_encode(4, 2, natives)
        recovered = crs_decode(4, 2, {1: natives[1], 2: parity[0]})
        assert recovered == natives


class TestCodecIntegration:
    def test_codec_algorithm_selection(self):
        codec = ErasureCodec(CodeParams(4, 2), algorithm="cauchy")
        assert codec.algorithm == "cauchy"
        stripe = codec.encode_stripe([b"dataA", b"dataB"])
        rebuilt = codec.degraded_read(0, {1: stripe[1], 3: stripe[3]}, lost_length=5)
        assert rebuilt == b"dataA"

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            ErasureCodec(CodeParams(4, 2), algorithm="fountain")


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=4),
        st.randoms(use_true_random=False),
    )
    def test_any_k_subset_decodes(self, k, parity, pyrandom):
        n = k + parity
        coder = CauchyReedSolomon(n, k)
        natives = [bytes(pyrandom.randrange(256) for _ in range(12)) for _ in range(k)]
        stripe = natives + coder.encode(natives)
        survivors = pyrandom.sample(range(n), k)
        assert coder.decode({i: stripe[i] for i in survivors}) == natives
