"""Unit tests for the invariant monitor, fed synthetic events.

Each test drives :class:`InvariantMonitor` directly through its bus and
observer-protocol entry points -- no simulator -- so every check can be
exercised in isolation, both ways: a legal sequence records nothing, the
matching illegal sequence records exactly the expected invariant.
"""

from __future__ import annotations

import pickle

import pytest

from repro.check.invariants import (
    InvariantMonitor,
    InvariantViolation,
    InvariantViolationError,
    render_report,
)


def kinds(monitor: InvariantMonitor) -> list[str]:
    return [violation.invariant for violation in monitor.violations]


def launch(monitor, time=1.0, *, job_id=0, node=0, task="map",
           block="B_{0,0}", reduce_index=None, speculative=False, attempt=1):
    fields = {"job_id": job_id, "node": node, "task": task,
              "speculative": speculative, "attempt": attempt}
    if task == "map":
        fields["block"] = block
    else:
        fields["reduce_index"] = reduce_index
    monitor.bus.emit("task.launch", time, **fields)


def finish(monitor, time=2.0, *, job_id=0, node=0, task="map",
           block="B_{0,0}", reduce_index=None):
    fields = {"job_id": job_id, "node": node, "task": task}
    if task == "map":
        fields["block"] = block
    else:
        fields["reduce_index"] = reduce_index
    monitor.bus.emit("task.finish", time, **fields)


class TestSlotAccounting:
    def test_legal_occupancy_is_clean(self):
        monitor = InvariantMonitor()
        monitor.slot_changed(1.0, "map:0", 2, 2, 1)
        monitor.slot_changed(2.0, "map:0", 1, 2, 0)
        assert monitor.violations == []

    def test_occupancy_above_capacity(self):
        monitor = InvariantMonitor()
        monitor.slot_changed(1.0, "map:0", 3, 2, 0)
        assert kinds(monitor) == ["slot-accounting"]

    def test_negative_occupancy(self):
        monitor = InvariantMonitor()
        monitor.slot_changed(1.0, "map:0", -1, 2, 0)
        assert kinds(monitor) == ["slot-accounting"]

    def test_waiters_queued_with_free_slots(self):
        monitor = InvariantMonitor()
        monitor.slot_changed(1.0, "map:0", 1, 2, 3)
        assert kinds(monitor) == ["slot-accounting"]
        assert "queued waiter" in monitor.violations[0].message


class TestLinkCapacity:
    def test_allocation_within_capacity_is_clean(self):
        monitor = InvariantMonitor()
        monitor.register_links({"up:0": 1e9})
        monitor.rates_updated(1.0, {"up:0": 1e9})  # exactly full is fine
        assert monitor.violations == []

    def test_oversubscribed_link(self):
        monitor = InvariantMonitor()
        monitor.register_links({"up:0": 1e9})
        monitor.rates_updated(1.0, {"up:0": 1.5e9})
        assert kinds(monitor) == ["link-capacity"]
        assert monitor.violations[0].details["link"] == "up:0"

    def test_float_slack_tolerated(self):
        monitor = InvariantMonitor()
        monitor.register_links({"up:0": 1e9})
        monitor.rates_updated(1.0, {"up:0": 1e9 * (1 + 1e-12)})
        assert monitor.violations == []

    def test_unregistered_link(self):
        monitor = InvariantMonitor()
        monitor.flow_started(1.0, ("ghost:9",), 64.0)
        monitor.rates_updated(1.0, {"ghost:9": 10.0})
        assert kinds(monitor) == ["link-capacity", "link-capacity"]


class TestTaskLifecycle:
    def test_launch_then_finish_is_clean(self):
        monitor = InvariantMonitor()
        launch(monitor, 1.0)
        finish(monitor, 2.0)
        assert monitor.violations == []

    def test_double_assignment_same_node(self):
        monitor = InvariantMonitor()
        launch(monitor, 1.0)
        launch(monitor, 2.0)
        assert "task-lifecycle" in kinds(monitor)
        assert "double assignment" in monitor.violations[0].message

    def test_concurrent_attempt_must_be_speculative(self):
        monitor = InvariantMonitor()
        launch(monitor, 1.0, node=0)
        launch(monitor, 2.0, node=1)  # second non-speculative attempt
        assert kinds(monitor) == ["task-lifecycle"]
        assert "non-speculative" in monitor.violations[0].message

    def test_speculative_second_attempt_is_clean(self):
        monitor = InvariantMonitor()
        launch(monitor, 1.0, node=0)
        launch(monitor, 2.0, node=1, speculative=True, attempt=2)
        finish(monitor, 3.0, node=1)
        monitor.bus.emit("task.kill", 3.0, job_id=0, node=0, task="map",
                         block="B_{0,0}")
        assert monitor.violations == []

    def test_double_termination(self):
        monitor = InvariantMonitor()
        launch(monitor, 1.0)
        finish(monitor, 2.0)
        finish(monitor, 3.0)
        assert kinds(monitor) == ["task-lifecycle"]
        assert "terminated twice" in monitor.violations[0].message

    def test_requeue_after_kill_is_lenient(self):
        monitor = InvariantMonitor()
        launch(monitor, 1.0)
        monitor.bus.emit("task.kill", 2.0, job_id=0, node=0, task="map",
                         block="B_{0,0}")
        monitor.bus.emit("task.requeue", 2.0, job_id=0, node=0, task="map",
                         block="B_{0,0}")
        assert monitor.violations == []

    def test_job_fail_retires_its_attempts(self):
        monitor = InvariantMonitor()
        launch(monitor, 1.0)
        monitor.bus.emit("job.fail", 2.0, job_id=0)
        # The master's teardown kill arrives after job.fail; no complaint.
        monitor.bus.emit("task.kill", 2.0, job_id=0, node=0, task="map",
                         block="B_{0,0}")
        assert monitor.violations == []

    def test_reduce_tasks_keyed_by_index(self):
        monitor = InvariantMonitor()
        launch(monitor, 1.0, task="reduce", reduce_index=0)
        launch(monitor, 1.5, task="reduce", reduce_index=1)  # distinct task
        finish(monitor, 2.0, task="reduce", reduce_index=0)
        finish(monitor, 2.5, task="reduce", reduce_index=1)
        assert monitor.violations == []


class TestBdfPacing:
    def assign(self, monitor, time=1.0, **quantities):
        monitor.bus.emit("sched.decision", time, action="assign",
                         reason="degraded-first", node=1, job_id=0, **quantities)

    def skip(self, monitor, time=1.0, **quantities):
        monitor.bus.emit("sched.decision", time, action="skip-degraded",
                         reason="pacing", node=1, job_id=0, **quantities)

    def test_legal_degraded_launch(self):
        monitor = InvariantMonitor()
        self.assign(monitor, m=4, M=10, m_d=1, M_d=4)  # 4/10 >= 1/4
        assert monitor.violations == []

    def test_pacing_inequality_violated(self):
        monitor = InvariantMonitor()
        self.assign(monitor, m=1, M=10, m_d=3, M_d=4)  # 1/10 < 3/4
        assert kinds(monitor) == ["bdf-pacing"]

    def test_launch_with_no_degraded_tasks_left(self):
        monitor = InvariantMonitor()
        self.assign(monitor, m=4, M=10, m_d=0, M_d=0)
        assert kinds(monitor) == ["bdf-pacing"]

    def test_legal_pacing_skip(self):
        monitor = InvariantMonitor()
        self.skip(monitor, m=1, M=10, m_d=3, M_d=4)
        assert monitor.violations == []

    def test_spurious_pacing_skip(self):
        monitor = InvariantMonitor()
        self.skip(monitor, m=4, M=10, m_d=1, M_d=4)  # pacing actually allows
        assert kinds(monitor) == ["bdf-pacing"]


class TestEdfGuards:
    GOOD = {"t_s": 3.0, "mean_t_s": 4.0, "slave_ok": True,
            "t_r": 5.0, "mean_t_r": 4.0, "rack_threshold": 6.0, "rack_ok": True}

    def test_consistent_assign(self):
        monitor = InvariantMonitor()
        monitor.bus.emit("sched.decision", 1.0, action="assign",
                         reason="degraded-first", node=1, **self.GOOD)
        assert monitor.violations == []

    def test_assign_despite_rejecting_guard(self):
        monitor = InvariantMonitor()
        fields = dict(self.GOOD, slave_ok=False, t_s=9.0)
        monitor.bus.emit("sched.decision", 1.0, action="assign",
                         reason="degraded-first", node=1, **fields)
        assert kinds(monitor) == ["edf-guard"]

    def test_verdict_inconsistent_with_quantities(self):
        monitor = InvariantMonitor()
        fields = dict(self.GOOD, t_s=9.0)  # t_s > E[t_s] but slave_ok=True
        monitor.bus.emit("sched.decision", 1.0, action="assign",
                         reason="degraded-first", node=1, **fields)
        assert kinds(monitor) == ["edf-guard"]

    def test_skip_blames_wrong_guard(self):
        monitor = InvariantMonitor()
        fields = dict(self.GOOD, rejected_by="rack")  # but both guards pass
        monitor.bus.emit("sched.decision", 1.0, action="skip-degraded",
                         reason="slave-guard", node=1, **fields)
        assert "edf-guard" in kinds(monitor)

    def test_legal_slave_guard_skip(self):
        monitor = InvariantMonitor()
        fields = dict(self.GOOD, slave_ok=False, t_s=9.0, rejected_by="slave")
        monitor.bus.emit("sched.decision", 1.0, action="skip-degraded",
                         reason="slave-guard", node=1, **fields)
        assert monitor.violations == []


class TestEventMonotonicity:
    def test_forward_time_is_clean(self):
        monitor = InvariantMonitor()
        monitor.bus.emit("heartbeat", 1.0, node=0, map_slots_free=1)
        monitor.bus.emit("heartbeat", 1.0, node=1, map_slots_free=1)
        monitor.bus.emit("heartbeat", 2.0, node=0, map_slots_free=1)
        assert monitor.violations == []

    def test_backwards_event_time(self):
        monitor = InvariantMonitor()
        monitor.bus.emit("job.submit", 5.0, job_id=0)
        monitor.bus.emit("job.submit", 4.0, job_id=1)
        assert kinds(monitor) == ["event-monotonicity"]

    def test_backwards_dispatch_time(self):
        monitor = InvariantMonitor()
        monitor.on_dispatch(5.0)
        monitor.on_dispatch(4.0)
        assert kinds(monitor) == ["event-monotonicity"]


class TestRunawayBounds:
    def test_dispatch_bound_raises(self):
        monitor = InvariantMonitor(max_dispatch=3)
        with pytest.raises(InvariantViolationError) as excinfo:
            for step in range(10):
                monitor.on_dispatch(float(step))
        assert excinfo.value.violations[0].invariant == "runaway"

    def test_sim_time_bound_raises(self):
        monitor = InvariantMonitor(max_sim_time=10.0)
        monitor.on_dispatch(5.0)
        with pytest.raises(InvariantViolationError):
            monitor.on_dispatch(11.0)


class TestReporting:
    def test_violation_cap_counts_overflow(self):
        monitor = InvariantMonitor(max_violations=2)
        for step in range(5):
            monitor.slot_changed(float(step), "map:0", 9, 2, 0)
        assert len(monitor.violations) == 2
        assert monitor.dropped_violations == 3

    def test_render_report_groups_by_invariant(self):
        violations = [
            InvariantViolation(1.0, "slot-accounting", "a"),
            InvariantViolation(2.0, "slot-accounting", "b"),
            InvariantViolation(3.0, "bdf-pacing", "c"),
        ]
        report = render_report(violations)
        assert "3 violation(s)" in report
        assert report.index("slot-accounting: 2") < report.index("bdf-pacing: 1")

    def test_render_report_empty(self):
        assert "no violations" in render_report([])

    def test_raise_if_violations_carries_result(self):
        monitor = InvariantMonitor()
        monitor.slot_changed(1.0, "map:0", 9, 2, 0)
        with pytest.raises(InvariantViolationError) as excinfo:
            monitor.raise_if_violations(result="sentinel")
        assert excinfo.value.result == "sentinel"
        assert "slot-accounting" in excinfo.value.report()

    def test_error_survives_pickling(self):
        error = InvariantViolationError(
            [InvariantViolation(1.0, "slot-accounting", "broken", {"node": 3})]
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.violations == error.violations
        assert "slot-accounting" in str(clone)

    def test_clean_monitor_does_not_raise(self):
        monitor = InvariantMonitor()
        monitor.raise_if_violations()
        assert "no violations" in monitor.report()
