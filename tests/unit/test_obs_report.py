"""Unit tests for regression diffing and HTML dashboards (repro.obs.report)."""

import pytest

from repro.obs.analyze import RUN_SUMMARY_SCHEMA
from repro.obs.digest import LatencyDigest
from repro.obs.report import (
    CAMPAIGN_SCHEMA,
    campaign_report_html,
    diff_reports,
    has_regression,
    render_diff_text,
    report_html,
    run_report_html,
)


def _digest_payload(samples):
    digest = LatencyDigest()
    digest.extend(samples)
    return digest.to_dict()


def make_run_summary(makespan=100.0, degraded_read=20.0, degraded_tasks=4,
                     degraded_samples=(4.0, 5.0, 6.0, 5.0)):
    return {
        "schema": RUN_SUMMARY_SCHEMA,
        "scheduler": "EDF",
        "seed": 0,
        "failed_nodes": [3],
        "makespan_s": makespan,
        "tasks": 40,
        "jobs": {"0": {"submit": 0.0, "first_launch": 0.0, "finish": makespan,
                       "queue_wait_s": 0.0, "runtime_s": makespan}},
        "breakdown": {
            "node-local": {"tasks": 30, "read_s": 0.0, "compute_s": 300.0,
                           "total_s": 300.0, "mean_s": 10.0},
            "degraded": {"tasks": degraded_tasks, "read_s": degraded_read,
                         "compute_s": 40.0, "total_s": degraded_read + 40.0,
                         "mean_s": 15.0},
        },
        "critical_path": {
            "steps": [{"job": 0, "kind": "map", "category": "degraded",
                       "node": 3, "launch": 0.0, "finish": 15.0,
                       "read_s": 5.0, "compute_s": 10.0, "edge": "submit"}],
            "coverage": 0.6,
        },
        "audit": {
            "scheduler": "EDF", "decisions": 40, "assignments": 34,
            "assigned": {"node-local": 30, "rack-local": 0, "remote": 0,
                         "degraded": 4},
            "skipped": {"slave-guard": 6},
            "guard": {"admitted": 4, "slave_rejected": 6, "rack_rejected": 0},
            "pacing_deferrals": 0,
            "locality_rate": 30 / 34, "degraded_rate": 4 / 34,
        },
        "digests": {"degraded_read": _digest_payload(degraded_samples)},
        "event_counts": {"task.finish": 40},
    }


def make_campaign_report(durability=0.999, p99=30.0, completed=50):
    return {
        "schema": CAMPAIGN_SCHEMA,
        "config": {
            "model": {"kind": "exponential"},
            "arrivals": {"kind": "poisson"},
            "horizon": 631152.0, "iterations": 1, "seed": 7,
            "cluster": {"num_nodes": 12, "code": [6, 4], "num_stripes": 16},
        },
        "availability": {
            "durability": durability, "mttdl": None, "mttdl_lower_bound": 1e9,
            "censored": True, "loss_events": 0, "blocks_repaired": 17,
            "backlog": {"peak": 9, "bounded": True, "drained": True},
        },
        "policies": {
            "EDF": {
                "degraded_read_seconds": {"count": 20, "p50": 10.0,
                                          "p95": 25.0, "p99": p99},
                "jobs": {"submitted": 60, "completed": completed, "failed": 0},
                "sojourn": {"mean": 200.0},
                "stability": "stable",
                "data_loss_windows": 0,
                "telemetry": {
                    "degraded_read": _digest_payload([10.0, 25.0, 30.0]),
                    "sojourn": _digest_payload([180.0, 220.0]),
                    "makespan": _digest_payload([150.0, 170.0]),
                },
            },
        },
        "windows": [{"start": 0.0, "duration": 1200.0, "events": 3, "jobs": 30}],
    }


class TestDiffRuns:
    def test_identical_documents_are_all_ok(self):
        summary = make_run_summary()
        rows = diff_reports(summary, summary)
        assert rows
        assert all(row["status"] == "ok" for row in rows)
        assert not has_regression(rows)

    def test_makespan_regression_past_threshold(self):
        rows = diff_reports(make_run_summary(), make_run_summary(makespan=115.0))
        by_name = {row["metric"]: row for row in rows}
        assert by_name["makespan_s"]["status"] == "regression"
        assert by_name["makespan_s"]["change"] == pytest.approx(0.15)
        assert by_name["makespan_s"]["delta"] == pytest.approx(15.0)
        assert has_regression(rows)

    def test_improvement_is_not_a_regression(self):
        rows = diff_reports(make_run_summary(), make_run_summary(makespan=80.0))
        by_name = {row["metric"]: row for row in rows}
        assert by_name["makespan_s"]["status"] == "improved"
        assert not has_regression(rows)

    def test_within_threshold_is_ok(self):
        rows = diff_reports(make_run_summary(), make_run_summary(makespan=105.0))
        by_name = {row["metric"]: row for row in rows}
        assert by_name["makespan_s"]["status"] == "ok"

    def test_per_metric_override_tightens_the_gate(self):
        baseline = make_run_summary()
        candidate = make_run_summary(makespan=105.0)
        rows = diff_reports(baseline, candidate, overrides={"makespan_s": 0.02})
        by_name = {row["metric"]: row for row in rows}
        assert by_name["makespan_s"]["status"] == "regression"
        assert by_name["makespan_s"]["threshold"] == 0.02

    def test_missing_tail_metrics_are_not_applicable(self):
        bare = make_run_summary(degraded_samples=())
        rows = diff_reports(bare, bare)
        by_name = {row["metric"]: row for row in rows}
        assert by_name["degraded_p50_s"]["status"] == "n/a"
        assert by_name["degraded_p99_s"]["status"] == "n/a"
        assert not has_regression(rows)

    def test_zero_baseline_growth_is_a_regression(self):
        baseline = make_run_summary(degraded_read=0.0)
        candidate = make_run_summary(degraded_read=8.0)
        rows = diff_reports(baseline, candidate)
        by_name = {row["metric"]: row for row in rows}
        assert by_name["degraded_read_s"]["status"] == "regression"
        assert by_name["degraded_read_s"]["change"] is None

    def test_schema_mismatch_refuses_to_diff(self):
        with pytest.raises(ValueError, match="different schemas"):
            diff_reports(make_run_summary(), make_campaign_report())

    def test_unknown_schema_refuses_to_diff(self):
        bogus = {"schema": "nope/v0"}
        with pytest.raises(ValueError, match="unrecognised"):
            diff_reports(bogus, bogus)


class TestDiffCampaigns:
    def test_durability_is_higher_is_better(self):
        rows = diff_reports(
            make_campaign_report(durability=0.999),
            make_campaign_report(durability=0.80),
        )
        by_name = {row["metric"]: row for row in rows}
        assert by_name["durability"]["direction"] == "higher"
        assert by_name["durability"]["status"] == "regression"

    def test_completed_jobs_dropping_regresses(self):
        rows = diff_reports(
            make_campaign_report(completed=50), make_campaign_report(completed=30)
        )
        by_name = {row["metric"]: row for row in rows}
        assert by_name["EDF:jobs_completed"]["status"] == "regression"

    def test_p99_improvement_reads_as_improved(self):
        rows = diff_reports(
            make_campaign_report(p99=30.0), make_campaign_report(p99=20.0)
        )
        by_name = {row["metric"]: row for row in rows}
        assert by_name["EDF:degraded_p99_s"]["status"] == "improved"


class TestRenderDiffText:
    def test_table_lists_every_metric_and_the_verdict(self):
        rows = diff_reports(make_run_summary(), make_run_summary(makespan=115.0))
        text = render_diff_text(rows)
        assert "makespan_s" in text
        assert "regression" in text
        assert f"{len(rows)} metric(s), 1 regression(s)" in text

    def test_clean_table_says_within_thresholds(self):
        summary = make_run_summary(degraded_samples=())
        text = render_diff_text(diff_reports(summary, summary))
        assert "0 regression(s); within thresholds" in text
        assert "n/a" in text  # empty degraded tails render as n/a rows


class TestRunReportHtml:
    def test_page_is_self_contained_and_structured(self):
        page = run_report_html(make_run_summary())
        assert page.startswith("<!doctype html>")
        # Self-contained: no external fetches of any kind.
        for needle in ("http://", "https://", "<script", "<link", "@import"):
            assert needle not in page
        assert "Makespan" in page
        assert "Critical path" in page
        assert "Task-time breakdown" in page
        assert "Scheduler decisions" in page
        assert "Latency digests" in page
        assert 'data-theme="dark"' in page  # dark scope present
        assert "prefers-color-scheme" in page
        assert "bar-seg last" in page  # rounded data-end on stacked bars

    def test_wrong_schema_is_rejected(self):
        with pytest.raises(ValueError, match="not a run summary"):
            run_report_html(make_campaign_report())

    def test_markup_is_escaped(self):
        summary = make_run_summary()
        summary["scheduler"] = "<EDF & friends>"
        page = run_report_html(summary)
        assert "<EDF & friends>" not in page
        assert "&lt;EDF &amp; friends&gt;" in page


class TestCampaignReportHtml:
    def test_page_carries_policy_and_telemetry_sections(self):
        page = campaign_report_html(make_campaign_report())
        assert "Reliability campaign" in page
        assert "Durability" in page
        assert "EDF digests" in page  # merged telemetry digest table
        assert "degraded_read" in page
        assert "UNBOUNDED" not in page
        assert "stable" in page

    def test_wrong_schema_is_rejected(self):
        with pytest.raises(ValueError, match="not a campaign report"):
            campaign_report_html(make_run_summary())


class TestReportDispatch:
    def test_dispatches_on_schema(self):
        assert "Run analysis" in report_html(make_run_summary())
        assert "Reliability campaign" in report_html(make_campaign_report())

    def test_unknown_schema_raises(self):
        with pytest.raises(ValueError, match="unrecognised"):
            report_html({"schema": "mystery/v9"})
