"""Unit tests for the ablation scheduler variants."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.extras import (
    ABLATION_SCHEDULERS,
    EagerDegradedScheduler,
    RackGuardOnlyScheduler,
    SlaveGuardOnlyScheduler,
    UncappedDegradedFirstScheduler,
)
from repro.core.scheduler import SchedulerContext, make_scheduler
from repro.core.tasks import JobTaskState
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import MapTaskCategory
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster


def build_state(seed=3, num_blocks=24):
    topology = ClusterTopology.from_rack_sizes([3, 3], map_slots=2)
    cluster = HdfsRaidCluster(
        topology, CodeParams(4, 2), num_native_blocks=num_blocks,
        placement="declustered", rng=RngStreams(seed),
    )
    failed = frozenset({0})
    view = cluster.failure_view(failed)
    config = JobConfig(num_blocks=num_blocks)
    state = JobTaskState(0, config, view, cluster.block_map, topology)
    context = SchedulerContext(
        topology=topology,
        live_nodes=frozenset(topology.node_ids()) - failed,
        expected_degraded_read_time=5.0,
        map_time_mean=config.map_time_mean,
        reduce_slowstart=0.05,
    )
    return state, context


class TestRegistration:
    def test_all_registered(self):
        _, context = build_state()
        for scheduler_cls in ABLATION_SCHEDULERS:
            instance = make_scheduler(scheduler_cls.name, context)
            assert isinstance(instance, scheduler_cls)


class TestEager:
    def test_all_degraded_assigned_first(self):
        state, context = build_state()
        if state.M_d < 2:
            pytest.skip("need multiple degraded tasks")
        scheduler = EagerDegradedScheduler(context)
        maps = scheduler.assign_maps(1, state.M_d + 2, [state], now=0.0)
        leading = [m.category for m in maps[: state.M_d]]
        assert all(cat is MapTaskCategory.DEGRADED for cat in leading)


class TestUncapped:
    def test_can_assign_multiple_degraded_in_one_heartbeat(self):
        state, context = build_state()
        if state.M_d < 2:
            pytest.skip("need multiple degraded tasks")
        scheduler = UncappedDegradedFirstScheduler(context)
        # Pretend the job is nearly done so pacing admits several launches.
        state.launched_map_tasks = state.M - state.M_d
        maps = scheduler.assign_maps(1, state.M_d, [state], now=0.0)
        degraded = [m for m in maps if m.category is MapTaskCategory.DEGRADED]
        assert len(degraded) >= 2

    def test_still_respects_pacing_initially(self):
        state, context = build_state()
        if state.M_d < 2:
            pytest.skip("need multiple degraded tasks")
        scheduler = UncappedDegradedFirstScheduler(context)
        maps = scheduler.assign_maps(1, 4, [state], now=0.0)
        degraded = [m for m in maps if m.category is MapTaskCategory.DEGRADED]
        # After the first degraded launch m/M < m_d/M_d blocks the second.
        assert len(degraded) == 1


class TestDelayScheduler:
    def _state_without_local_work(self, slave_id=1):
        state, context = build_state()
        # Drain everything local to the slave's rack so only remote remains.
        while state.pop_local(slave_id):
            pass
        return state, context

    def test_waits_before_going_remote(self):
        from repro.core.extras import DelayScheduler

        state, context = self._state_without_local_work()
        scheduler = DelayScheduler(context)
        first = scheduler.assign_maps(1, 1, [state], now=0.0)
        assert first == []  # skipped: delay clock starts
        still_waiting = scheduler.assign_maps(1, 1, [state], now=3.0)
        assert still_waiting == []
        expired = scheduler.assign_maps(1, 1, [state], now=DelayScheduler.max_delay)
        assert len(expired) == 1
        assert expired[0].category in (
            MapTaskCategory.REMOTE,
            MapTaskCategory.DEGRADED,
        )

    def test_local_assignment_resets_delay(self):
        from repro.core.extras import DelayScheduler

        state, context = build_state()
        scheduler = DelayScheduler(context)
        maps = scheduler.assign_maps(1, 1, [state], now=0.0)
        if not maps or not maps[0].category.is_local:
            pytest.skip("slave 1 had no local work for this seed")
        assert state.job_id not in scheduler._first_skip_at


class TestGuardOnlyVariants:
    def test_slave_only_ignores_racks(self):
        _, context = build_state()
        scheduler = SlaveGuardOnlyScheduler(context)
        scheduler._on_degraded_assigned(slave_id=1, now=0.0)
        assert scheduler.assign_to_rack(0, now=0.01)  # rack guard disabled

    def test_rack_only_ignores_slaves(self):
        state, context = build_state()
        scheduler = RackGuardOnlyScheduler(context)
        # Even the most backlogged slave is admitted.
        heavy = max(
            context.live_nodes, key=lambda n: state.pending_node_local_count(n)
        )
        assert scheduler.assign_to_slave(state, heavy)

    def test_rack_only_keeps_rack_guard(self):
        _, context = build_state()
        scheduler = RackGuardOnlyScheduler(context)
        scheduler._on_degraded_assigned(slave_id=1, now=0.0)
        assert not scheduler.assign_to_rack(0, now=0.01)
