"""Unit tests for the Figure 9 / Table I harness helpers."""

from __future__ import annotations

import math

from repro.experiments.fig9_testbed import default_runs, make_jobs
from repro.experiments.table1_breakdown import ROWS
from repro.mapreduce.job import MapTaskCategory, TaskKind
from repro.mapreduce.metrics import TaskRecord
from repro.testbed.engine import TestbedJobResult


class TestHarnessHelpers:
    def test_default_runs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TESTBED_RUNS", "4")
        assert default_runs() == 4

    def test_make_jobs_order(self):
        jobs = make_jobs()
        assert [job.name for job in jobs] == ["WordCount", "Grep", "LineCount"]

    def test_table_rows_cover_paper(self):
        labels = [label for label, _kind, _cats in ROWS]
        assert labels == ["Normal map", "Degraded map", "Reduce"]


class TestTestbedJobResult:
    def make_result(self):
        tasks = [
            TaskRecord(0, TaskKind.MAP, MapTaskCategory.NODE_LOCAL, 0, 0.0, 0.0, 1.0),
            TaskRecord(0, TaskKind.MAP, MapTaskCategory.DEGRADED, 1, 0.0, 2.0, 5.0),
            TaskRecord(0, TaskKind.REDUCE, None, 2, 0.0, 0.0, 9.0),
        ]
        return TestbedJobResult(
            job_name="WordCount", scheduler="EDF", runtime=9.0, tasks=tasks, output={}
        )

    def test_mean_runtime_by_kind(self):
        result = self.make_result()
        assert result.mean_runtime(TaskKind.REDUCE) == 9.0
        assert result.mean_runtime(TaskKind.MAP) == 3.0

    def test_mean_runtime_by_category(self):
        result = self.make_result()
        assert result.mean_runtime(TaskKind.MAP, MapTaskCategory.DEGRADED) == 5.0

    def test_mean_runtime_empty_nan(self):
        result = self.make_result()
        assert math.isnan(result.mean_runtime(TaskKind.MAP, MapTaskCategory.REMOTE))
