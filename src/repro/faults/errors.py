"""Errors raised by the fault-tolerance subsystem."""

from __future__ import annotations

from typing import Any


class JobFailedError(RuntimeError):
    """A job was abandoned because a task exhausted its retry budget.

    The partial :class:`~repro.mapreduce.metrics.SimulationResult` (covering
    whatever did complete, including the failed jobs' metrics records) is
    attached as :attr:`result` so callers can inspect how far the run got.
    """

    def __init__(self, message: str, result: Any = None) -> None:
        super().__init__(message)
        self.result = result
