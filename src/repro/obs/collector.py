"""The observability collector: one passive sink for a whole trial.

``ObservabilityCollector`` owns the trial's :class:`~repro.obs.events.EventBus`,
its :class:`~repro.obs.metrics.MetricsRegistry`, and its
:class:`~repro.obs.profile.Profiler`.  ``run_simulation(config, observer=...)``
wires it into every subsystem:

* the **bus** receives every structured event (the collector subscribes with
  a wildcard and keeps the full log for the JSONL export);
* the **slot observer** hook tracks per-node map/reduce slot occupancy and
  semaphore queue depth as time-weighted series;
* the **network observer** hook tracks per-link allocated bandwidth as a
  utilization series and republishes flow start/end on the bus;
* **heartbeat-to-assignment latency** is derived from heartbeat events: for
  every heartbeat that assigned work, the time since that node's previous
  heartbeat -- how long free slots waited beyond a heartbeat boundary.

The collector is strictly passive: it never schedules simulator callbacks,
never draws randomness, and never mutates simulation state, so results are
bit-identical with or without it (asserted by the integration suite).
"""

from __future__ import annotations

from repro.obs.events import WILDCARD, EventBus, ObsEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler


class ObservabilityCollector:
    """Collects events, metrics, and profiling figures for one trial."""

    def __init__(self, keep_events: bool = True) -> None:
        self.bus = EventBus()
        self.registry = MetricsRegistry()
        self.profiler = Profiler()
        self.keep_events = keep_events
        #: Every event emitted, in order (empty when ``keep_events`` is off).
        self.events: list[ObsEvent] = []
        #: Scheduler decision records (the ``sched.decision`` subset).
        self.decisions: list[ObsEvent] = []
        #: Heartbeat-to-assignment latencies, seconds of simulated time.
        self.heartbeat_latencies: list[float] = []
        #: (action, reason) -> count over all scheduler decisions.
        self.decision_counts: dict[tuple[str, str], int] = {}
        self.end_time = 0.0
        self._last_heartbeat: dict[int, float] = {}
        self._slot_capacities: dict[str, int] = {}
        self._link_capacities: dict[str, float] = {}
        self.bus.subscribe(WILDCARD, self._on_event)

    # -- bus subscriber ------------------------------------------------------

    def _on_event(self, event: ObsEvent) -> None:
        if self.keep_events:
            self.events.append(event)
        if event.kind == "heartbeat":
            self._note_heartbeat(event)
        elif event.kind == "sched.decision":
            self.decisions.append(event)
            key = (event.fields.get("action", "?"), event.fields.get("reason", "?"))
            self.decision_counts[key] = self.decision_counts.get(key, 0) + 1
        elif event.kind == "repair.backlog":
            self.registry.time_series("repair.backlog").record(
                event.time, event.fields.get("depth", 0)
            )

    def _note_heartbeat(self, event: ObsEvent) -> None:
        node = event.fields["node"]
        previous = self._last_heartbeat.get(node)
        assigned = event.fields.get("assigned_maps", 0) + event.fields.get(
            "assigned_reduces", 0
        )
        if previous is not None and assigned > 0:
            self.heartbeat_latencies.append(event.time - previous)
        self._last_heartbeat[node] = event.time

    # -- slot observer protocol (see repro.sim.resources.Semaphore) ----------

    def slot_changed(
        self, now: float, name: str, in_use: int, capacity: int, queued: int
    ) -> None:
        """A slot semaphore changed occupancy or queue depth."""
        self._slot_capacities[name] = capacity
        self.registry.time_series(f"slot.{name}").record(now, in_use)
        self.registry.time_series(f"queue.{name}").record(now, queued)

    # -- network observer protocol (see repro.sim.resources) -----------------

    def register_links(self, capacities: dict[str, float]) -> None:
        """Learn the link names and capacities once, at wiring time."""
        self._link_capacities.update(capacities)

    def flow_started(self, now: float, links: tuple[str, ...], size: float) -> None:
        """A network flow entered the contention model."""
        self.bus.emit("flow.start", now, links=list(links), size=size)

    def flow_finished(
        self, now: float, links: tuple[str, ...], size: float, duration: float
    ) -> None:
        """A network flow completed."""
        self.bus.emit("flow.end", now, links=list(links), size=size, duration=duration)

    def flow_cancelled(
        self, now: float, links: tuple[str, ...], size: float, moved: float
    ) -> None:
        """A network flow was aborted mid-flight (its source node died)."""
        self.bus.emit(
            "flow.cancel", now, links=list(links), size=size, moved=moved
        )

    def rates_updated(self, now: float, link_rates: dict[str, float]) -> None:
        """The contention model reallocated bandwidth; record utilization."""
        for link, capacity in self._link_capacities.items():
            allocated = link_rates.get(link, 0.0)
            self.registry.time_series(f"link.{link}").record(
                now, allocated / capacity if capacity > 0 else 0.0
            )

    # -- lifecycle -----------------------------------------------------------

    def finalize(self, now: float) -> None:
        """Close the trial: fix the report window's right edge."""
        self.end_time = now

    # -- reporting -----------------------------------------------------------

    def slot_summary(self, prefix: str) -> list[tuple[str, float, int, float]]:
        """Per-semaphore ``(name, avg_in_use, capacity, utilization)`` rows.

        ``prefix`` selects the slot family (``"map"`` or ``"reduce"``).
        """
        rows = []
        horizon = max(self.end_time, 1e-12)
        for name in sorted(self._slot_capacities):
            if not name.startswith(f"{prefix}:"):
                continue
            series = self.registry.series.get(f"slot.{name}")
            if series is None:
                continue
            average = series.integral(0.0, horizon) / horizon
            capacity = self._slot_capacities[name]
            rows.append(
                (name, average, capacity, average / capacity if capacity else 0.0)
            )
        return rows

    def link_summary(self) -> list[tuple[str, float, float]]:
        """Per-link ``(name, avg_utilization, peak_utilization)`` rows."""
        rows = []
        horizon = max(self.end_time, 1e-12)
        for link in sorted(self._link_capacities):
            series = self.registry.series.get(f"link.{link}")
            if series is None:
                rows.append((link, 0.0, 0.0))
                continue
            rows.append((link, series.integral(0.0, horizon) / horizon, series.peak()))
        return rows

    def render_utilization_report(self) -> str:
        """The plain-text utilization report (CLI ``--utilization-report``)."""
        lines = [
            "== utilization report ==",
            f"simulated time: {self.end_time:.1f} s",
            f"observability events: {self.bus.emitted}"
            f" ({len(self.bus.counts)} kinds)",
        ]
        for prefix, label in (("map", "map slots"), ("reduce", "reduce slots")):
            rows = self.slot_summary(prefix)
            if not rows:
                continue
            total_avg = sum(row[1] for row in rows)
            total_cap = sum(row[2] for row in rows)
            share = 100.0 * total_avg / total_cap if total_cap else 0.0
            lines.append(
                f"{label}: cluster average {total_avg:.2f}/{total_cap}"
                f" in use ({share:.1f}%)"
            )
            for name, average, capacity, utilization in rows:
                lines.append(
                    f"  {name:<12} avg {average:5.2f}/{capacity}"
                    f"  ({100.0 * utilization:5.1f}%)"
                )
        link_rows = self.link_summary()
        if link_rows:
            lines.append("links (bandwidth utilization):")
            for link, average, peak in link_rows:
                lines.append(
                    f"  {link:<14} avg {100.0 * average:5.1f}%"
                    f"  peak {100.0 * peak:5.1f}%"
                )
        queue_peaks = [
            (name.removeprefix("queue."), series.peak())
            for name, series in sorted(self.registry.series.items())
            if name.startswith("queue.") and series.peak() > 0
        ]
        if queue_peaks:
            lines.append("slot queues (peak depth):")
            for name, peak in queue_peaks:
                lines.append(f"  {name:<12} {peak:.0f}")
        if self.heartbeat_latencies:
            latencies = self.heartbeat_latencies
            lines.append(
                "heartbeat-to-assignment latency: "
                f"n={len(latencies)} mean={sum(latencies) / len(latencies):.2f}s "
                f"max={max(latencies):.2f}s"
            )
        if self.decision_counts:
            lines.append("scheduler decisions (action/reason):")
            for (action, reason), count in sorted(self.decision_counts.items()):
                lines.append(f"  {action:<16} {reason:<20} {count}")
        if self.bus.counts:
            lines.append("events by kind:")
            for kind, count in sorted(self.bus.counts.items()):
                lines.append(f"  {kind:<16} {count}")
        lines.append(self.profiler.render())
        return "\n".join(lines)
