"""Ablation: fluid max-min fair links vs exclusive hold-the-link (CSIM).

The paper's simulator holds links exclusively for each transmission; our
default shares bandwidth max-min fairly.  The headline result must not
depend on that modelling choice: EDF beats LF under both.
"""

from __future__ import annotations

import statistics
from dataclasses import replace

from conftest import one_shot
from repro.experiments.common import default_seeds, run_many
from repro.mapreduce.config import SimulationConfig

MODELS = ("fluid", "exclusive")
SCHEDULERS = ("LF", "EDF")


def run_ablation() -> dict[tuple[str, str], float]:
    seeds = default_seeds()
    configs = []
    for model in MODELS:
        for name in SCHEDULERS:
            for seed in seeds:
                configs.append(
                    replace(
                        SimulationConfig(network_model=model), scheduler=name, seed=seed
                    )
                )
    results = run_many(configs)
    samples: dict[tuple[str, str], list[float]] = {}
    for config, result in zip(configs, results):
        samples.setdefault((config.network_model, config.scheduler), []).append(
            result.job(0).runtime
        )
    return {key: statistics.mean(values) for key, values in samples.items()}


def test_ablation_network_model(benchmark):
    means = one_shot(benchmark, run_ablation)
    print("\nAblation: network contention model (mean runtime, s)")
    for model in MODELS:
        lf = means[(model, "LF")]
        edf = means[(model, "EDF")]
        print(f"  {model:>9}: LF={lf:8.1f}  EDF={edf:8.1f}  reduction={(lf - edf) / lf:.1%}")
        assert edf < lf, f"EDF must beat LF under the {model} model"
