"""Per-job bookkeeping of unassigned tasks and launch counters.

A :class:`JobTaskState` holds the two pools every scheduler draws from --
*normal* map tasks (each with a home node where its block lives) and
*degraded* map tasks (whose block is lost) -- plus the counters the paper's
pacing rule needs:

* ``M``   -- total map tasks of the job,
* ``M_d`` -- total degraded tasks,
* ``m``   -- map tasks launched so far,
* ``m_d`` -- degraded tasks launched so far.

The pools support the exact queries Algorithms 1-3 make: "an unassigned
local task (for slave *s*)", "an unassigned remote task (for *s*)", and "an
unassigned degraded task".
"""

from __future__ import annotations

from collections import deque

from repro.cluster.topology import ClusterTopology
from repro.mapreduce.config import JobConfig
from repro.storage.block import BlockId
from repro.storage.hdfs import FailureView
from repro.storage.namenode import BlockMap


class JobTaskState:
    """Scheduling state of one job.

    Parameters
    ----------
    job_id:
        Identifier (FIFO order follows submit order).
    config:
        The job's workload parameters.
    view:
        The storage failure view: which blocks are lost vs available.
    block_map:
        Placement metadata (home node of every available block).
    topology:
        Cluster layout, for rack-level queries.
    """

    def __init__(
        self,
        job_id: int,
        config: JobConfig,
        view: FailureView,
        block_map: BlockMap,
        topology: ClusterTopology,
    ) -> None:
        self.job_id = job_id
        self.config = config
        self.topology = topology
        self.block_map = block_map

        self.total_map_tasks = len(view.available_blocks) + len(view.lost_blocks)
        self.total_degraded_tasks = len(view.lost_blocks)
        self.launched_map_tasks = 0
        self.launched_degraded_tasks = 0
        self.completed_map_tasks = 0

        self._pending_by_node: dict[int, deque[BlockId]] = {}
        self._pending_per_rack: dict[int, int] = {}
        self._pending_normal = 0
        for block in view.available_blocks:
            home = block_map.node_of(block)
            self._pending_by_node.setdefault(home, deque()).append(block)
            rack = topology.rack_of(home)
            self._pending_per_rack[rack] = self._pending_per_rack.get(rack, 0) + 1
            self._pending_normal += 1
        self._pending_degraded: deque[BlockId] = deque(view.lost_blocks)

        self.pending_reduce_tasks: deque[int] = deque(range(config.num_reduce_tasks))
        self.launched_reduce_tasks = 0
        self.completed_reduce_tasks = 0

    # -- aliases matching the paper's notation -------------------------------

    @property
    def M(self) -> int:  # noqa: N802 - paper notation
        """Total map tasks."""
        return self.total_map_tasks

    @property
    def M_d(self) -> int:  # noqa: N802 - paper notation
        """Total degraded tasks."""
        return self.total_degraded_tasks

    @property
    def m(self) -> int:
        """Map tasks launched so far."""
        return self.launched_map_tasks

    @property
    def m_d(self) -> int:  # noqa: N802 - paper notation
        """Degraded tasks launched so far."""
        return self.launched_degraded_tasks

    # -- pool queries ---------------------------------------------------------

    def has_unassigned_degraded(self) -> bool:
        """Whether any degraded task awaits launch."""
        return bool(self._pending_degraded)

    def has_unassigned_normal(self) -> bool:
        """Whether any normal (non-degraded) map task awaits launch."""
        return self._pending_normal > 0

    def has_unassigned_maps(self) -> bool:
        """Whether any map task at all awaits launch."""
        return self.has_unassigned_normal() or self.has_unassigned_degraded()

    def maps_all_completed(self) -> bool:
        """Whether every map task of the job has finished."""
        return self.completed_map_tasks >= self.total_map_tasks

    def job_completed(self) -> bool:
        """Whether the job (maps and reduces) has fully finished."""
        if not self.maps_all_completed():
            return False
        return self.completed_reduce_tasks >= self.config.num_reduce_tasks

    def pending_node_local_count(self, node_id: int) -> int:
        """Unassigned map tasks whose block is stored on ``node_id``.

        This is the backlog the EDF locality-preservation guard estimates
        ``t_s`` from.
        """
        queue = self._pending_by_node.get(node_id)
        return len(queue) if queue else 0

    def pending_rack_count(self, rack_id: int) -> int:
        """Unassigned normal map tasks whose block lives in ``rack_id``."""
        return self._pending_per_rack.get(rack_id, 0)

    def pending_degraded_count(self) -> int:
        """Unassigned degraded map tasks awaiting launch."""
        return len(self._pending_degraded)

    # -- pool pops (assignment) ----------------------------------------------

    def pop_local(self, slave_id: int) -> tuple[BlockId, bool] | None:
        """Take an unassigned *local* task for ``slave_id``.

        Prefers node-local over rack-local (as Hadoop does); returns the
        block and a flag that is True when the pick was node-local, or None
        when the slave's rack has no pending blocks.
        """
        queue = self._pending_by_node.get(slave_id)
        if queue:
            return self._take(slave_id, queue), True
        rack = self.topology.rack_of(slave_id)
        if self._pending_per_rack.get(rack, 0) == 0:
            return None
        for node_id in self.topology.nodes_in_rack(rack):
            queue = self._pending_by_node.get(node_id)
            if queue:
                return self._take(node_id, queue), False
        return None

    def pop_remote(self, slave_id: int) -> BlockId | None:
        """Take an unassigned *remote* task for ``slave_id``.

        Remote means the block lives in a different rack.  Racks are scanned
        in id order for determinism.
        """
        my_rack = self.topology.rack_of(slave_id)
        for rack in self.topology.racks:
            if rack.rack_id == my_rack:
                continue
            if self._pending_per_rack.get(rack.rack_id, 0) == 0:
                continue
            for node_id in rack.node_ids:
                queue = self._pending_by_node.get(node_id)
                if queue:
                    return self._take(node_id, queue)
        return None

    def pop_from_node(self, node_id: int) -> BlockId | None:
        """Take an unassigned normal task stored on ``node_id``, or None.

        Unlike :meth:`pop_local`/:meth:`pop_remote` this names the *home*
        node directly, so policies that pick a source node globally (FIFO
        scan order, work-stealing victims) share the same counter-updating
        path as the locality-driven pops.
        """
        queue = self._pending_by_node.get(node_id)
        if not queue:
            return None
        return self._take(node_id, queue)

    def pop_degraded(self) -> BlockId | None:
        """Take an unassigned degraded task (file order)."""
        if not self._pending_degraded:
            return None
        block = self._pending_degraded.popleft()
        self.launched_map_tasks += 1
        self.launched_degraded_tasks += 1
        return block

    def pop_reduce(self) -> int | None:
        """Take an unassigned reduce task index."""
        if not self.pending_reduce_tasks:
            return None
        index = self.pending_reduce_tasks.popleft()
        self.launched_reduce_tasks += 1
        return index

    def reduce_ready(self, slowstart: float) -> bool:
        """Whether reduce tasks may launch (the Hadoop slow-start rule).

        Reducers launch once the completed-map fraction reaches
        ``slowstart``; map-only jobs never launch reducers.
        """
        if self.config.num_reduce_tasks == 0:
            return False
        if self.total_map_tasks == 0:
            return True
        return self.completed_map_tasks >= slowstart * self.total_map_tasks

    # -- completion callbacks ---------------------------------------------------

    def on_map_complete(self) -> None:
        """Record one map completion."""
        self.completed_map_tasks += 1
        if self.completed_map_tasks > self.total_map_tasks:
            raise RuntimeError(f"job {self.job_id} completed more maps than it has")

    def on_reduce_complete(self) -> None:
        """Record one reduce completion."""
        self.completed_reduce_tasks += 1
        if self.completed_reduce_tasks > self.config.num_reduce_tasks:
            raise RuntimeError(f"job {self.job_id} completed more reduces than it has")

    # -- mid-run failure support ------------------------------------------------

    def on_node_failure(self, failed_node: int) -> int:
        """Convert the failed node's pending local tasks into degraded tasks.

        When a node dies *during* the job, the blocks stored on it that had
        not been assigned yet can no longer be read directly; each becomes a
        degraded task.  Returns how many tasks were converted.  ``M`` is
        unchanged (the work still exists); ``M_d`` grows.
        """
        queue = self._pending_by_node.pop(failed_node, None)
        if not queue:
            return 0
        rack = self.topology.rack_of(failed_node)
        converted = len(queue)
        self._pending_per_rack[rack] -= converted
        self._pending_normal -= converted
        self.total_degraded_tasks += converted
        self._pending_degraded.extend(queue)
        return converted

    def on_node_recovery(self, recovered_node: int) -> int:
        """Reclassify pending degraded tasks whose blocks just came back.

        When a failed node rejoins, the blocks stored on it are readable
        again, so pending degraded tasks whose lost block lives there go
        back into the normal pool (``M_d`` shrinks; ``M`` is unchanged).
        Returns how many tasks were reclaimed.  Degraded tasks already
        *running* keep reconstructing -- interrupting them would waste more
        work than the reclassification saves.
        """
        kept: deque[BlockId] = deque()
        reclaimed: list[BlockId] = []
        for block in self._pending_degraded:
            if self.block_map.node_of(block) == recovered_node:
                reclaimed.append(block)
            else:
                kept.append(block)
        if not reclaimed:
            return 0
        self._pending_degraded = kept
        rack = self.topology.rack_of(recovered_node)
        queue = self._pending_by_node.setdefault(recovered_node, deque())
        queue.extend(reclaimed)
        self._pending_per_rack[rack] = self._pending_per_rack.get(rack, 0) + len(reclaimed)
        self._pending_normal += len(reclaimed)
        self.total_degraded_tasks -= len(reclaimed)
        return len(reclaimed)

    def on_block_repaired(self, block: BlockId, new_home: int) -> int:
        """Reclassify one pending degraded task whose block was just rebuilt.

        The online repair driver re-created ``block`` on ``new_home``; if a
        pending degraded task was waiting on it, the task returns to the
        normal pool with its new home (``M_d`` shrinks, ``M`` unchanged).
        Parity blocks and already-running tasks are unaffected.  Returns
        the number of reclaimed tasks (0 or 1).
        """
        if block not in self._pending_degraded:
            return 0
        self._pending_degraded.remove(block)
        queue = self._pending_by_node.setdefault(new_home, deque())
        queue.append(block)
        rack = self.topology.rack_of(new_home)
        self._pending_per_rack[rack] = self._pending_per_rack.get(rack, 0) + 1
        self._pending_normal += 1
        self.total_degraded_tasks -= 1
        return 1

    def requeue_killed_map(self, block: BlockId, was_degraded: bool, lost: bool) -> None:
        """Put a killed running map task back into the right pool.

        ``was_degraded`` is the task's category when it was launched;
        ``lost`` says whether the block's home node is (now) failed.  Launch
        counters roll back so the pacing rule keeps its meaning.
        """
        self.launched_map_tasks -= 1
        if was_degraded:
            self.launched_degraded_tasks -= 1
            self._pending_degraded.append(block)
            return
        if lost:
            # A normal task whose input died with the node: now degraded.
            self.total_degraded_tasks += 1
            self._pending_degraded.append(block)
            return
        home = self.block_map.node_of(block)
        self._pending_by_node.setdefault(home, deque()).append(block)
        rack = self.topology.rack_of(home)
        self._pending_per_rack[rack] = self._pending_per_rack.get(rack, 0) + 1
        self._pending_normal += 1

    def requeue_killed_reduce(self, reduce_index: int) -> None:
        """Put a killed running reduce task back into the pending queue."""
        self.launched_reduce_tasks -= 1
        self.pending_reduce_tasks.appendleft(reduce_index)

    # -- internals ----------------------------------------------------------------

    def _take(self, home_node: int, queue: deque[BlockId]) -> BlockId:
        block = queue.popleft()
        rack = self.topology.rack_of(home_node)
        self._pending_per_rack[rack] -= 1
        self._pending_normal -= 1
        self.launched_map_tasks += 1
        return block
