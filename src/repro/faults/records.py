"""What the fault-tolerance machinery measured during one trial.

The paper's simulator knows about failures omnisciently, so it has nothing
to measure about *detection*.  Once failures are detected from heartbeat
expiry (:mod:`repro.faults.driver`), detection latency, blacklist events,
recoveries and slowdowns all become observable quantities; they are
collected here and attached to the trial's
:class:`~repro.mapreduce.metrics.SimulationResult` as ``result.faults``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DetectionRecord:
    """The master declared a node dead after its heartbeats stopped."""

    node: int
    #: Ground-truth instant the node actually died (from the schedule).
    failed_at: float
    #: Instant the master declared it dead.
    detected_at: float

    @property
    def latency(self) -> float:
        """How long the master believed a dead node was alive."""
        return self.detected_at - self.failed_at


@dataclass(frozen=True)
class BlacklistRecord:
    """A node crossed the consecutive-failure threshold and was blacklisted."""

    node: int
    at: float
    consecutive_failures: int


@dataclass(frozen=True)
class RecoveryRecord:
    """A failed node rejoined the cluster."""

    node: int
    at: float
    #: Pending degraded tasks reclassified back to normal because their
    #: blocks became readable again.
    reclaimed_tasks: int


@dataclass(frozen=True)
class RepairRecord:
    """The online repair driver rebuilt one lost (or corrupt) block."""

    #: ``str(BlockId)`` of the rebuilt block.
    block: str
    #: Node the rebuilt block now lives on.
    destination: int
    started_at: float
    finished_at: float
    #: Bytes downloaded by the destination (``k`` source blocks).
    bytes_fetched: float
    #: Pending degraded map tasks reclassified to normal locality because
    #: this block came back.
    reclaimed_tasks: int
    #: Plan/execution attempts (``> 1`` when a source died mid-repair).
    attempts: int = 1


@dataclass(frozen=True)
class CorruptionRecord:
    """A checksum-bad block was discovered on a live node."""

    #: ``str(BlockId)`` of the corrupt block.
    block: str
    #: Node holding the corrupt copy.
    node: int
    #: Instant the corruption was noticed.
    detected_at: float
    #: ``"read"`` (a task tripped over it) or ``"scrub"`` (proactive scan).
    via: str


@dataclass(frozen=True)
class SlowdownRecord:
    """A node ran at reduced speed for a while."""

    node: int
    at: float
    factor: float
    duration: float


@dataclass
class FaultTimeline:
    """Every fault-related observation of one trial, in event order."""

    detections: list[DetectionRecord] = field(default_factory=list)
    blacklistings: list[BlacklistRecord] = field(default_factory=list)
    recoveries: list[RecoveryRecord] = field(default_factory=list)
    slowdowns: list[SlowdownRecord] = field(default_factory=list)
    repairs: list[RepairRecord] = field(default_factory=list)
    corruptions: list[CorruptionRecord] = field(default_factory=list)

    @property
    def repaired_bytes(self) -> float:
        """Total bytes the repair driver moved during the trial."""
        return sum(record.bytes_fetched for record in self.repairs)

    @property
    def detection_latencies(self) -> list[float]:
        """Detection latency of every declared failure, in declare order."""
        return [record.latency for record in self.detections]

    @property
    def blacklisted_nodes(self) -> frozenset[int]:
        """Nodes that were blacklisted at any point during the trial."""
        return frozenset(record.node for record in self.blacklistings)
