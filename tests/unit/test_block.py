"""Unit tests for block identities."""

from __future__ import annotations

import pytest

from repro.ec.stripe import BlockKind
from repro.storage.block import BlockId, StoredBlock


class TestBlockId:
    def test_native_classification(self):
        block = BlockId(stripe_id=2, position=1, k=2)
        assert block.kind is BlockKind.NATIVE
        assert block.is_native
        assert block.native_index == 5
        assert str(block) == "B_{2,1}"

    def test_parity_classification(self):
        block = BlockId(stripe_id=0, position=2, k=2)
        assert block.kind is BlockKind.PARITY
        assert not block.is_native
        assert str(block) == "P_{0,0}"

    def test_parity_has_no_native_index(self):
        block = BlockId(stripe_id=0, position=3, k=2)
        with pytest.raises(ValueError):
            _ = block.native_index

    def test_negative_coordinates(self):
        with pytest.raises(ValueError):
            BlockId(stripe_id=-1, position=0, k=2)

    def test_ordering(self):
        a = BlockId(stripe_id=0, position=1, k=2)
        b = BlockId(stripe_id=1, position=0, k=2)
        assert a < b

    def test_hashable(self):
        a = BlockId(stripe_id=0, position=1, k=2)
        b = BlockId(stripe_id=0, position=1, k=2)
        assert a == b
        assert len({a, b}) == 1


class TestStoredBlock:
    def test_str(self):
        stored = StoredBlock(block=BlockId(stripe_id=1, position=2, k=2), node_id=7)
        assert str(stored) == "P_{1,0}@node7"
