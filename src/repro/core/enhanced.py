"""Algorithm 3: enhanced degraded-first scheduling (EDF).

EDF is BDF plus two topology-aware admission guards applied before a
degraded launch:

**Locality preservation** (``ASSIGNTOSLAVE``).  Estimate the local-map
backlog of each slave, ``t_s = pending_node_local(s) * T / (L_s * speed_s)``,
and the mean ``E[t_s]`` over live slaves.  A slave whose backlog exceeds the
mean has no spare capacity: giving it a degraded task would push its own
local blocks onto other nodes as remote tasks.  So degraded tasks are only
admitted on slaves with ``t_s <= E[t_s]``.

.. note::
   The paper's prose (Section IV-C) says a slave with ``t_s > E[t_s]`` "does
   not have spare resources ... so we do not assign a degraded task to it",
   and its evaluation explains EDF's win as "assigning degraded tasks to the
   nodes that have low processing time for local tasks".  The pseudocode of
   Algorithm 3 prints the comparison the other way round
   (``if t_s < E[t_s] then return false``); we follow the prose, which is
   the only reading consistent with the reported remote-task reductions.

**Rack awareness** (``ASSIGNTORACK``).  Track, per rack ``r``, the time
``t_r`` since the rack last launched a degraded task and the mean ``E[t_r]``
over racks.  A rack is skipped when ``t_r < min(E[t_r], threshold)`` where
the threshold is the expected degraded-read time ``(R-1) k S / (R W)``:
the rack is then still busy downloading for its previous degraded task.

The backlog estimate divides by the slave's slot count and speed factor, so
the guard also handles heterogeneous clusters, as Section IV-C describes:
fast slaves are allowed to take a degraded task even while holding more
local work.
"""

from __future__ import annotations

import math

from repro.core.degraded_first import BasicDegradedFirstScheduler
from repro.core.scheduler import SchedulerContext
from repro.core.tasks import JobTaskState


class EnhancedDegradedFirstScheduler(BasicDegradedFirstScheduler):
    """The paper's EDF (Algorithm 3)."""

    name = "EDF"

    def __init__(self, context: SchedulerContext) -> None:
        super().__init__(context)
        self._last_degraded_at: dict[int, float] = {}

    # -- the two guard functions of Algorithm 3 -------------------------------

    def assign_to_slave(self, job: JobTaskState, slave_id: int) -> bool:
        """``ASSIGNTOSLAVE``: admit only slaves with at-most-average backlog."""
        t_s = self._local_backlog_time(job, slave_id)
        expected = self._mean_backlog_time(job)
        return t_s <= expected + 1e-12

    def assign_to_rack(self, rack_id: int, now: float) -> bool:
        """``ASSIGNTORACK``: skip racks mid-way through a degraded read."""
        t_r = self._time_since_degraded(rack_id, now)
        expected = self._mean_time_since_degraded(now)
        threshold = self.context.expected_degraded_read_time
        return t_r >= min(expected, threshold)

    # -- hooks into the BDF main loop ------------------------------------------

    def _degraded_guards(self, job: JobTaskState, slave_id: int, now: float) -> bool:
        if self.bus is None:
            if not self.assign_to_slave(job, slave_id):
                return False
            rack_id = self.context.topology.rack_of(slave_id)
            return self.assign_to_rack(rack_id, now)
        # Tracing path: evaluate both guards (they are pure, so the verdict
        # is unchanged) and record every quantity behind the decision.
        rack_id = self.context.topology.rack_of(slave_id)
        slave_ok = self.assign_to_slave(job, slave_id)
        rack_ok = self.assign_to_rack(rack_id, now)
        self.last_guard_trace = {
            "t_s": self._local_backlog_time(job, slave_id),
            "mean_t_s": self._mean_backlog_time(job),
            "slave_ok": slave_ok,
            "rack": rack_id,
            "t_r": self._time_since_degraded(rack_id, now),
            "mean_t_r": self._mean_time_since_degraded(now),
            "rack_threshold": self.context.expected_degraded_read_time,
            "rack_ok": rack_ok,
            "rejected_by": None if slave_ok and rack_ok
            else ("slave" if not slave_ok else "rack"),
        }
        return slave_ok and rack_ok

    def _on_degraded_assigned(self, slave_id: int, now: float) -> None:
        rack_id = self.context.topology.rack_of(slave_id)
        self._last_degraded_at[rack_id] = now

    # -- estimates ---------------------------------------------------------------

    def _local_backlog_time(self, job: JobTaskState, slave_id: int) -> float:
        """Estimated time for ``slave_id`` to drain its local maps plus one more.

        The candidate degraded task itself is counted (the ``+ 1``): the
        paper's computing-power provision says slow slaves must not absorb
        degraded work, and without the extra term a slow slave with an empty
        backlog would have ``t_s = 0`` and always pass the guard, defeating
        that intent.  On a homogeneous cluster the term shifts every slave's
        estimate equally and the comparison is unchanged.
        """
        node = self.context.topology.node(slave_id)
        backlog = job.pending_node_local_count(slave_id)
        slots = max(node.map_slots, 1)
        return (backlog + 1) * job.config.map_time_mean / (slots * node.speed_factor)

    def _mean_backlog_time(self, job: JobTaskState) -> float:
        """``E[t_s]`` over live slaves."""
        live = self.context.live_nodes
        if not live:
            return 0.0
        total = sum(self._local_backlog_time(job, node_id) for node_id in live)
        return total / len(live)

    def _time_since_degraded(self, rack_id: int, now: float) -> float:
        """``t_r``: +inf until the rack's first degraded launch."""
        last = self._last_degraded_at.get(rack_id)
        if last is None:
            return math.inf
        return now - last

    def _mean_time_since_degraded(self, now: float) -> float:
        """``E[t_r]`` over *all* racks.

        Racks that have never launched a degraded task contribute an
        infinite ``t_r``, making the mean infinite; the
        ``min(E[t_r], threshold)`` in :meth:`assign_to_rack` then falls back
        to the expected-degraded-read-time threshold.
        """
        values = [
            self._time_since_degraded(rack.rack_id, now)
            for rack in self.context.topology.racks
        ]
        if not values:
            return math.inf
        if any(math.isinf(value) for value in values):
            return math.inf
        return sum(values) / len(values)
