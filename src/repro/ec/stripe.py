"""Stripe layout and the paper's block-naming scheme.

The paper names the blocks of stripe ``i`` as ``B_{i,0} .. B_{i,k-1}``
(native) and ``P_{i,0} .. P_{i,n-k-1}`` (parity).  :class:`StripeLayout`
carries the arithmetic between flat file offsets, stripe ids and positions,
so that the storage layer, the scheduler examples and the tests all agree on
which block is which.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BlockKind(enum.Enum):
    """Whether a stripe position holds original data or redundancy."""

    NATIVE = "native"
    PARITY = "parity"


def block_name(stripe_id: int, position: int, k: int) -> str:
    """Return the paper's name for the block at ``position`` of ``stripe_id``.

    Positions ``0 .. k-1`` are native (``B_{i,j}``); the rest are parity
    (``P_{i,j}``).
    """
    if position < 0:
        raise ValueError(f"negative stripe position {position}")
    if position < k:
        return f"B_{{{stripe_id},{position}}}"
    return f"P_{{{stripe_id},{position - k}}}"


@dataclass(frozen=True)
class StripeLayout:
    """Maps between native-block sequence numbers and stripe coordinates.

    Parameters
    ----------
    n:
        Stripe width (native + parity blocks).
    k:
        Native blocks per stripe.
    """

    n: int
    k: int

    def __post_init__(self) -> None:
        if not 0 < self.k <= self.n:
            raise ValueError(f"require 0 < k <= n, got n={self.n} k={self.k}")

    @property
    def parity_per_stripe(self) -> int:
        """Parity blocks per stripe (``n - k``)."""
        return self.n - self.k

    def stripe_count(self, native_blocks: int) -> int:
        """Number of stripes needed to hold ``native_blocks`` native blocks.

        The last stripe may be partially filled; HDFS-RAID pads it.
        """
        if native_blocks < 0:
            raise ValueError(f"negative native block count {native_blocks}")
        return -(-native_blocks // self.k)

    def total_blocks(self, native_blocks: int) -> int:
        """Total stored blocks (native + parity) for ``native_blocks`` natives."""
        return native_blocks + self.stripe_count(native_blocks) * self.parity_per_stripe

    def locate_native(self, native_index: int) -> tuple[int, int]:
        """Return ``(stripe_id, position)`` for the ``native_index``-th native block."""
        if native_index < 0:
            raise ValueError(f"negative native index {native_index}")
        return divmod(native_index, self.k)

    def native_index(self, stripe_id: int, position: int) -> int:
        """Inverse of :meth:`locate_native`; ``position`` must be native."""
        if not 0 <= position < self.k:
            raise ValueError(f"position {position} is not a native position (k={self.k})")
        return stripe_id * self.k + position

    def kind(self, position: int) -> BlockKind:
        """Classify a stripe position as native or parity."""
        if not 0 <= position < self.n:
            raise ValueError(f"position {position} out of range [0, {self.n})")
        if position < self.k:
            return BlockKind.NATIVE
        return BlockKind.PARITY

    def positions(self) -> range:
        """All stripe positions ``0 .. n-1``."""
        return range(self.n)

    def name(self, stripe_id: int, position: int) -> str:
        """The paper's name for the block at ``(stripe_id, position)``."""
        return block_name(stripe_id, position, self.k)
