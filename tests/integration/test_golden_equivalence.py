"""Golden-equivalence tests: the hot-path rewrite changes no trajectory.

The simulation core (``sim/engine.py``, ``sim/resources.py``) is optimised
for speed under one hard contract: *zero perturbation*.  A rewritten heap
encoding, flow index, or completion scheduler must reproduce the original
implementation's trajectories bit for bit.  These tests enforce the
contract in CI instead of leaving it to review: each golden file under
``tests/golden/`` was generated from the pre-optimisation implementation
(see ``tests/golden/regenerate.py``) and records the full serialized
:class:`~repro.mapreduce.metrics.SimulationResult` plus the engine's
dispatched-event count for one fixed-seed trial.

Covered trajectories: all three schedulers (LF/BDF/EDF) on a single-node
failure, a mid-run failure (exercising in-flight flow cancellation), a
multi-job FIFO run, and a run with the online repair driver (throttle
links plus repair/foreground bandwidth competition).

If one of these tests fails after an intentional *semantic* change to the
simulator, regenerate the goldens with::

    PYTHONPATH=src:. python tests/golden/regenerate.py

and explain the trajectory change in the commit message.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.serialization import result_to_dict
from repro.mapreduce.simulation import run_simulation
from repro.obs import ObservabilityCollector
from repro.storage.repair_driver import RepairConfig

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")


def golden_cases() -> dict[str, SimulationConfig]:
    """Name -> fixed-seed trial configuration for every golden file."""
    small_job = JobConfig(num_blocks=192)
    return {
        "lf-single-node": SimulationConfig(
            scheduler="LF", seed=7, jobs=(small_job,)
        ),
        "bdf-single-node": SimulationConfig(
            scheduler="BDF", seed=7, jobs=(small_job,)
        ),
        "edf-single-node": SimulationConfig(
            scheduler="EDF", seed=7, jobs=(small_job,)
        ),
        "edf-midrun-failure": SimulationConfig(
            scheduler="EDF", seed=11, jobs=(small_job,), failure_time=25.0
        ),
        "edf-multi-job": SimulationConfig(
            scheduler="EDF",
            seed=3,
            jobs=(
                JobConfig(num_blocks=96),
                JobConfig(num_blocks=96, submit_time=60.0),
            ),
        ),
        "lf-online-repair": SimulationConfig(
            scheduler="LF",
            seed=5,
            jobs=(small_job,),
            repair=RepairConfig(bandwidth_cap=100e6, concurrent_repairs=2),
        ),
    }


def capture(config: SimulationConfig) -> dict:
    """Run one trial and capture its trajectory fingerprint."""
    collector = ObservabilityCollector(keep_events=False)
    result = run_simulation(config, observer=collector)
    return {
        "result": result_to_dict(result),
        "dispatched": collector.profiler.events_dispatched,
    }


@pytest.mark.parametrize("name", sorted(golden_cases()))
def test_trajectory_matches_golden(name: str) -> None:
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    assert os.path.exists(path), (
        f"golden file {path} missing -- run tests/golden/regenerate.py"
    )
    with open(path) as handle:
        golden = json.load(handle)
    actual = capture(golden_cases()[name])
    # Round-trip through JSON so float formatting is identical on both sides.
    actual = json.loads(json.dumps(actual, allow_nan=False))
    assert actual["dispatched"] == golden["dispatched"], (
        f"{name}: engine dispatched {actual['dispatched']} events, "
        f"golden recorded {golden['dispatched']} -- the event schedule moved"
    )
    assert actual["result"] == golden["result"]
