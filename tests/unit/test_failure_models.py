"""Unit tests for the stochastic failure-model library."""

from __future__ import annotations

import json

import pytest

from repro.cluster.topology import ClusterTopology
from repro.faults.models import (
    DAY,
    HOUR,
    CompositeModel,
    CorrelatedBursts,
    ExponentialLifetimes,
    LatentSectorErrors,
    TraceReplay,
    WeibullLifetimes,
    check_alternation,
    model_from_dict,
    slice_window,
)
from repro.faults.schedule import (
    CorruptEvent,
    FailEvent,
    FailureSchedule,
    RecoverEvent,
)
from repro.sim.rng import RngStreams

HORIZON = 30.0 * DAY

MODELS = [
    ExponentialLifetimes(mttf=5.0 * DAY, mttr=6.0 * HOUR),
    WeibullLifetimes(mttf=5.0 * DAY, shape=0.7, mttr=6.0 * HOUR),
    WeibullLifetimes(mttf=5.0 * DAY, shape=1.4, mttr=6.0 * HOUR, repair_shape=2.0),
    CorrelatedBursts(mtbe=2.0 * DAY, burst_size_mean=2.5, mttr=6.0 * HOUR),
    LatentSectorErrors(num_stripes=6, stripe_width=6, block_mtbc=30.0 * DAY),
    CompositeModel(
        models=(
            ExponentialLifetimes(mttf=5.0 * DAY, mttr=6.0 * HOUR),
            LatentSectorErrors(num_stripes=6, stripe_width=6, block_mtbc=30.0 * DAY),
        )
    ),
]


@pytest.fixture
def topology():
    return ClusterTopology.from_rack_sizes([3, 3, 3])


def canonical(schedule: FailureSchedule) -> str:
    return json.dumps(schedule.to_dict(), sort_keys=True)


class TestDeterminism:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_same_seed_same_stream(self, topology, model):
        first = model.generate(topology, RngStreams(11), HORIZON)
        second = model.generate(topology, RngStreams(11), HORIZON)
        assert canonical(first) == canonical(second)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_different_seeds_differ(self, topology, model):
        first = model.generate(topology, RngStreams(11), HORIZON)
        second = model.generate(topology, RngStreams(12), HORIZON)
        assert canonical(first) != canonical(second)

    def test_generation_is_draw_order_independent(self, topology):
        # Generating another model from the same RngStreams first must not
        # shift the second model's draws: every draw is name-addressed.
        model = ExponentialLifetimes(mttf=5.0 * DAY, mttr=6.0 * HOUR)
        alone = model.generate(topology, RngStreams(3), HORIZON)
        rng = RngStreams(3)
        CorrelatedBursts(mtbe=2.0 * DAY).generate(topology, rng, HORIZON)
        after = model.generate(topology, rng, HORIZON)
        assert canonical(alone) == canonical(after)


class TestGoldenStreams:
    """Fixed-seed first events, pinned: a change here is a trajectory break."""

    def test_exponential_golden(self, topology):
        model = ExponentialLifetimes(mttf=5.0 * DAY, mttr=6.0 * HOUR)
        schedule = model.generate(topology, RngStreams(0), HORIZON)
        first = schedule.events[0]
        assert isinstance(first, FailEvent)
        assert (first.node, round(first.at, 3)) == (0, 1250.692)
        assert len(schedule) == 130

    def test_weibull_golden(self, topology):
        model = WeibullLifetimes(mttf=5.0 * DAY, shape=0.7, mttr=6.0 * HOUR)
        schedule = model.generate(topology, RngStreams(0), HORIZON)
        first = schedule.events[0]
        assert isinstance(first, FailEvent)
        assert (first.node, round(first.at, 3)) == (7, 19049.401)
        assert len(schedule) == 120

    def test_bursts_golden(self, topology):
        model = CorrelatedBursts(mtbe=2.0 * DAY, burst_size_mean=2.5, mttr=6.0 * HOUR)
        schedule = model.generate(topology, RngStreams(0), HORIZON)
        first = schedule.events[0]
        assert isinstance(first, FailEvent)
        assert (first.node, round(first.at, 3)) == (1, 698379.885)
        assert len(schedule) == 70

    def test_lse_golden(self, topology):
        model = LatentSectorErrors(num_stripes=6, stripe_width=6, block_mtbc=30.0 * DAY)
        schedule = model.generate(topology, RngStreams(0), HORIZON)
        first = schedule.events[0]
        assert isinstance(first, CorruptEvent)
        assert (first.stripe, first.position, round(first.at, 3)) == (5, 1, 36408.865)
        assert len(schedule) == 43


class TestModelBehaviour:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_streams_validate_and_alternate(self, topology, model):
        schedule = model.generate(topology, RngStreams(5), HORIZON)
        schedule.validate(topology, num_stripes=6, stripe_width=6)
        check_alternation(schedule, topology)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_fails_inside_horizon(self, topology, model):
        schedule = model.generate(topology, RngStreams(5), HORIZON)
        for event in schedule.events:
            if not isinstance(event, RecoverEvent):
                assert event.at < HORIZON

    def test_recoveries_kept_beyond_horizon(self, topology):
        # A fail just inside the horizon keeps its recovery even past it,
        # so per-node alternation survives windowing.
        model = ExponentialLifetimes(mttf=2.0 * DAY, mttr=2.0 * DAY)
        schedule = model.generate(topology, RngStreams(1), 4.0 * DAY)
        fails = sum(isinstance(event, FailEvent) for event in schedule.events)
        recovers = sum(isinstance(event, RecoverEvent) for event in schedule.events)
        assert fails == recovers

    def test_weibull_mean_parameterisation(self, topology):
        # The empirical mean lifetime should track mttf across shapes (the
        # scale is derived via the gamma function) -- generate enough
        # lifetimes to check within a loose statistical band.
        lifetimes: list[float] = []
        for shape in (0.7, 1.0, 1.6):
            model = WeibullLifetimes(mttf=1.0 * DAY, shape=shape, mttr=1.0 * HOUR)
            schedule = model.generate(topology, RngStreams(8), 200.0 * DAY)
            previous_recover: dict[int, float] = {}
            for event in schedule.events:
                if isinstance(event, FailEvent):
                    start = previous_recover.get(event.node, 0.0)
                    lifetimes.append(event.at - start)
                elif isinstance(event, RecoverEvent):
                    previous_recover[event.node] = event.at
        mean = sum(lifetimes) / len(lifetimes)
        assert 0.8 * DAY < mean < 1.2 * DAY

    def test_bursts_never_double_fail(self, topology):
        model = CorrelatedBursts(
            mtbe=6.0 * HOUR, burst_size_mean=4.0, mttr=12.0 * HOUR
        )
        schedule = model.generate(topology, RngStreams(9), 10.0 * DAY)
        check_alternation(schedule, topology)

    def test_trace_replay_scales_and_truncates(self, topology):
        trace = TraceReplay.from_log(
            [
                {"node": 1, "failed_at": 10.0, "recovered_at": 50.0},
                {"node": 2, "failed_at": 200.0},
            ],
            time_scale=2.0,
        )
        schedule = trace.generate(topology, RngStreams(0), 100.0)
        assert [type(event).__name__ for event in schedule.events] == [
            "FailEvent",
            "RecoverEvent",
        ]
        assert schedule.events[0].at == 20.0
        assert schedule.events[1].at == 100.0  # kept: its fail is in-horizon

    def test_composite_rejects_overlapping_lifetime_models(self, topology):
        model = CompositeModel(
            models=(
                ExponentialLifetimes(mttf=1.0 * DAY, mttr=1.0 * DAY),
                ExponentialLifetimes(mttf=1.0 * DAY, mttr=1.0 * DAY),
            )
        )
        with pytest.raises(ValueError, match="already down"):
            model.generate(topology, RngStreams(2), 20.0 * DAY)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ExponentialLifetimes(mttf=0.0)
        with pytest.raises(ValueError):
            WeibullLifetimes(shape=-1.0)
        with pytest.raises(ValueError):
            CorrelatedBursts(burst_size_mean=0.5)
        with pytest.raises(ValueError):
            LatentSectorErrors(num_stripes=0)
        with pytest.raises(ValueError):
            TraceReplay(time_scale=0.0)


class TestRoundTrips:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_dict_round_trip(self, model):
        assert model_from_dict(model.to_dict()) == model

    def test_trace_round_trip(self):
        trace = TraceReplay.from_log(
            [{"node": 1, "failed_at": 10.0, "recovered_at": 50.0}], time_scale=3.0
        )
        assert model_from_dict(trace.to_dict()) == trace

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="model kind"):
            model_from_dict({"kind": "martian"})


class TestSliceWindow:
    def test_down_at_start_becomes_t0_fail(self, topology):
        schedule = FailureSchedule(
            (FailEvent(at=10.0, node=3), RecoverEvent(at=500.0, node=3))
        )
        window = slice_window(schedule, topology, 100.0, 1000.0)
        assert window.events[0] == FailEvent(at=0.0, node=3)
        assert window.events[1] == RecoverEvent(at=400.0, node=3)

    def test_recovery_past_window_end_dropped(self, topology):
        schedule = FailureSchedule(
            (FailEvent(at=10.0, node=3), RecoverEvent(at=5000.0, node=3))
        )
        window = slice_window(schedule, topology, 100.0, 1000.0)
        assert window.events == (FailEvent(at=0.0, node=3),)

    def test_in_window_events_shift(self, topology):
        schedule = FailureSchedule(
            (FailEvent(at=150.0, node=2), RecoverEvent(at=300.0, node=2))
        )
        window = slice_window(schedule, topology, 100.0, 1000.0)
        assert window.events == (
            FailEvent(at=50.0, node=2),
            RecoverEvent(at=200.0, node=2),
        )

    def test_carried_node_refailing_in_window_keeps_alternation(self, topology):
        schedule = FailureSchedule(
            (
                FailEvent(at=10.0, node=3),
                RecoverEvent(at=200.0, node=3),
                FailEvent(at=400.0, node=3),
                RecoverEvent(at=600.0, node=3),
            )
        )
        window = slice_window(schedule, topology, 100.0, 1000.0)
        assert window.events == (
            FailEvent(at=0.0, node=3),
            RecoverEvent(at=100.0, node=3),
            FailEvent(at=300.0, node=3),
            RecoverEvent(at=500.0, node=3),
        )
        check_alternation(window, topology)

    def test_window_of_generated_stream_validates(self, topology):
        model = ExponentialLifetimes(mttf=2.0 * DAY, mttr=6.0 * HOUR)
        schedule = model.generate(topology, RngStreams(4), 30.0 * DAY)
        window = slice_window(schedule, topology, 11.0 * DAY, 3600.0)
        window.validate(topology)
        check_alternation(window, topology)
