"""``run_many`` must be bit-identical serial vs process-pool parallel.

The experiment harness farms trials out to a ``ProcessPoolExecutor`` when
``REPRO_WORKERS`` allows; a trial's trajectory must not depend on which
path ran it (worker processes re-seed from the config, never from global
state).  Serialized through :func:`result_to_json`, the two runs must be
byte-equal.
"""

from __future__ import annotations

import pytest

from repro.cluster.network import MB
from repro.ec.codec import CodeParams
from repro.experiments.common import run_many
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.serialization import result_to_json


def grid(seeds, scheduler="EDF") -> list[SimulationConfig]:
    return [
        SimulationConfig(
            scheduler=scheduler,
            num_nodes=6,
            num_racks=2,
            map_slots=2,
            code=CodeParams(4, 2),
            block_size=16 * MB,
            jobs=(JobConfig(num_blocks=24, num_reduce_tasks=2),),
            seed=seed,
        )
        for seed in seeds
    ]


@pytest.mark.parametrize("scheduler", ["LF", "BDF", "EDF"])
def test_serial_and_parallel_runs_are_bit_identical(monkeypatch, scheduler):
    configs = grid([0, 1, 2, 3], scheduler)  # >2 configs so the pool engages

    monkeypatch.setenv("REPRO_WORKERS", "1")
    serial = [result_to_json(result) for result in run_many(configs)]

    monkeypatch.setenv("REPRO_WORKERS", "2")
    parallel = [result_to_json(result) for result in run_many(configs)]

    assert serial == parallel


def test_parallel_respects_config_order(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    results = run_many(grid([5, 6, 7]))
    assert [result.seed for result in results] == [5, 6, 7]
