"""Figure 7: simulation comparison of LF vs EDF.

Six sub-experiments over the default simulated cluster (40 nodes, 4 racks,
4 map + 1 reduce slot, 1 Gbps racks, (20,15) code, 1440 blocks, 30 reduce
tasks, map ~ N(20,1), reduce ~ N(30,2), 1% shuffle, 30 seeds):

* 7(a) -- coding scheme in {(8,6), (12,9), (16,12), (20,15)};
* 7(b) -- native blocks in {720, 1440, 2160, 2880};
* 7(c) -- rack bandwidth in {250, 500, 1000} Mbps;
* 7(d) -- failure pattern in {single-node, double-node, rack};
* 7(e) -- shuffle ratio in {1%, 10%, 20%, 30%};
* 7(f) -- ten simultaneous jobs, Poisson arrivals (mean 120 s), FIFO.

Paper shapes: EDF cuts LF's normalized runtime by ~17% (8,6) up to ~33%
(20,15); the reduction shrinks as F grows but stays large; both schedulers
slow as bandwidth drops; reduction orders single > double > rack failure;
EDF's edge narrows as shuffle volume grows; and per-job multi-job
reductions reach ~48%.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.failures import FailurePattern
from repro.cluster.network import mbps
from repro.ec.codec import CodeParams
from repro.experiments.common import (
    ExperimentTable,
    default_seeds,
    normalized_runtimes,
    run_failure_and_normal,
)
from repro.mapreduce.config import SimulationConfig
from repro.sim.rng import RngStreams

#: Schedulers compared in Figure 7.
SCHEDULERS = ("LF", "EDF")

#: Sub-experiment parameter grids.
FIG7A_CODES = (CodeParams(8, 6), CodeParams(12, 9), CodeParams(16, 12), CodeParams(20, 15))
FIG7B_BLOCKS = (720, 1440, 2160, 2880)
FIG7C_BANDWIDTHS_MBPS = (250, 500, 1000)
FIG7D_FAILURES = (FailurePattern.SINGLE_NODE, FailurePattern.DOUBLE_NODE, FailurePattern.RACK)
FIG7E_SHUFFLE_RATIOS = (0.01, 0.10, 0.20, 0.30)
FIG7F_NUM_JOBS = 10
FIG7F_MEAN_INTERARRIVAL = 120.0


def default_config() -> SimulationConfig:
    """The paper's default simulation configuration (Section V-B)."""
    return SimulationConfig()


def run_fig7a(
    base: SimulationConfig | None = None,
    seeds: list[int] | None = None,
    codes: tuple[CodeParams, ...] = FIG7A_CODES,
) -> ExperimentTable:
    """Figure 7(a): normalized runtime vs erasure-coding scheme."""
    base = base or default_config()
    table = ExperimentTable("Figure 7(a): normalized runtime vs (n,k)")
    for code in codes:
        grouped = run_failure_and_normal(replace(base, code=code), SCHEDULERS, seeds)
        table.add_row(str(code), normalized_runtimes(grouped))
    return table


def run_fig7b(base: SimulationConfig | None = None, seeds: list[int] | None = None) -> ExperimentTable:
    """Figure 7(b): normalized runtime vs number of native blocks."""
    base = base or default_config()
    table = ExperimentTable("Figure 7(b): normalized runtime vs number of blocks")
    for blocks in FIG7B_BLOCKS:
        config = replace(
            base, jobs=tuple(replace(job, num_blocks=blocks) for job in base.jobs)
        )
        grouped = run_failure_and_normal(config, SCHEDULERS, seeds)
        table.add_row(str(blocks), normalized_runtimes(grouped))
    return table


def run_fig7c(base: SimulationConfig | None = None, seeds: list[int] | None = None) -> ExperimentTable:
    """Figure 7(c): normalized runtime vs rack download bandwidth."""
    base = base or default_config()
    table = ExperimentTable("Figure 7(c): normalized runtime vs bandwidth")
    for bandwidth in FIG7C_BANDWIDTHS_MBPS:
        config = replace(base, rack_bandwidth=mbps(bandwidth))
        grouped = run_failure_and_normal(config, SCHEDULERS, seeds)
        table.add_row(f"{bandwidth}Mbps", normalized_runtimes(grouped))
    return table


def run_fig7d(base: SimulationConfig | None = None, seeds: list[int] | None = None) -> ExperimentTable:
    """Figure 7(d): normalized runtime vs failure pattern."""
    base = base or default_config()
    table = ExperimentTable("Figure 7(d): normalized runtime vs failure pattern")
    for pattern in FIG7D_FAILURES:
        grouped = run_failure_and_normal(base.with_failure(pattern), SCHEDULERS, seeds)
        table.add_row(pattern.value, normalized_runtimes(grouped))
    return table


def run_fig7e(base: SimulationConfig | None = None, seeds: list[int] | None = None) -> ExperimentTable:
    """Figure 7(e): normalized runtime vs amount of intermediate (shuffle) data."""
    base = base or default_config()
    table = ExperimentTable("Figure 7(e): normalized runtime vs shuffle ratio")
    for ratio in FIG7E_SHUFFLE_RATIOS:
        config = replace(
            base, jobs=tuple(replace(job, shuffle_ratio=ratio) for job in base.jobs)
        )
        grouped = run_failure_and_normal(config, SCHEDULERS, seeds)
        table.add_row(f"{ratio:.0%}", normalized_runtimes(grouped))
    return table


def multi_job_config(base: SimulationConfig, seed: int) -> SimulationConfig:
    """Ten jobs with exponential inter-arrival times (mean 120 s)."""
    rng = RngStreams(seed)
    template = base.jobs[0]
    submit = 0.0
    jobs = []
    for index in range(FIG7F_NUM_JOBS):
        jobs.append(replace(template, submit_time=submit))
        submit += rng.spawn("arrival").exponential(str(index), FIG7F_MEAN_INTERARRIVAL)
    return replace(base, jobs=tuple(jobs), seed=seed)


def run_fig7f(base: SimulationConfig | None = None, seeds: list[int] | None = None) -> ExperimentTable:
    """Figure 7(f): per-job normalized runtime with ten concurrent jobs."""
    base = base or default_config()
    seeds = default_seeds() if seeds is None else seeds
    per_job: dict[int, dict[str, list[float]]] = {
        job_id: {name: [] for name in SCHEDULERS} for job_id in range(FIG7F_NUM_JOBS)
    }
    for seed in seeds:
        config = multi_job_config(base, seed)
        grouped = run_failure_and_normal(config, SCHEDULERS, seeds=[seed])
        for job_id in range(FIG7F_NUM_JOBS):
            for name in SCHEDULERS:
                failure_runtime = grouped[name][0].job(job_id).runtime
                normal_runtime = grouped["normal"][0].job(job_id).runtime
                per_job[job_id][name].append(failure_runtime / normal_runtime)
    table = ExperimentTable("Figure 7(f): per-job normalized runtime, 10 FIFO jobs")
    for job_id in range(FIG7F_NUM_JOBS):
        table.add_row(f"job {job_id}", per_job[job_id])
    return table


def main() -> str:
    """Run all six sub-experiments and return the printable report."""
    sections = [
        run_fig7a().format(),
        run_fig7b().format(),
        run_fig7c().format(),
        run_fig7d().format(),
        run_fig7e().format(),
        run_fig7f().format(),
    ]
    return "\n\n".join(sections)


if __name__ == "__main__":
    print(main())
