"""Ablation: degraded-read source selection (random-k vs rack-local-first).

The paper's analysis assumes degraded reads pick k random survivors; an
implementation could instead prefer survivors in the reader's own rack,
trading core-switch traffic for intra-rack traffic.  The headline result
must hold under both; rack-local-first should not be slower.
"""

from __future__ import annotations

import statistics
from dataclasses import replace

from conftest import one_shot
from repro.experiments.common import default_seeds, run_many
from repro.mapreduce.config import SimulationConfig
from repro.storage.degraded import SourceSelection

SELECTIONS = (SourceSelection.RANDOM, SourceSelection.RACK_LOCAL_FIRST)
SCHEDULERS = ("LF", "EDF")


def run_ablation() -> dict[tuple[str, str], float]:
    seeds = default_seeds()
    configs = []
    for selection in SELECTIONS:
        for name in SCHEDULERS:
            for seed in seeds:
                configs.append(
                    replace(
                        SimulationConfig(source_selection=selection),
                        scheduler=name,
                        seed=seed,
                    )
                )
    results = run_many(configs)
    samples: dict[tuple[str, str], list[float]] = {}
    for config, result in zip(configs, results):
        samples.setdefault(
            (config.source_selection.value, config.scheduler), []
        ).append(result.job(0).runtime)
    return {key: statistics.mean(values) for key, values in samples.items()}


def test_ablation_source_selection(benchmark):
    means = one_shot(benchmark, run_ablation)
    print("\nAblation: degraded-read source selection (mean runtime, s)")
    for selection in SELECTIONS:
        lf = means[(selection.value, "LF")]
        edf = means[(selection.value, "EDF")]
        print(
            f"  {selection.value:>16}: LF={lf:8.1f}  EDF={edf:8.1f}  "
            f"reduction={(lf - edf) / lf:.1%}"
        )
        assert edf < lf, f"EDF must beat LF with {selection.value} sources"
    # Preferring in-rack sources reduces core-switch traffic: LF's contended
    # tail should not get worse.
    assert (
        means[("rack-local-first", "LF")] <= means[("random", "LF")] * 1.05
    )
