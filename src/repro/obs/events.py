"""The structured event bus: typed simulation events, synchronously fanned out.

Every instrumented subsystem (engine callbacks aside) publishes *events* --
small ``(time, kind, fields)`` records -- onto one :class:`EventBus` per
trial.  Subscribers (normally the
:class:`~repro.obs.collector.ObservabilityCollector`) receive each event
synchronously, in emission order, at the simulation instant it happened.

Design constraints, enforced by construction:

* **Zero overhead when off.**  Instrumented call sites hold ``bus = None``
  by default and guard every emission with ``if bus is not None``; no event
  object is ever built on the off path.
* **No perturbation when on.**  ``emit`` calls subscribers directly -- it
  never schedules simulator callbacks, never touches the event heap, and
  never draws randomness -- so a trial's :class:`SimulationResult` is
  bit-identical with instrumentation on or off.

Event taxonomy (the ``kind`` strings; fields documented in DESIGN.md §8):

=====================  =========================================================
kind                   emitted when
=====================  =========================================================
``job.submit``         a job enters the FIFO queue
``job.finish``         a job's last task completes
``job.fail``           a job is abandoned (retry budget exhausted)
``heartbeat``          the master handled one slave heartbeat
``sched.decision``     a scheduler chose (or rejected) a map assignment
``task.launch``        a slave spawned a task-runner process
``task.finish``        a task completed and reported back
``task.kill``          a running attempt was interrupted
``task.requeue``       the master re-queued a lost attempt for re-execution
``degraded.start``     a degraded read began fetching surviving blocks
``degraded.end``       a degraded read finished reconstructing its block
``degraded.replan``    a degraded read lost a source mid-flight and re-planned
``degraded.park``      a task parked waiting for repair to restore its stripe
``degraded.unpark``    a parked task woke after an availability change
``block.corrupt``      a checksum-bad block was discovered (read or scrub)
``repair.start``       the repair driver began rebuilding one block
``repair.end``         a rebuilt block landed and the BlockMap was updated
``repair.retry``       a repair lost a source mid-flight and will re-plan
``repair.backlog``     the repair queue depth changed (queued + in flight)
``flow.start``         a network flow entered the fluid/exclusive network
``flow.end``           a network flow completed
``flow.cancel``        a network flow was aborted (its source node died)
``slot.change``        a map/reduce slot was taken or released
``shuffle.deposit``    a completed map deposited intermediate data
``shuffle.drain``      a reducer claimed its pending shuffle bytes
``failure.detect``     heartbeat expiry declared a node dead
``node.fail``          a node left the live view (scripted or detected)
``node.recover``       a failed node rejoined
``node.blacklist``     a node crossed the consecutive-failure threshold
``spec.launch``        a speculative backup attempt was issued
=====================  =========================================================
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

#: Subscription key matching every event kind.
WILDCARD = "*"


@dataclass(frozen=True)
class ObsEvent:
    """One structured observation: what happened, when, and its payload."""

    time: float
    kind: str
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Flat JSON-friendly form.

        ``t`` and ``kind`` are reserved: a payload field with either name
        is shadowed, never the event's own timestamp/kind.
        """
        record = dict(self.fields)
        record["t"] = self.time
        record["kind"] = self.kind
        return record


class EventBus:
    """Synchronous publish/subscribe fan-out for :class:`ObsEvent`.

    Subscribers registered for a specific kind receive only that kind;
    subscribers registered for :data:`WILDCARD` receive everything.
    Dispatch order is registration order (kind-specific before wildcard).
    """

    def __init__(self) -> None:
        self._subscribers: dict[str, list[Callable[[ObsEvent], None]]] = {}
        self.emitted = 0
        self.counts: dict[str, int] = {}

    def subscribe(self, kind: str, handler: Callable[[ObsEvent], None]) -> None:
        """Register ``handler`` for ``kind`` (or :data:`WILDCARD`)."""
        self._subscribers.setdefault(kind, []).append(handler)

    def emit(self, kind: str, time: float, /, **fields) -> ObsEvent:
        """Publish one event; subscribers run synchronously, in order.

        ``kind`` and ``time`` are positional-only so payloads may reuse
        those words as field names (e.g. ``kind="map"`` on task events).
        """
        event = ObsEvent(time=time, kind=kind, fields=fields)
        self.emitted += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        for handler in self._subscribers.get(kind, ()):
            handler(event)
        for handler in self._subscribers.get(WILDCARD, ()):
            handler(event)
        return event
